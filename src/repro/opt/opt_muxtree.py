"""Reimplementation of the Yosys ``opt_muxtree`` pass — the paper's baseline.

The pass walks *muxtrees*: maximal trees of ``mux``/``pmux`` cells linked
through data ports (a child's ``Y`` is exactly a parent's ``A``/``B`` data
operand and feeds nothing else).  While descending it records the control
values implied by the path taken:

* ``mux``: the A branch implies ``S = 0``, the B branch ``S = 1``;
* ``pmux`` (priority select): branch *i* implies ``S[i] = 1`` and
  ``S[j] = 0`` for all j < i; the default branch implies ``S = 0``.

With that knowledge it performs exactly the two optimizations the paper
credits to Yosys:

1. **Never-active branch removal** (Figure 1): a descendant mux whose
   control value is already decided on the path is bypassed — the parent's
   data port is rewired to the only reachable operand.  Dead branches of
   pmux cells (select known 0) are dropped.
2. **Data-port constant substitution** (Figure 2): a data-port *bit* that
   is one of the decided control bits is replaced by its decided constant
   value.

Everything deeper — control signals that are merely *logically dependent*
(Figure 3) — is invisible to this pass; that is smaRTLy's job
(:mod:`repro.core.redundancy`).

Bypassed muxes are left dangling and reaped by ``opt_clean``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir import module as module_mod
from ..ir.cells import CellType, input_ports
from ..ir.module import Cell, Module, ModuleEdit
from ..ir.signals import BIT0, BIT1, SigBit, SigSpec, State
from ..ir.walker import NetIndex
from .pass_base import DirtySet, Pass, PassResult, register_pass

#: parent edge: (parent cell, port name, pmux branch index or None)
Edge = Tuple[Cell, str, Optional[int]]


class LazyEdgeMap(dict):
    """``child name -> parent Edge`` computed per child on first access.

    The eager engine precomputes the whole map with
    :func:`find_internal_edges` — an O(module) sweep at every pass entry.
    The incremental engine only ever asks about the handful of trees near
    an edit, so edges resolve lazily against the (frozen) live index and
    cache in place; ``None`` entries mean "no internal edge" and traversal
    updates (edge hand-downs, bypass detachments) simply overwrite them.
    Only :meth:`get` is lazy — use it for all reads.
    """

    _MISSING = object()

    def __init__(self, compute):
        super().__init__()
        self._compute = compute

    def get(self, name, default=None):
        value = dict.get(self, name, self._MISSING)
        if value is self._MISSING:
            value = self._compute(name)
            dict.__setitem__(self, name, value)
        return default if value is None else value

    def __contains__(self, name):
        # `name in map` on the eager (plain-dict) edge map means "has an
        # internal edge", but on the lazy map it would only mean "cached" —
        # a silent wrong answer; force callers through get()
        raise TypeError("LazyEdgeMap membership is lazy; use .get(name)")


def mux_of_spec(
    index: NetIndex,
    sigmap,
    spec: SigSpec,
    y_of: Optional[Dict[Tuple[SigBit, ...], str]] = None,
) -> Optional[str]:
    """Name of the mux whose whole canonical Y equals ``spec``, or None.

    With ``y_of`` (the eager precomputed map) this is a dict lookup; in
    dirty rounds it resolves through the index's driver map instead, so no
    whole-module map_spec sweep is needed to answer the same question.
    """
    bits = tuple(sigmap.map_spec(spec))
    if y_of is not None:
        return y_of.get(bits)
    if not bits or bits[0].is_const:
        return None
    entry = index.driver.get(bits[0])
    if entry is None:
        return None
    cell = entry[0]
    if not cell.is_mux:
        return None
    if tuple(sigmap.map_spec(cell.connections["Y"])) != bits:
        return None
    return cell.name


def compute_internal_edge(
    module: Module, index: NetIndex, child_name: str
) -> Optional[Edge]:
    """Per-child equivalent of :func:`find_internal_edges` (same rules)."""
    child = module.cells.get(child_name)
    if child is None or not child.is_mux:
        return None
    sigmap = index.sigmap
    y_bits = tuple(sigmap.map_spec(child.connections["Y"]))
    reader_edges: Set[Tuple[str, str]] = set()
    for bit in y_bits:
        if index.is_output_bit(bit):
            return None
        for cell, pname, _off in index.readers.get(bit, ()):
            if not cell.is_mux or pname not in ("A", "B"):
                return None
            reader_edges.add((cell.name, pname))
    if len(reader_edges) != 1:
        return None
    parent_name, pname = next(iter(reader_edges))
    if parent_name == child_name or parent_name not in module.cells:
        return None
    parent = module.cells[parent_name]
    return _match_edge(sigmap, parent, pname, y_bits)


def dirty_tree_roots(
    index: NetIndex,
    module: Module,
    parent_edge: Dict[str, Edge],
    closure: Iterable[str],
) -> Set[str]:
    """Roots of every muxtree that a dirty-closure cell can influence.

    Path facts flow from a tree's root downwards, so any change inside (or
    within query radius of) a tree forces a re-traversal from its root; the
    closure's non-mux cells pull in the muxes reading them (their select
    patterns may have changed).
    """

    def root_of(name: str) -> str:
        seen = set()
        while name not in seen:
            seen.add(name)
            edge = parent_edge.get(name)
            if edge is None:
                break
            name = edge[0].name
        return name

    roots: Set[str] = set()
    for name in closure:
        cell = module.cells.get(name)
        if cell is None:
            continue
        if cell.is_mux:
            roots.add(root_of(name))
            continue
        for bit in cell.output_bits():
            for reader, _port, _off in index.readers.get(
                index.sigmap.map_bit(bit), ()
            ):
                if reader.is_mux:
                    roots.add(root_of(reader.name))
    return roots


def find_internal_edges(module: Module, index: NetIndex) -> Dict[str, Edge]:
    """Map each fanout-1 *internal* mux to its unique parent data edge.

    A mux is internal when its whole Y spec is exactly one data operand
    (``A``, ``B``, or one pmux branch slice) of exactly one other mux and
    feeds nothing else — the linking rule that defines a muxtree.  Used by
    both ``opt_muxtree``-style traversals and the restructuring pass.
    """
    sigmap = index.sigmap
    muxes = {c.name: c for c in module.cells.values() if c.is_mux}
    external: Set[SigBit] = set()
    for wire in module.outputs:
        for i in range(wire.width):
            external.add(sigmap.map_bit(SigBit(wire, i)))
    for cell in module.cells.values():
        for pname in input_ports(cell.type):
            if cell.is_mux and pname in ("A", "B"):
                continue
            for bit in cell.connections[pname]:
                external.add(sigmap.map_bit(bit))

    edges: Dict[str, Edge] = {}
    for child in muxes.values():
        y_bits = tuple(sigmap.map_spec(child.connections["Y"]))
        if any(bit in external for bit in y_bits):
            continue
        reader_edges: Set[Tuple[str, str]] = set()
        foreign = False
        for bit in y_bits:
            for cell, pname, _off in index.readers.get(bit, ()):  # noqa: B020
                if not cell.is_mux or pname not in ("A", "B"):
                    foreign = True
                    break
                reader_edges.add((cell.name, pname))
            if foreign:
                break
        if foreign or len(reader_edges) != 1:
            continue
        parent_name, pname = next(iter(reader_edges))
        if parent_name == child.name or parent_name not in module.cells:
            continue
        parent = module.cells[parent_name]
        edge = _match_edge(sigmap, parent, pname, y_bits)
        if edge is not None:
            edges[child.name] = edge
    return edges


class MuxEdgeCache:
    """Persistent :func:`find_internal_edges` map for one module.

    The seeding round of every muxtree pass used to recompute the whole
    internal-edge map — an O(module) sweep per pass entry, even when almost
    nothing changed since the map was last built.  This cache keeps the map
    alive across pass entries, rounds and runs, invalidated through the
    module's edit-notification channel:

    * edits are **buffered raw** (O(1) per edit, no listener-ordering
      hazards with the live index);
    * at the next :meth:`edges` request — when a consistent index is in
      hand — the buffer is replayed into a *dirty child set*: the edited
      cells themselves, every cached child whose edge targets an edited
      cell, and the mux drivers of every bit mentioned in an edit's specs
      (those muxes' Y readership, output-visibility or parent-operand
      match may have changed);
    * only the dirty children are recomputed (:func:`compute_internal_edge`);
      a buffered burst larger than the module falls back to a full sweep.

    Obtain the per-module instance with :func:`module_edge_cache`; it
    subscribes once and lives on the module like the shared live index.
    The returned map is always a private copy — traversals mutate their
    edge map while walking (edge hand-downs), and those mutations reach the
    cache through the module edits they accompany, not through aliasing.
    """

    def __init__(self, module: Module):
        self.module = module
        self._map: Dict[str, Edge] = {}
        #: parent cell name -> cached children whose edge targets it
        self._children_of: Dict[str, Set[str]] = {}
        self._primed = False
        self._pending: List[ModuleEdit] = []
        self.full_sweeps = 0
        self.replays = 0
        self.recomputed = 0
        module.add_listener(self._on_edit)

    #: edit kinds that cannot change any internal edge: the dead-alias
    #: sweep leaves the canonical mapping of live bits unchanged, fresh
    #: wires are undriven, and only unreferenced wires are ever removed
    _INERT_KINDS = frozenset((
        module_mod.CONNECTIONS_REPLACED,
        module_mod.WIRE_ADDED,
        module_mod.WIRE_REMOVED,
    ))

    def _on_edit(self, edit: ModuleEdit) -> None:
        if not self._primed or edit.kind in self._INERT_KINDS:
            return
        self._pending.append(edit)
        if len(self._pending) > max(64, 2 * len(self.module.cells)):
            # a burst larger than the module: cheaper to resweep next time
            self.invalidate()

    def invalidate(self) -> None:
        """Forget everything; the next :meth:`edges` does a full sweep.

        Called for oversized edit bursts, and by the live index when it
        compacts its alias union-find — the buffered raw edits here are
        canonicalised only at replay time, so entries the compaction
        dropped could otherwise leave replay unable to find the affected
        mux drivers.
        """
        self._primed = False
        self._pending.clear()
        self._map.clear()
        self._children_of.clear()

    def edges(self, index: NetIndex) -> Dict[str, Edge]:
        """The current internal-edge map (a private copy).

        ``index`` must be consistent with the module (a pass-entry live
        index, possibly inside a fresh frozen window).
        """
        if not self._primed:
            self._map = find_internal_edges(self.module, index)
            self._children_of = {}
            for child, edge in self._map.items():
                self._children_of.setdefault(edge[0].name, set()).add(child)
            self._primed = True
            self._pending.clear()
            self.full_sweeps += 1
        elif self._pending:
            pending, self._pending = self._pending, []
            dirty = self._dirty_children(pending, index)
            for name in dirty:
                old = self._map.pop(name, None)
                if old is not None:
                    self._children_of.get(old[0].name, set()).discard(name)
            for name in sorted(dirty):
                edge = compute_internal_edge(self.module, index, name)
                if edge is not None:
                    self._map[name] = edge
                    self._children_of.setdefault(edge[0].name, set()).add(name)
            self.replays += 1
            self.recomputed += len(dirty)
        return dict(self._map)

    def _dirty_children(
        self, pending: List[ModuleEdit], index: NetIndex
    ) -> Set[str]:
        sigmap = index.sigmap
        dirty: Set[str] = set()

        def from_spec(spec) -> None:
            # the mux driving a mentioned bit may have gained/lost a reader,
            # output-visibility, or the exact-operand match with its parent
            for bit in spec:
                cbit = sigmap.map_bit(bit)
                if cbit.is_const:
                    continue
                entry = index.driver.get(cbit)
                if entry is not None and entry[0].is_mux:
                    dirty.add(entry[0].name)

        for edit in pending:
            cell = edit.cell
            if cell is not None:
                dirty.add(cell.name)
                dirty |= self._children_of.get(cell.name, set())
            for spec in (edit.old, edit.new, edit.lhs, edit.rhs):
                if spec is not None:
                    from_spec(spec)
            if edit.ports:
                for spec in edit.ports.values():
                    from_spec(spec)
            # CONNECTIONS_REPLACED / wire edits carry no specs: the dead-
            # alias sweep leaves the canonical mapping of live bits (and
            # with it every edge) unchanged, and fresh wires are undriven
        return dirty


def module_edge_cache(module: Module) -> MuxEdgeCache:
    """The module's shared persistent edge cache (created on first use)."""
    cache = module._edge_cache
    if cache is None:
        cache = MuxEdgeCache(module)
        module._edge_cache = cache
    return cache


def seeding_edge_map(module: Module, index: NetIndex) -> Dict[str, Edge]:
    """The internal-edge map for a pass's seeding sweep.

    Under the live index this comes from the persistent per-module cache
    (replaying only the edits since the map was last current); eager
    snapshot indexes keep the historic O(module) sweep — the reference
    path must stay cache-free.
    """
    if index.live:
        return module_edge_cache(module).edges(index)
    return find_internal_edges(module, index)


def _match_edge(
    sigmap, parent: Cell, pname: str, y_bits: Tuple[SigBit, ...]
) -> Optional[Edge]:
    """Check the parent port (or one pmux branch) is exactly the child Y."""
    spec = tuple(sigmap.map_spec(parent.connections[pname]))
    if parent.type is CellType.MUX or pname == "A":
        return (parent, pname, None) if spec == y_bits else None
    # pmux B port: the child must be exactly one whole branch slice
    width = parent.width
    matches = [
        i
        for i in range(parent.n)
        if spec[i * width:(i + 1) * width] == y_bits
    ]
    if len(matches) == 1:
        return (parent, "B", matches[0])
    return None


@register_pass
class OptMuxtree(Pass):
    """Prune never-active muxtree branches using identical-signal knowledge."""

    name = "opt_muxtree"
    incremental_capable = True
    #: baseline pruning only consults path-identical signals, so an edit can
    #: create new opportunities at most two cell hops away (the mux reading
    #: a changed control/data net, plus its parent edge)
    dirty_radius = 2

    def execute(self, module: Module, result: PassResult) -> None:
        # eager reference path: private snapshot index, rebuilt per entry
        self._optimize(module, result, NetIndex(module), dirty=None)

    def execute_incremental(
        self, module: Module, result: PassResult, dirty: Optional[DirtySet]
    ) -> None:
        index = module.net_index()
        with index.frozen():
            # frozen: traversal edits buffer, queries keep the entry
            # snapshot — the same stale-by-design view the eager path gets
            self._optimize(module, result, index, dirty=dirty)

    def _optimize(
        self,
        module: Module,
        result: PassResult,
        index: NetIndex,
        dirty: Optional[DirtySet],
    ) -> None:
        self.module = module
        self.result = result
        self.index = index  # kept for subclasses (snapshot; edits may stale it)
        self.sigmap = index.sigmap

        if dirty is None:
            # seeding sweep: precompute everything, walk every tree
            self.muxes = {c.name: c for c in module.cells.values() if c.is_mux}
            if not self.muxes:
                return
            self.parent_edge = seeding_edge_map(module, index)
            roots = [
                c for c in self.muxes.values() if c.name not in self.parent_edge
            ]
        else:
            # dirty rounds: no whole-module sweeps — resolve tree edges
            # lazily and only touch trees reachable from the edit closure
            closure = dirty.closure(index, self.dirty_radius)
            if not closure:
                return
            self.parent_edge = LazyEdgeMap(
                lambda name: compute_internal_edge(module, index, name)
            )
            root_names = dirty_tree_roots(
                index, module, self.parent_edge, closure
            )
            if not root_names:
                return
            self.muxes = {c.name: c for c in module.cells.values() if c.is_mux}
            # module order, like the eager sweep, so tree interactions match
            roots = [
                c
                for c in self.muxes.values()
                if c.name in root_names
                and self.parent_edge.get(c.name) is None
            ]
        if dirty is None:
            # eager/seeding sweeps answer Y-spec lookups from one dict
            self.y_of: Optional[Dict[Tuple[SigBit, ...], str]] = {
                tuple(self.sigmap.map_spec(c.connections["Y"])): c.name
                for c in self.muxes.values()
            }
        else:
            # dirty rounds resolve them through the index driver map instead
            # of re-canonicalising every mux Y (see mux_of_spec)
            self.y_of = None
        self.visited: Set[str] = set()
        for root in roots:
            self._traverse(root, {})

    def _mux_of(self, spec: SigSpec) -> Optional[str]:
        return mux_of_spec(self.index, self.sigmap, spec, self.y_of)

    # -- fact handling -------------------------------------------------------------

    def _bit_value(self, bit: SigBit, facts: Dict[SigBit, bool]) -> Optional[bool]:
        cbit = self.sigmap.map_bit(bit)
        if cbit.is_const:
            if cbit.state is State.S1:
                return True
            if cbit.state is State.S0:
                return False
            return None
        return facts.get(cbit)

    def _resolve_ctrl_value(
        self, bit: SigBit, facts: Dict[SigBit, bool]
    ) -> Optional[bool]:
        """Decide a control bit's value on this path.  The baseline only
        knows identical signals; smaRTLy overrides this hook with
        inference/simulation/SAT (:mod:`repro.core.redundancy`)."""
        return self._bit_value(bit, facts)

    def _resolve_data_value(
        self, bit: SigBit, facts: Dict[SigBit, bool]
    ) -> Optional[bool]:
        """Decide a data-port bit's value on this path (Figure 2)."""
        return self._bit_value(bit, facts)

    def _substitute(self, spec: SigSpec, facts: Dict[SigBit, bool]) -> Tuple[SigSpec, int]:
        """Replace known control bits inside a data spec with constants."""
        new_bits: List[SigBit] = []
        substituted = 0
        for bit in spec:
            if self.sigmap.map_bit(bit).is_const:
                new_bits.append(bit)
                continue
            value = self._resolve_data_value(bit, facts)
            if value is None:
                new_bits.append(bit)
            else:
                new_bits.append(BIT1 if value else BIT0)
                substituted += 1
        return SigSpec(new_bits), substituted

    # -- rewiring --------------------------------------------------------------------

    def _redirect(self, mux: Cell, new_spec: SigSpec) -> Optional[str]:
        """Replace the muxtree edge into ``mux`` by ``new_spec`` (bypass).

        Returns the name of the mux now exclusively driving the rewired
        edge (the bypassed mux's former fanout-1 child), or None.  Only a
        child whose unique parent *was* the bypassed mux inherits the edge;
        traversal must not continue into shared muxes, whose other
        observers do not share this path's facts.
        """
        edge = self.parent_edge.get(mux.name)
        if edge is None:
            # root: alias the output and delete the cell.  The bypass merges
            # Y into new_spec's alias class, so the recorder cannot see Y's
            # own readers — report them explicitly for the next dirty round.
            self.result.touch_readers(
                reader.name
                for bit in mux.connections["Y"]
                for reader, _port, _off in self.index.readers.get(
                    self.sigmap.map_bit(bit), ()
                )
            )
            self.module.connect(mux.connections["Y"], new_spec)
            self.module.remove_cell(mux)
            del self.muxes[mux.name]
        else:
            parent, pname, branch = edge
            if branch is None:
                parent.set_port(pname, new_spec)
            else:
                b = parent.connections["B"]
                width = parent.width
                rebuilt = b[: branch * width].concat(
                    new_spec, b[(branch + 1) * width:]
                )
                parent.set_port("B", rebuilt)
        self.result.bump("muxes_bypassed")
        # hand the edge down to the mux now driving new_spec, if it was ours
        child_name = self._mux_of(new_spec)
        if child_name is not None and child_name in self.muxes:
            old = self.parent_edge.get(child_name)
            if old is not None and old[0].name == mux.name:
                # a None entry marks "now a root" — an overwrite, never a
                # pop, so the lazy map cannot resurrect the stale edge
                self.parent_edge[child_name] = edge
                return child_name
        return None

    # -- traversal ----------------------------------------------------------------------

    def _traverse(self, mux: Cell, facts: Dict[SigBit, bool]) -> None:
        if mux.name in self.visited or mux.name not in self.module.cells:
            return
        self.visited.add(mux.name)
        if mux.type is CellType.MUX:
            self._traverse_mux(mux, facts)
        else:
            self._traverse_pmux(mux, facts)

    def _descend(self, parent: Cell, data_spec: SigSpec, facts: Dict[SigBit, bool]) -> None:
        """Recurse into the internal mux driving ``data_spec``, if any."""
        child_name = self._internal_child(parent, data_spec)
        if child_name is not None:
            self._traverse(self.module.cells[child_name], facts)

    def _internal_child(self, parent: Cell, data_spec: SigSpec) -> Optional[str]:
        """Name of the internal mux whose edge into ``parent`` is exactly
        ``data_spec``, or None (driver shared with another tree, or not a
        mux)."""
        child_name = self._mux_of(data_spec)
        if child_name is None or child_name not in self.muxes:
            return None
        edge = self.parent_edge.get(child_name)
        if edge is None or edge[0].name != parent.name:
            return None  # shared with another tree: path facts do not apply
        return child_name

    def _substitutable(self, data_spec: SigSpec) -> bool:
        """Whether a data operand may be rewritten bit-wise (Figure 2).

        Operands that are exactly a mux output are left untouched: the
        driving mux is (or may later become, once other readers die) a
        muxtree edge, and substituting even one bit of its Y breaks that
        edge permanently — trading a whole-branch bypass in this or a
        later round for a one-bit constant.  The child's own traversal
        performs the same substitutions one level deeper, so nothing
        decidable is lost."""
        return self._mux_of(data_spec) is None

    def _traverse_mux(self, mux: Cell, facts: Dict[SigBit, bool]) -> None:
        s_bit = self.sigmap.map_bit(mux.connections["S"][0])
        s_value = self._resolve_ctrl_value(s_bit, facts)
        if s_value is not None:
            chosen = mux.connections["B" if s_value else "A"]
            self._continue_into(self._redirect(mux, chosen), facts)
            return
        for pname, s_known in (("A", False), ("B", True)):
            branch_facts = dict(facts)
            if not s_bit.is_const:
                branch_facts[s_bit] = s_known
            new_spec = mux.connections[pname]
            if self._substitutable(new_spec):
                new_spec, substituted = self._substitute(new_spec, branch_facts)
                if substituted:
                    mux.set_port(pname, new_spec)
                    self.result.bump("dataport_bits_substituted", substituted)
            self._descend(mux, new_spec, branch_facts)

    def _traverse_pmux(self, mux: Cell, facts: Dict[SigBit, bool]) -> None:
        width = mux.width
        # drop branches whose select is known 0 on this path
        keep: List[int] = []
        decided: Optional[int] = None
        for i in range(mux.n):
            value = self._resolve_ctrl_value(mux.connections["S"][i], facts)
            if value is False:
                continue
            keep.append(i)
            if value is True:
                decided = i
                break  # priority: later branches are dead anyway
        if decided is not None and len(keep) == 1:
            chosen = mux.pmux_branch(decided)
            self._continue_into(self._redirect(mux, chosen), facts)
            return
        if not keep:
            chosen = mux.connections["A"]
            self._continue_into(self._redirect(mux, chosen), facts)
            return
        if len(keep) != mux.n:
            self.result.bump("pmux_branches_removed", mux.n - len(keep))
            self._shrink_pmux(mux, keep)

        # now traverse surviving branches and the default
        s_bits = [self.sigmap.map_bit(b) for b in mux.connections["S"]]
        for i in range(mux.n):
            branch_facts = dict(facts)
            for j in range(i):
                if not s_bits[j].is_const:
                    branch_facts[s_bits[j]] = False
            if not s_bits[i].is_const:
                branch_facts[s_bits[i]] = True
            new_spec = mux.pmux_branch(i)
            if self._substitutable(new_spec):
                new_spec, substituted = self._substitute(new_spec, branch_facts)
                if substituted:
                    b = mux.connections["B"]
                    mux.set_port(
                        "B", b[: i * width].concat(new_spec, b[(i + 1) * width:])
                    )
                    self.result.bump("dataport_bits_substituted", substituted)
            self._descend(mux, new_spec, branch_facts)
        if decided is not None:
            return  # the default operand is unreachable on this path
        default_facts = dict(facts)
        for s_bit in s_bits:
            if not s_bit.is_const:
                default_facts[s_bit] = False
        new_spec = mux.connections["A"]
        if self._substitutable(new_spec):
            new_spec, substituted = self._substitute(new_spec, default_facts)
            if substituted:
                mux.set_port("A", new_spec)
                self.result.bump("dataport_bits_substituted", substituted)
        self._descend(mux, new_spec, default_facts)

    def _shrink_pmux(self, mux: Cell, keep: List[int]) -> None:
        width = mux.width
        b = mux.connections["B"]
        s = mux.connections["S"]
        new_b = SigSpec()
        new_s: List[SigBit] = []
        for i in keep:
            new_b = new_b.concat(b[i * width:(i + 1) * width])
            new_s.append(s[i])
        mux.n = len(keep)
        mux.set_port("S", SigSpec(new_s))
        mux.set_port("B", new_b)

    def _continue_into(self, child_name: Optional[str],
                       facts: Dict[SigBit, bool]) -> None:
        """Continue the walk into the child that inherited a bypassed edge."""
        if child_name is not None and child_name in self.module.cells:
            self._traverse(self.module.cells[child_name], facts)
