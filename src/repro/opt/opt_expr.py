"""Constant folding and trivial identity rewrites (Yosys ``opt_expr``).

Three rewrite families, applied until fixpoint by the surrounding flow:

1. **Full constant folding** — a cell whose output is fully determined by
   ternary evaluation of its (partially) constant inputs is replaced by a
   constant connection.  This covers AND-with-0, OR-with-1, eq of equal
   constants, mux with constant select, shifts by constants, etc.
2. **Structural identities** — ``eq(a, a) = 1``, ``xor(a, a) = 0``,
   ``sub(a, a) = 0``, ``mux(a, a, s) = a``, ``add(a, 0) = a`` and friends,
   which need no constant inputs at all.
3. **Mux strength reduction** — 1-bit ``mux(0, 1, s) = s``; muxes whose
   select is constant collapse to the selected branch; pmux branches with
   constant-0 selects are dropped.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..ir.cells import CellType, input_ports
from ..ir.module import Cell, Module
from ..ir.signals import BIT0, BIT1, SigBit, SigSpec, State, const_bit
from ..sim.eval import eval_cell_ternary
from .pass_base import DirtySet, Pass, PassResult, register_pass


@register_pass
class OptExpr(Pass):
    """Fold constants and trivial identities; replaces cells by connections."""

    name = "opt_expr"
    incremental_capable = True
    dirty_radius = 1

    def execute(self, module: Module, result: PassResult) -> None:
        changed = True
        while changed:
            changed = False
            sigmap = module.sigmap()
            for cell in list(module.cells.values()):
                if not cell.is_combinational:
                    continue
                if self._try_cell(module, cell, sigmap, result):
                    changed = True

    def execute_incremental(
        self, module: Module, result: PassResult, dirty: Optional[DirtySet]
    ) -> None:
        """Worklist folding over the shared live index.

        Instead of re-sweeping the whole module until quiet (and rebuilding
        the sigmap per sweep), fold candidates come off a queue: the dirty
        closure seeds it, and every successful fold enqueues the readers of
        the folded output, whose inputs just became (more) constant.  The
        live index's union-find absorbs each new alias immediately, so
        canonicalisation stays exact without any rebuild.
        """
        from ..ir import module as module_mod

        index = module.net_index()
        sigmap = index.sigmap
        if dirty is None:
            queue = deque(module.cells)
        else:
            queue = deque(sorted(dirty.closure(index, self.dirty_radius)))
        queued = set(queue)
        new_cells: List[str] = []

        def watch_added(edit) -> None:
            if edit.kind == module_mod.CELL_ADDED:
                new_cells.append(edit.cell.name)

        module.add_listener(watch_added)
        try:
            while queue:
                name = queue.popleft()
                queued.discard(name)
                cell = module.cells.get(name)
                if cell is None or not cell.is_combinational:
                    continue
                # capture downstream cells before the fold rewires the net
                affected = set()
                for bit in cell.output_bits():
                    for rcell, _port, _off in index.readers.get(
                        sigmap.map_bit(bit), ()
                    ):
                        affected.add(rcell.name)
                if self._try_cell(module, cell, sigmap, result):
                    affected.update(new_cells)  # e.g. pmux lowered to a mux
                    new_cells.clear()
                    if name in module.cells:
                        # pmux shrink kept the cell: it may fold further
                        affected.add(name)
                    # the fold aliased this cell's output away: its true
                    # readers must seed the next round even if they do not
                    # fold now (their merge keys / tree classification
                    # changed)
                    result.touch_readers(affected)
                    for rname in sorted(affected):
                        if rname not in queued and rname in module.cells:
                            queued.add(rname)
                            queue.append(rname)
        finally:
            module.remove_listener(watch_added)

    # -- helpers ---------------------------------------------------------------

    def _replace_with(self, module: Module, cell: Cell, spec: SigSpec,
                      result: PassResult, reason: str) -> None:
        module.connect(cell.connections["Y"], spec)
        module.remove_cell(cell)
        result.bump("cells_folded")
        result.bump(reason)

    def _try_cell(self, module: Module, cell: Cell, sigmap, result: PassResult) -> bool:
        conn = cell.connections
        t = cell.type

        # canonicalise inputs so constants propagated by earlier folds are seen
        states: Dict[str, List[State]] = {}
        for pname in input_ports(t):
            spec = sigmap.map_spec(conn[pname])
            states[pname] = [
                bit.state if bit.is_const else State.Sx for bit in spec
            ]

        # 1. full constant folding via ternary evaluation
        outputs = eval_cell_ternary(cell, states)
        y_states = outputs["Y"]
        if all(s is not State.Sx for s in y_states):
            self._replace_with(
                module, cell, SigSpec([const_bit(s) for s in y_states]),
                result, "const_folded",
            )
            return True

        a = sigmap.map_spec(conn["A"]) if "A" in conn else None
        b = sigmap.map_spec(conn["B"]) if "B" in conn else None

        # 2. structural identities
        if t in (CellType.XOR, CellType.SUB, CellType.NE) and a == b:
            width = len(cell.connections["Y"])
            self._replace_with(
                module, cell, SigSpec.from_const(0, width), result, "identity"
            )
            return True
        if t in (CellType.EQ, CellType.LE) and a == b:
            self._replace_with(
                module, cell, SigSpec([BIT1]), result, "identity"
            )
            return True
        if t is CellType.LT and a == b:
            self._replace_with(
                module, cell, SigSpec([BIT0]), result, "identity"
            )
            return True
        if t in (CellType.AND, CellType.OR) and a == b:
            self._replace_with(module, cell, a, result, "identity")
            return True
        # neutral-element passthroughs: or/xor with 0, and with all-ones
        if t in (CellType.OR, CellType.XOR):
            if b is not None and b.const_value() == 0:
                self._replace_with(module, cell, a, result, "identity")
                return True
            if a is not None and a.const_value() == 0:
                self._replace_with(module, cell, b, result, "identity")
                return True
        if t is CellType.AND:
            ones = (1 << cell.width) - 1
            if b is not None and b.const_value() == ones:
                self._replace_with(module, cell, a, result, "identity")
                return True
            if a is not None and a.const_value() == ones:
                self._replace_with(module, cell, b, result, "identity")
                return True
        if t is CellType.ADD and b is not None and b.const_value() == 0:
            self._replace_with(module, cell, a, result, "identity")
            return True
        if t is CellType.ADD and a is not None and a.const_value() == 0:
            self._replace_with(module, cell, b, result, "identity")
            return True
        if t is CellType.SUB and b is not None and b.const_value() == 0:
            self._replace_with(module, cell, a, result, "identity")
            return True

        # 3. mux simplifications
        if t is CellType.MUX:
            s_bit = sigmap.map_bit(conn["S"][0])
            if a == b:
                self._replace_with(module, cell, a, result, "mux_same")
                return True
            if s_bit.is_const and s_bit.state.is_defined:
                chosen = b if s_bit.state is State.S1 else a
                self._replace_with(module, cell, chosen, result, "mux_const_sel")
                return True
            if cell.width == 1 and a.is_const and b.is_const:
                a_state, b_state = a[0].state, b[0].state
                if a_state is State.S0 and b_state is State.S1:
                    self._replace_with(
                        module, cell, SigSpec([s_bit]), result, "mux_to_sel"
                    )
                    return True
        if t is CellType.PMUX:
            return self._try_pmux(module, cell, sigmap, result)
        return False

    def _try_pmux(self, module: Module, cell: Cell, sigmap, result: PassResult) -> bool:
        """Drop constant-0 select branches; collapse when selection decided."""
        s_spec = sigmap.map_spec(cell.connections["S"])
        width = cell.width
        keep: List[int] = []
        for i, s_bit in enumerate(s_spec):
            if s_bit.is_const and s_bit.state is not State.S1:
                continue  # never selected (x select treated as 0)
            if s_bit.is_const and s_bit.state is State.S1:
                # priority semantics: branch i wins over all later branches
                keep.append(i)
                data = cell.pmux_branch(i)
                if not keep[:-1]:
                    # no earlier live branch: result is exactly branch i
                    self._replace_with(module, cell, data, result, "pmux_decided")
                    return True
                break
            keep.append(i)
        if len(keep) == cell.n:
            return False
        if not keep:
            self._replace_with(
                module, cell, cell.connections["A"], result, "pmux_default"
            )
            return True
        b = cell.connections["B"]
        new_b = SigSpec()
        new_s_bits: List[SigBit] = []
        for i in keep:
            new_b = new_b.concat(b[i * width:(i + 1) * width])
            new_s_bits.append(cell.connections["S"][i])
        if len(keep) == 1:
            # a single live branch: plain 2-input mux
            mux = module.add_cell(
                CellType.MUX,
                A=cell.connections["A"],
                B=new_b,
                S=SigSpec(new_s_bits),
            )
            module.connect(cell.connections["Y"], mux.connections["Y"])
            module.remove_cell(cell)
            result.bump("pmux_to_mux")
            return True
        cell.n = len(keep)
        cell.set_port("S", SigSpec(new_s_bits))
        cell.set_port("B", new_b)
        result.bump("pmux_branches_dropped")
        return True
