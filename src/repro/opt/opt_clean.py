"""Dead-logic removal (the Yosys ``opt_clean`` equivalent).

A combinational cell is *live* when any of its output bits transitively
reaches a module output or a sequential cell input.  Everything else is
deleted, along with internal wires that are no longer referenced.  This is
the pass that actually reaps muxes and eq gates after the muxtree passes
rewire around them (the ``RemoveUnusedCell`` step of the paper's
Algorithm 1).

The incremental engine replaces the whole-module mark-sweep with a
reference-count cascade over the shared live index: a cell whose outputs
have no readers (and reach no output alias) dies, its fanin drivers are
revisited, and everything far from the round's edits is left alone — a
cell can only *become* dead when one of its readers was removed or
rewired, which puts it inside the dirty closure.

DFF cells are always kept: removing state elements would change the
sequential-equivalence signature the CEC relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from ..ir.cells import CellType, input_ports
from ..ir.module import Cell, Module
from ..ir.signals import SigBit
from ..ir.walker import NetIndex
from .pass_base import DirtySet, Pass, PassResult, register_pass


@register_pass
class OptClean(Pass):
    """Remove unreachable cells and unused internal wires."""

    name = "opt_clean"
    incremental_capable = True
    dirty_radius = 1

    def __init__(self, remove_wires: bool = True):
        self.remove_wires = remove_wires

    def execute(self, module: Module, result: PassResult) -> None:
        self._mark_sweep(module, result, NetIndex(module))
        if self.remove_wires:
            self._sweep_wires(module, result)

    def execute_incremental(
        self, module: Module, result: PassResult, dirty: Optional[DirtySet]
    ) -> None:
        index = module.net_index()
        if dirty is None:
            self._mark_sweep(module, result, index)
            if self.remove_wires:
                self._sweep_wires(module, result)
            return
        self._reap_dead(module, result, index, dirty)
        # the alias/wire sweep must run whenever this round edited anything,
        # not only when cells died here: a rewire elsewhere in the round can
        # strand a connection whose lhs is no longer read, and skipping the
        # sweep would leave debris the eager engine removes
        if dirty and self.remove_wires:
            self._sweep_wires(module, result)

    # -- full liveness mark-sweep (seeding rounds + eager path) ----------------

    def _mark_sweep(self, module: Module, result: PassResult,
                    index: NetIndex) -> None:
        live_cells: Set[str] = set()
        worklist: List[SigBit] = []

        def mark_bit(bit: SigBit) -> None:
            cell = index.comb_driver(bit)
            if cell is not None and cell.name not in live_cells:
                live_cells.add(cell.name)
                worklist.extend(index.cell_fanin_bits(cell))

        for wire in module.outputs:
            for i in range(wire.width):
                mark_bit(index.sigmap.map_bit(SigBit(wire, i)))
        for instance in module.instances.values():
            # instance bindings are observable at the boundary: parent logic
            # feeding a child input must survive even though no local cell
            # or output reads it
            for bit in instance.binding_bits():
                mark_bit(index.sigmap.map_bit(bit))
        for cell in module.cells.values():
            if cell.type is CellType.DFF:
                live_cells.add(cell.name)
                worklist.extend(index.cell_fanin_bits(cell))
        while worklist:
            mark_bit(worklist.pop())

        dead = [c for name, c in module.cells.items() if name not in live_cells]
        for cell in dead:
            module.remove_cell(cell)
            result.bump("cells_removed")
            result.bump(f"removed_{cell.type}", 1)

    # -- incremental reference-count cascade -----------------------------------

    def _reap_dead(self, module: Module, result: PassResult, index: NetIndex,
                   dirty: DirtySet) -> int:
        sigmap = index.sigmap
        queue = deque(sorted(dirty.dead_candidates(index)))
        queued = set(queue)
        removed = 0
        while queue:
            name = queue.popleft()
            queued.discard(name)
            cell = module.cells.get(name)
            if cell is None or cell.type is CellType.DFF:
                continue
            dead = True
            for bit in cell.output_bits():
                cbit = sigmap.map_bit(bit)
                if index.readers.get(cbit) or index.is_output_bit(cbit):
                    dead = False
                    break
            if not dead:
                continue
            fanin: Set[str] = set()
            for bit in cell.input_bits():
                entry = index.driver.get(sigmap.map_bit(bit))
                if entry is not None and entry[0].is_combinational:
                    fanin.add(entry[0].name)
            module.remove_cell(cell)
            result.bump("cells_removed")
            result.bump(f"removed_{cell.type}", 1)
            removed += 1
            for fname in sorted(fanin):
                if fname not in queued and fname in module.cells:
                    queued.add(fname)
                    queue.append(fname)
        return removed

    # -- wire / alias sweep ----------------------------------------------------

    def _sweep_wires(self, module: Module, result: PassResult) -> None:
        used: Set[int] = set()

        def mark_spec(spec) -> None:
            for bit in spec:
                if bit.wire is not None:
                    used.add(id(bit.wire))

        for cell in module.cells.values():
            for spec in cell.connections.values():
                mark_spec(spec)
        for instance in module.instances.values():
            for spec in instance.connections.values():
                mark_spec(spec)
        # a connection (lhs driven by rhs) is live when its lhs is actually
        # read: an output port, a cell input, or the rhs of another live
        # connection.  Keeping one marks its rhs wires used, so iterate to a
        # fixpoint to preserve whole alias chains.
        kept_connections = []
        pending = list(module.connections)
        while True:
            still_pending = []
            progressed = False
            for lhs, rhs in pending:
                lhs_wires = {id(w) for w in lhs.wires()}
                lhs_is_output = any(w.port_output for w in lhs.wires())
                if lhs_is_output or lhs_wires & used:
                    kept_connections.append((lhs, rhs))
                    mark_spec(lhs)
                    mark_spec(rhs)
                    progressed = True
                else:
                    still_pending.append((lhs, rhs))
            pending = still_pending
            if not progressed or not pending:
                break
        dropped = len(pending)
        if dropped:
            result.bump("connections_removed", dropped)
        module.replace_connections(kept_connections)

        for wire in list(module.wires.values()):
            if wire.is_port or id(wire) in used:
                continue
            module.remove_wire(wire)
            result.bump("wires_removed")
