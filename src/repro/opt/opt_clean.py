"""Dead-logic removal (the Yosys ``opt_clean`` equivalent).

A combinational cell is *live* when any of its output bits transitively
reaches a module output or a sequential cell input.  Everything else is
deleted, along with internal wires that are no longer referenced.  This is
the pass that actually reaps muxes and eq gates after the muxtree passes
rewire around them (the ``RemoveUnusedCell`` step of the paper's
Algorithm 1).

DFF cells are always kept: removing state elements would change the
sequential-equivalence signature the CEC relies on.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.cells import CellType, input_ports
from ..ir.module import Cell, Module
from ..ir.signals import SigBit
from ..ir.walker import NetIndex
from .pass_base import Pass, PassResult, register_pass


@register_pass
class OptClean(Pass):
    """Remove unreachable cells and unused internal wires."""

    name = "opt_clean"

    def __init__(self, remove_wires: bool = True):
        self.remove_wires = remove_wires

    def execute(self, module: Module, result: PassResult) -> None:
        index = NetIndex(module)
        live_cells: Set[str] = set()
        worklist: List[SigBit] = []

        def mark_bit(bit: SigBit) -> None:
            cell = index.comb_driver(bit)
            if cell is not None and cell.name not in live_cells:
                live_cells.add(cell.name)
                worklist.extend(index.cell_fanin_bits(cell))

        for wire in module.outputs:
            for i in range(wire.width):
                mark_bit(index.sigmap.map_bit(SigBit(wire, i)))
        for cell in module.cells.values():
            if cell.type is CellType.DFF:
                live_cells.add(cell.name)
                worklist.extend(index.cell_fanin_bits(cell))
        while worklist:
            mark_bit(worklist.pop())

        dead = [c for name, c in module.cells.items() if name not in live_cells]
        for cell in dead:
            module.remove_cell(cell)
            result.bump("cells_removed")
            result.bump(f"removed_{cell.type}", 1)

        if self.remove_wires:
            self._sweep_wires(module, result)

    def _sweep_wires(self, module: Module, result: PassResult) -> None:
        used: Set[int] = set()

        def mark_spec(spec) -> None:
            for bit in spec:
                if bit.wire is not None:
                    used.add(id(bit.wire))

        for cell in module.cells.values():
            for spec in cell.connections.values():
                mark_spec(spec)
        # a connection (lhs driven by rhs) is live when its lhs is actually
        # read: an output port, a cell input, or the rhs of another live
        # connection.  Keeping one marks its rhs wires used, so iterate to a
        # fixpoint to preserve whole alias chains.
        kept_connections = []
        pending = list(module.connections)
        while True:
            still_pending = []
            progressed = False
            for lhs, rhs in pending:
                lhs_wires = {id(w) for w in lhs.wires()}
                lhs_is_output = any(w.port_output for w in lhs.wires())
                if lhs_is_output or lhs_wires & used:
                    kept_connections.append((lhs, rhs))
                    mark_spec(lhs)
                    mark_spec(rhs)
                    progressed = True
                else:
                    still_pending.append((lhs, rhs))
            pending = still_pending
            if not progressed or not pending:
                break
        dropped = len(pending)
        if dropped:
            result.bump("connections_removed", dropped)
        module.connections = kept_connections

        for wire in list(module.wires.values()):
            if wire.is_port or id(wire) in used:
                continue
            module.remove_wire(wire)
            result.bump("wires_removed")
