"""Pass framework and baseline optimization passes.

``run_baseline_opt`` bundles the Yosys-equivalent pipeline the paper
compares against: ``opt_expr`` + ``opt_merge`` + ``opt_muxtree`` +
``opt_clean`` to a fixpoint.
"""

from ..ir.module import Module
from .opt_clean import OptClean
from .opt_expr import OptExpr
from .opt_merge import OptMerge
from .opt_muxtree import OptMuxtree
from .pass_base import (
    Pass,
    PassManager,
    PassResult,
    known_passes,
    make_pass,
    register_pass,
)


def run_baseline_opt(module: Module, verbose: bool = False) -> PassManager:
    """The ``yosys``-equivalent optimization pipeline (with opt_muxtree)."""
    manager = PassManager(
        [OptExpr(), OptMerge(), OptMuxtree(), OptClean()], verbose=verbose
    )
    manager.run(module, fixpoint=True)
    return manager


def run_generic_opt(module: Module, verbose: bool = False) -> PassManager:
    """Cleanup pipeline without any muxtree pass (the 'Original' leg)."""
    manager = PassManager([OptExpr(), OptMerge(), OptClean()], verbose=verbose)
    manager.run(module, fixpoint=True)
    return manager


__all__ = [
    "OptClean",
    "OptExpr",
    "OptMerge",
    "OptMuxtree",
    "Pass",
    "PassManager",
    "PassResult",
    "known_passes",
    "make_pass",
    "register_pass",
    "run_baseline_opt",
    "run_generic_opt",
]
