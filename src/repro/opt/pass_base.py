"""Minimal pass framework: passes, results, and a registry/manager.

Passes edit modules in place and report what they changed.  The manager
runs named pipelines and accumulates per-pass statistics — enough structure
to express the paper's flows (``yosys`` baseline vs the three ``smartly``
variants) without a scripting language.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.module import Module


@dataclass
class PassResult:
    """What one pass invocation did."""

    pass_name: str
    changed: bool = False
    #: free-form counters, e.g. {"cells_removed": 12}
    stats: Dict[str, int] = field(default_factory=dict)
    runtime_s: float = 0.0

    def bump(self, key: str, amount: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + amount
        if amount:
            self.changed = True

    def merge(self, other: "PassResult") -> None:
        for key, value in other.stats.items():
            self.stats[key] = self.stats.get(key, 0) + value
        self.changed = self.changed or other.changed
        self.runtime_s += other.runtime_s


class Pass:
    """Base class: subclasses implement :meth:`execute`."""

    #: registry name; subclasses must override
    name = "pass"

    def execute(self, module: Module, result: PassResult) -> None:
        raise NotImplementedError

    def run(self, module: Module) -> PassResult:
        result = PassResult(self.name)
        start = time.perf_counter()
        self.execute(module, result)
        result.runtime_s = time.perf_counter() - start
        return result

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


_REGISTRY: Dict[str, Callable[..., Pass]] = {}


def register_pass(factory: Callable[..., Pass]) -> Callable[..., Pass]:
    """Class decorator registering a pass under its ``name`` attribute."""
    _REGISTRY[factory.name] = factory
    return factory


def _ensure_registered() -> None:
    """Import every pass-defining module so the registry is complete."""
    import importlib

    for module in ("repro.opt", "repro.core"):
        importlib.import_module(module)


def make_pass(name: str, **options) -> Pass:
    _ensure_registered()
    if name not in _REGISTRY:
        raise KeyError(f"unknown pass {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**options)


def known_passes() -> List[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


class PassManager:
    """Runs a pipeline of passes, optionally to a fixpoint.

    Progress is reported through a structured :class:`~repro.events.EventBus`
    (``pipeline_started`` / ``pass_started`` / ``pass_finished`` /
    ``round_finished`` / ``round_converged`` / ``pipeline_finished``) instead
    of prints; ``verbose=True`` is a convenience that attaches a
    :class:`~repro.events.PrintObserver` reproducing the legacy per-pass
    print lines over that same channel.
    """

    def __init__(
        self,
        passes: Sequence[Pass],
        verbose: bool = False,
        events: Optional["EventBus"] = None,
        name: str = "pipeline",
    ):
        from ..events import EventBus, PrintObserver

        self.passes = list(passes)
        self.verbose = verbose
        self.name = name
        self.history: List[PassResult] = []
        #: rounds executed by the most recent :meth:`run`
        self.rounds_run = 0
        self.events = events if events is not None else EventBus()
        if verbose:
            import sys

            self.events.subscribe(PrintObserver(stream=sys.stdout, verbose=True))

    def run(self, module: Module, fixpoint: bool = False, max_rounds: int = 16) -> bool:
        """Run the pipeline once, or until nothing changes.  Returns whether
        anything changed at all."""
        emit = self.events.emit
        emit(
            "pipeline_started",
            pipeline=self.name,
            passes=[pass_.name for pass_ in self.passes],
            fixpoint=fixpoint,
            max_rounds=max_rounds if fixpoint else 1,
            module=module.name,
        )
        any_change = False
        rounds = 0
        for round_no in range(max_rounds if fixpoint else 1):
            round_change = False
            for pass_ in self.passes:
                emit(
                    "pass_started",
                    pipeline=self.name,
                    **{"pass": pass_.name},
                    round=round_no,
                    module=module.name,
                )
                result = pass_.run(module)
                self.history.append(result)
                emit(
                    "pass_finished",
                    pipeline=self.name,
                    **{"pass": result.pass_name},
                    round=round_no,
                    module=module.name,
                    changed=result.changed,
                    stats=dict(result.stats),
                    runtime_s=result.runtime_s,
                )
                round_change = round_change or result.changed
            rounds = round_no + 1
            emit(
                "round_finished",
                pipeline=self.name,
                round=round_no,
                module=module.name,
                changed=round_change,
            )
            any_change = any_change or round_change
            if not round_change:
                if fixpoint:
                    emit(
                        "round_converged",
                        pipeline=self.name,
                        rounds=rounds,
                        module=module.name,
                    )
                break
        self.rounds_run = rounds
        emit(
            "pipeline_finished",
            pipeline=self.name,
            rounds=rounds,
            module=module.name,
            changed=any_change,
        )
        return any_change

    def total_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for result in self.history:
            for key, value in result.stats.items():
                full = f"{result.pass_name}.{key}"
                totals[full] = totals.get(full, 0) + value
        return totals
