"""Pass framework: passes, results, dirty sets, and a registry/manager.

Passes edit modules in place and report what they changed.  The manager
runs named pipelines and accumulates per-pass statistics — enough structure
to express the paper's flows (``yosys`` baseline vs the three ``smartly``
variants) without a scripting language.

Two execution engines:

* **eager** (``PassManager(..., incremental=False)``) — the historic
  reference behaviour: every fixpoint round re-runs every pass over the
  whole module, and each pass rebuilds its own :class:`NetIndex` snapshot
  at entry;
* **incremental** (the default) — passes share the module's live
  :meth:`~repro.ir.module.Module.net_index`, every :class:`PassResult`
  records the cells/bits its pass touched (collected automatically through
  the module's edit-notification channel), and fixpoint rounds after the
  first seed each pass with only the previous round's edits.  Each pass
  expands that seed to its own fanin/fanout closure (``dirty_radius`` cell
  hops — e.g. the SAT stage uses its sub-graph radius ``k + 1``), so
  converged regions are never re-swept.

Passes that have not been taught the worklist protocol simply run eagerly
in both engines (``incremental_capable = False``), which keeps the two
engines byte-identical on final netlist areas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..ir import module as module_mod
from ..ir.module import Module, ModuleEdit
from ..ir.signals import SigBit


@dataclass
class PassResult:
    """What one pass invocation did."""

    pass_name: str
    changed: bool = False
    #: free-form counters, e.g. {"cells_removed": 12}
    stats: Dict[str, int] = field(default_factory=dict)
    runtime_s: float = 0.0
    #: names of cells added/removed/rewired (auto-recorded from the module's
    #: edit channel while the pass ran); seeds the next round's dirty set
    touched_cells: Set[str] = field(default_factory=set)
    #: the *downstream frontier*: output bits of edited/added cells —
    #: everything whose fanin structure changed lies in the fanout cones of
    #: these bits.  Alias (connect) lhs bits are NOT here: they land in
    #: ``touched_fanin_bits`` because their class merges into the rhs
    #: representative, whose sibling readers are untouched; a pass that
    #: aliases a net away must report the net's true readers itself via
    #: :meth:`touch_readers`
    touched_bits: Set[SigBit] = field(default_factory=set)
    #: input-side bits of edits (old/new port specs, removed-cell inputs,
    #: alias rhs); only their *drivers* can be affected (fanout-1
    #: classification, dead-code candidacy), so the closure never walks
    #: their fanout — that would drag in every sibling reader of a shared
    #: input and make the dirty set degenerate to the whole module
    touched_fanin_bits: Set[SigBit] = field(default_factory=set)

    def bump(self, key: str, amount: int = 1) -> None:
        """Count *work done*: a non-zero bump marks the module as changed."""
        self.stats[key] = self.stats.get(key, 0) + amount
        if amount:
            self.changed = True

    def note(self, key: str, amount: int = 1) -> None:
        """Count an *observation* (queries posed, gates skipped, ...).

        Unlike :meth:`bump`, notes never set ``changed`` — a pass that only
        asked questions has not modified the netlist, and flagging it as a
        change used to keep fixpoint loops spinning until ``max_rounds``
        even though the module had long converged.
        """
        self.stats[key] = self.stats.get(key, 0) + amount

    def touch_readers(self, names) -> None:
        """Record the pre-edit readers of a rewritten net by name.

        When a pass aliases a net away (``connect`` + ``remove_cell``), the
        automatic recorder cannot tell the net's true readers apart from
        the sibling readers of whatever class it merged into, so the pass —
        which knows them exactly — reports them here.
        """
        self.touched_cells.update(names)

    def merge(self, other: "PassResult") -> None:
        for key, value in other.stats.items():
            self.stats[key] = self.stats.get(key, 0) + value
        self.changed = self.changed or other.changed
        self.runtime_s += other.runtime_s
        self.touched_cells |= other.touched_cells
        self.touched_bits |= other.touched_bits
        self.touched_fanin_bits |= other.touched_fanin_bits


@dataclass
class DirtySet:
    """The seed of one incremental round: edits from the previous round."""

    cells: Set[str] = field(default_factory=set)
    bits: Set[SigBit] = field(default_factory=set)

    fanin_bits: Set[SigBit] = field(default_factory=set)

    def __bool__(self) -> bool:
        return bool(self.cells or self.bits or self.fanin_bits)

    def absorb(self, result: PassResult) -> None:
        self.cells |= result.touched_cells
        self.bits |= result.touched_bits
        self.fanin_bits |= result.touched_fanin_bits

    def union(self, other: "DirtySet") -> "DirtySet":
        return DirtySet(
            self.cells | other.cells,
            self.bits | other.bits,
            self.fanin_bits | other.fanin_bits,
        )

    def closure(self, index, radius: int = 1) -> Set[str]:
        """Names of cells whose analysis may differ after the edits.

        Three contributions:

        * the touched cells themselves (still-existing ones);
        * drivers and readers of the ``radius``-deep *fanout* cone of the
          frontier bits — an edit changes the fanin structure of exactly
          the logic downstream of the edited outputs, so a pass whose
          verdicts look ``radius`` cell hops upstream (e.g. the SAT
          stage's sub-graph radius ``k``) must revisit that cone;
        * drivers of the input-side bits (a cell that lost a reader can
          change fanout-1 classification or die).  Their *fanout* is
          deliberately not walked: sibling readers of a shared input are
          untouched by construction, and walking them would degenerate
          the closure to the whole module.
        """
        map_bit = index.sigmap.map_bit
        module = index.module
        names: Set[str] = set()
        frontier: Set[SigBit] = set()
        for bit in self.bits:
            cbit = map_bit(bit)
            if not cbit.is_const:
                frontier.add(cbit)
        for name in self.cells:
            cell = module.cells.get(name)
            if cell is None:
                continue
            names.add(name)
            for bit in cell.output_bits():
                cbit = map_bit(bit)
                if not cbit.is_const:
                    frontier.add(cbit)
        if frontier:
            for cbit in index.fanout_cone(frontier, max_depth=radius):
                entry = index.driver.get(cbit)
                if entry is not None:
                    names.add(entry[0].name)
                for cell, _port, _off in index.readers.get(cbit, ()):
                    names.add(cell.name)
        for bit in self.fanin_bits:
            cbit = map_bit(bit)
            if cbit.is_const:
                continue
            entry = index.driver.get(cbit)
            if entry is not None:
                names.add(entry[0].name)
        return names

    def dead_candidates(self, index) -> Set[str]:
        """Cells that may have *become* dead: a cell dies only by losing a
        reader, so candidates are the drivers of every recorded bit plus
        the touched cells themselves — no cone walk at all."""
        map_bit = index.sigmap.map_bit
        module = index.module
        names = {name for name in self.cells if name in module.cells}
        for bit in self.bits | self.fanin_bits:
            cbit = map_bit(bit)
            if cbit.is_const:
                continue
            entry = index.driver.get(cbit)
            if entry is not None:
                names.add(entry[0].name)
        return names


def _touch_recorder(result: PassResult) -> Callable[[ModuleEdit], None]:
    """A module listener accumulating a pass's touched cells/bits.

    Output-side bits (edited cells' outputs, alias lhs) land in
    ``touched_bits`` — the frontier whose fanout the closure walks.
    Input-side bits (rewired port specs, removed-cell inputs, alias rhs)
    land in ``touched_fanin_bits`` — only their drivers are revisited.
    """
    from ..ir.cells import output_ports

    def frontier(spec) -> None:
        for bit in spec:
            if not bit.is_const:
                result.touched_bits.add(bit)

    def fanin(spec) -> None:
        for bit in spec:
            if not bit.is_const:
                result.touched_fanin_bits.add(bit)

    def record(edit: ModuleEdit) -> None:
        kind = edit.kind
        if kind == module_mod.PORT_CHANGED:
            cell = edit.cell
            result.touched_cells.add(cell.name)
            if edit.port in output_ports(cell.type):
                if edit.old is not None:
                    frontier(edit.old)
                frontier(edit.new)
            else:
                if edit.old is not None:
                    fanin(edit.old)
                fanin(edit.new)
        elif kind == module_mod.CELL_ADDED:
            cell = edit.cell
            result.touched_cells.add(cell.name)
            outs = set(output_ports(cell.type))
            for pname, spec in edit.ports.items():
                if pname in outs:
                    frontier(spec)
                else:
                    fanin(spec)
        elif kind == module_mod.CELL_REMOVED:
            # removed outputs are usually already aliased into a surviving
            # class (often a shared input) — walking that class's fanout
            # would dirty every sibling reader, so only drivers are kept;
            # the pass records the net's true pre-edit readers itself
            # (see PassResult.touch_readers)
            result.touched_cells.add(edit.cell.name)
            for spec in edit.ports.values():
                fanin(spec)
        elif kind == module_mod.CONNECTED:
            # same reasoning: the union-find keeps the rhs representative,
            # and the affected lhs-class readers are recorded by the pass
            fanin(edit.lhs)
            fanin(edit.rhs)

    return record


class Pass:
    """Base class: subclasses implement :meth:`execute`."""

    #: registry name; subclasses must override
    name = "pass"
    #: whether :meth:`execute_incremental` honours a dirty seed
    incremental_capable = False
    #: cell-hop radius of the fanin/fanout closure this pass needs around
    #: an edit to notice every new opportunity it could create
    dirty_radius = 1

    def execute(self, module: Module, result: PassResult) -> None:
        raise NotImplementedError

    def execute_incremental(
        self, module: Module, result: PassResult, dirty: Optional[DirtySet]
    ) -> None:
        """Incremental entry point: ``dirty=None`` means a full (seeding)
        sweep; otherwise only the dirty closure needs revisiting.  The
        default ignores the seed and runs the eager implementation, so
        incremental-unaware passes stay correct inside the new engine."""
        self.execute(module, result)

    def run(
        self,
        module: Module,
        dirty: Optional[DirtySet] = None,
        incremental: bool = False,
    ) -> PassResult:
        result = PassResult(self.name)
        recorder = module.add_listener(_touch_recorder(result))
        start = time.perf_counter()
        try:
            if incremental:
                self.execute_incremental(module, result, dirty)
            else:
                self.execute(module, result)
        finally:
            module.remove_listener(recorder)
        result.runtime_s = time.perf_counter() - start
        return result

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


_REGISTRY: Dict[str, Callable[..., Pass]] = {}


def register_pass(factory: Callable[..., Pass]) -> Callable[..., Pass]:
    """Class decorator registering a pass under its ``name`` attribute."""
    _REGISTRY[factory.name] = factory
    return factory


def _ensure_registered() -> None:
    """Import every pass-defining module so the registry is complete."""
    import importlib

    for module in ("repro.opt", "repro.core"):
        importlib.import_module(module)


def make_pass(name: str, **options) -> Pass:
    _ensure_registered()
    if name not in _REGISTRY:
        raise KeyError(f"unknown pass {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**options)


def known_passes() -> List[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


class PassManager:
    """Runs a pipeline of passes, optionally to a fixpoint.

    Progress is reported through a structured :class:`~repro.events.EventBus`
    (``pipeline_started`` / ``pass_started`` / ``pass_finished`` /
    ``round_finished`` / ``round_converged`` / ``round_limit_reached`` /
    ``pipeline_finished``) instead of prints; ``verbose=True`` is a
    convenience that attaches a :class:`~repro.events.PrintObserver`
    reproducing the legacy per-pass print lines over that same channel.

    ``incremental=True`` (the default) runs the dirty-set engine: the first
    fixpoint round sweeps everything, later rounds seed each pass with the
    closure of the previous round's edits (plus edits made earlier in the
    same round).  ``incremental=False`` is the eager escape hatch that
    preserves the historic whole-module behaviour for differential testing.

    After :meth:`run`, :attr:`converged` tells whether the pipeline reached
    a fixpoint: ``False`` means ``max_rounds`` was exhausted while passes
    were still changing the module — previously indistinguishable from
    convergence; now also announced with a ``round_limit_reached`` event.
    """

    def __init__(
        self,
        passes: Sequence[Pass],
        verbose: bool = False,
        events: Optional["EventBus"] = None,
        name: str = "pipeline",
        incremental: bool = True,
    ):
        from ..events import EventBus, PrintObserver

        self.passes = list(passes)
        self.verbose = verbose
        self.name = name
        self.incremental = incremental
        self.history: List[PassResult] = []
        #: rounds executed by the most recent :meth:`run`
        self.rounds_run = 0
        #: whether the most recent :meth:`run` reached a fixpoint (always
        #: True for single-shot runs; False when max_rounds cut it short)
        self.converged = True
        #: dirty-set engine counters from the most recent :meth:`run`
        self.dirty_stats: Dict[str, int] = {}
        self.events = events if events is not None else EventBus()
        if verbose:
            import sys

            self.events.subscribe(PrintObserver(stream=sys.stdout, verbose=True))

    @property
    def engine(self) -> str:
        return "incremental" if self.incremental else "eager"

    @staticmethod
    def _sigmap_generation(module: Module) -> Optional[int]:
        """The live index's union-find generation, or None before one
        exists (a fresh build is current for every bit recorded after it,
        so creation mid-run is not a reset)."""
        index = module._net_index
        return None if index is None else index.compactions

    def run(
        self,
        module: Module,
        fixpoint: bool = False,
        max_rounds: int = 16,
        seed: Optional[DirtySet] = None,
    ) -> bool:
        """Run the pipeline once, or until nothing changes.  Returns whether
        anything changed at all.

        ``seed`` (incremental engine only) starts the *first* round from a
        dirty set instead of a full module sweep: the design-scope engine
        passes the edits made to a module since its last converged run of
        the same pipeline, so re-runs never re-sweep converged regions.
        The caller owns the precondition that the module was at a fixpoint
        of this pipeline before those edits — exactly the invariant
        :class:`repro.flow.session.Session` tracks through the design edit
        channel.  Ignored by the eager engine.
        """
        emit = self.events.emit
        emit(
            "pipeline_started",
            pipeline=self.name,
            passes=[pass_.name for pass_ in self.passes],
            fixpoint=fixpoint,
            max_rounds=max_rounds if fixpoint else 1,
            module=module.name,
            engine=self.engine,
        )
        any_change = False
        rounds = 0
        round_change = False
        # previous round's edits; a caller-provided seed plays that role
        # for round 0 (cross-run incrementality)
        carry: Optional[DirtySet] = seed if self.incremental else None
        dirty_stats = {
            "full_rounds": 0,
            "incremental_rounds": 0,
            "dirty_seed_cells": 0,
            "dirty_seed_bits": 0,
        }
        if carry is not None:
            dirty_stats["seeded_runs"] = 1
        self.converged = True
        unverified = False  # a reset ate the final verification round
        for round_no in range(max_rounds if fixpoint else 1):
            round_change = False
            round_touched = DirtySet()
            generation = self._sigmap_generation(module)
            if self.incremental and carry is not None:
                dirty_stats["incremental_rounds"] += 1
                dirty_stats["dirty_seed_cells"] += len(carry.cells)
                dirty_stats["dirty_seed_bits"] += len(carry.bits) + len(
                    carry.fanin_bits
                )
            else:
                dirty_stats["full_rounds"] += 1
            for pass_ in self.passes:
                emit(
                    "pass_started",
                    pipeline=self.name,
                    **{"pass": pass_.name},
                    round=round_no,
                    module=module.name,
                )
                if self.incremental:
                    # a pass also sees edits made earlier in its own round
                    seed = None if carry is None else carry.union(round_touched)
                    result = pass_.run(module, dirty=seed, incremental=True)
                else:
                    result = pass_.run(module)
                round_touched.absorb(result)
                self.history.append(result)
                emit(
                    "pass_finished",
                    pipeline=self.name,
                    **{"pass": result.pass_name},
                    round=round_no,
                    module=module.name,
                    changed=result.changed,
                    stats=dict(result.stats),
                    runtime_s=result.runtime_s,
                )
                round_change = round_change or result.changed
            rounds = round_no + 1
            emit(
                "round_finished",
                pipeline=self.name,
                round=round_no,
                module=module.name,
                changed=round_change,
                touched_cells=len(round_touched.cells),
            )
            any_change = any_change or round_change
            # raw carry/seed bits are resolved against the sigmap only when
            # consumed; a union-find generation reset (compaction or full
            # rebuild) in between orphans them, so escalate to a full round
            # instead of trusting — and never *converge* on a round whose
            # own seeds may have been orphaned mid-round
            end_generation = self._sigmap_generation(module)
            if generation is None:
                # the index was created mid-round (generation 0); any
                # nonzero count means resets fired after creation
                reset = self.incremental and bool(end_generation)
            else:
                reset = self.incremental and end_generation != generation
            if reset:
                dirty_stats["generation_resets"] = (
                    dirty_stats.get("generation_resets", 0) + 1
                )
            if not round_change:
                if fixpoint and reset and carry is not None:
                    # this round's seeds may have been orphaned: re-verify
                    # convergence with a full sweep — or, with no rounds
                    # left to do so, report honestly instead of claiming a
                    # fixpoint that was never verified
                    if round_no == max_rounds - 1:
                        unverified = True
                        break
                    carry = None
                    continue
                if fixpoint:
                    emit(
                        "round_converged",
                        pipeline=self.name,
                        rounds=rounds,
                        module=module.name,
                    )
                break
            carry = None if reset else round_touched
        if fixpoint and rounds == max_rounds and (round_change or unverified):
            self.converged = False
            emit(
                "round_limit_reached",
                pipeline=self.name,
                rounds=rounds,
                max_rounds=max_rounds,
                module=module.name,
            )
        self.rounds_run = rounds
        self.dirty_stats = dirty_stats
        emit(
            "pipeline_finished",
            pipeline=self.name,
            rounds=rounds,
            module=module.name,
            changed=any_change,
            converged=self.converged,
        )
        return any_change

    def total_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for result in self.history:
            for key, value in result.stats.items():
                full = f"{result.pass_name}.{key}"
                totals[full] = totals.get(full, 0) + value
        return totals
