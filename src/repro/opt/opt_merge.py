"""Structural deduplication of identical cells (Yosys ``opt_merge``).

Two cells merge when they have the same type, geometry and canonically
identical input connections; the duplicate's outputs are aliased to the
survivor's.  Merging runs to a fixpoint because collapsing one pair can make
downstream cells identical.

Commutative inputs (and/or/xor/xnor/add/eq/ne and the logic_* pair forms)
are sorted before hashing so ``and(a, b)`` merges with ``and(b, a)``.  The
sort key is *stable across interpreter runs* — (wire name, offset, explicit
constant encoding), never ``id()`` — so merge order, survivor names, event
streams and stats are reproducible run to run.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Dict, Optional, Tuple

from ..ir.cells import CellType, input_ports, output_ports
from ..ir.module import Module
from ..ir.signals import SigBit
from .pass_base import DirtySet, Pass, PassResult, register_pass

_COMMUTATIVE = {
    CellType.AND,
    CellType.OR,
    CellType.XOR,
    CellType.XNOR,
    CellType.NAND,
    CellType.NOR,
    CellType.ADD,
    CellType.EQ,
    CellType.NE,
    CellType.LOGIC_AND,
    CellType.LOGIC_OR,
}


def _bit_sort_key(bit: SigBit) -> Tuple[int, str, int, int]:
    """A total order on canonical bits that is identical in every run.

    Wire bits order by (name, offset); constants sort after wire bits and
    order by their explicit state value.  The historic key used
    ``id(bit.wire)`` (different every interpreter run) and the and/or
    precedence accident ``state is not None and state.value or 0`` (which
    collapsed constant 0 onto wire bits), making merge order — and with it
    survivor names and stats — nondeterministic across runs.
    """
    if bit.is_const:
        return (1, "", 0, bit.state.value)
    return (0, bit.wire.name, bit.offset, 0)


def _spec_sort_key(spec) -> Tuple[Tuple[int, str, int, int], ...]:
    return tuple(_bit_sort_key(bit) for bit in spec)


#: test-only fault injection: when this environment variable is set, the
#: structural key of commutative cells is truncated to its first operand,
#: so ``and(a, b)`` wrongly merges with ``and(a, c)`` — a deliberate,
#: deterministic miscompile used by the reducer/fuzz-harness acceptance
#: tests (tests/testing, benchmarks/bench_reduce.py) to prove the CEC
#: lanes catch it and the minimized repro still triggers it.  Never set
#: outside those tests.
BREAK_SORT_KEY_ENV = "SMARTLY_TEST_BREAK_OPT_MERGE"


@register_pass
class OptMerge(Pass):
    """Alias outputs of structurally identical cells and drop duplicates."""

    name = "opt_merge"
    incremental_capable = True
    dirty_radius = 1

    def __init__(self, merge_dff: bool = True):
        self.merge_dff = merge_dff
        # persistent incremental state: structural-key table of the module
        # as of the previous invocation, revalidated over the dirty closure
        self._state_module: Optional[Module] = None
        self._key_of: Dict[str, object] = {}
        self._table: Dict[object, str] = {}

    def _cell_key(self, cell, sigmap) -> Optional[Tuple]:
        if cell.type is CellType.DFF and not self.merge_dff:
            return None
        specs = [
            tuple(sigmap.map_spec(cell.connections[p]))
            for p in input_ports(cell.type)
        ]
        if cell.type in _COMMUTATIVE:
            # any total order consistent within this sweep would merge
            # correctly; a run-stable one additionally makes results
            # reproducible (see _bit_sort_key)
            specs.sort(key=_spec_sort_key)
            if os.environ.get(BREAK_SORT_KEY_ENV):
                specs = specs[:1]
        return ((cell.type.value, cell.width, cell.n), tuple(specs))

    def execute(self, module: Module, result: PassResult) -> None:
        changed = True
        while changed:
            changed = False
            sigmap = module.sigmap()
            table: Dict[Tuple, str] = {}
            for cell in list(module.cells.values()):
                key = self._cell_key(cell, sigmap)
                if key is None:
                    continue
                survivor_name = table.get(key)
                if survivor_name is None:
                    table[key] = cell.name
                    continue
                survivor = module.cells[survivor_name]
                for pname in output_ports(cell.type):
                    module.connect(cell.connections[pname], survivor.connections[pname])
                module.remove_cell(cell)
                result.bump("cells_merged")
                changed = True

    def execute_incremental(
        self, module: Module, result: PassResult, dirty: Optional[DirtySet]
    ) -> None:
        """Worklist dedup over the live index's union-find.

        The structural-key table persists on the pass object between rounds:
        a full seeding sweep builds it once, later rounds re-key only the
        dirty closure (a cell's key can only change when an adjacent net was
        edited) and cascade through the readers of every merged output.
        """
        index = module.net_index()
        sigmap = index.sigmap
        if dirty is None or self._state_module is not module:
            self._state_module = module
            self._key_of = {}
            self._table = {}
            queue = deque(module.cells)
        else:
            queue = deque(sorted(dirty.closure(index, self.dirty_radius)))
        key_of, table = self._key_of, self._table
        while queue:
            name = queue.popleft()
            cell = module.cells.get(name)
            old_key = key_of.get(name)
            new_key = self._cell_key(cell, sigmap) if cell is not None else None
            if new_key != old_key:
                if old_key is not None and table.get(old_key) == name:
                    del table[old_key]
                if new_key is None:
                    key_of.pop(name, None)
                else:
                    key_of[name] = new_key
            if new_key is None:
                continue
            owner = table.get(new_key)
            if owner is None or owner == name:
                table[new_key] = name if owner is None else owner
                continue
            owner_cell = module.cells.get(owner)
            if owner_cell is None:
                table[new_key] = name  # stale entry: claim the key
                continue
            # merge `cell` into `owner_cell`; readers of the duplicate's
            # outputs canonicalise differently afterwards, so revisit them
            affected = set()
            for bit in cell.output_bits():
                for rcell, _port, _off in index.readers.get(
                    sigmap.map_bit(bit), ()
                ):
                    affected.add(rcell.name)
            for pname in output_ports(cell.type):
                module.connect(cell.connections[pname], owner_cell.connections[pname])
            module.remove_cell(cell)
            key_of.pop(name, None)
            result.bump("cells_merged")
            result.touch_readers(affected)
            for rname in sorted(affected):
                if rname in module.cells:
                    queue.append(rname)
