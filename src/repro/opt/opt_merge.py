"""Structural deduplication of identical cells (Yosys ``opt_merge``).

Two cells merge when they have the same type, geometry and canonically
identical input connections; the duplicate's outputs are aliased to the
survivor's.  Merging runs to a fixpoint because collapsing one pair can make
downstream cells identical.

Commutative inputs (and/or/xor/xnor/add/eq/ne and the logic_* pair forms)
are sorted before hashing so ``and(a, b)`` merges with ``and(b, a)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.cells import CellType, input_ports, output_ports
from ..ir.module import Module
from .pass_base import Pass, PassResult, register_pass

_COMMUTATIVE = {
    CellType.AND,
    CellType.OR,
    CellType.XOR,
    CellType.XNOR,
    CellType.NAND,
    CellType.NOR,
    CellType.ADD,
    CellType.EQ,
    CellType.NE,
    CellType.LOGIC_AND,
    CellType.LOGIC_OR,
}


@register_pass
class OptMerge(Pass):
    """Alias outputs of structurally identical cells and drop duplicates."""

    name = "opt_merge"

    def __init__(self, merge_dff: bool = True):
        self.merge_dff = merge_dff

    def execute(self, module: Module, result: PassResult) -> None:
        changed = True
        while changed:
            changed = False
            sigmap = module.sigmap()
            table: Dict[Tuple, str] = {}
            for cell in list(module.cells.values()):
                if cell.type is CellType.DFF and not self.merge_dff:
                    continue
                key_parts = [cell.type.value, cell.width, cell.n]
                specs = [
                    tuple(sigmap.map_spec(cell.connections[p]))
                    for p in input_ports(cell.type)
                ]
                if cell.type in _COMMUTATIVE:
                    # any total order consistent within this sweep will do
                    specs.sort(
                        key=lambda spec: tuple(
                            (id(bit.wire), bit.offset, bit.state is not None
                             and bit.state.value or 0)
                            for bit in spec
                        )
                    )
                key = (tuple(key_parts), tuple(specs))
                survivor_name = table.get(key)
                if survivor_name is None:
                    table[key] = cell.name
                    continue
                survivor = module.cells[survivor_name]
                for pname in output_ports(cell.type):
                    module.connect(cell.connections[pname], survivor.connections[pname])
                module.remove_cell(cell)
                result.bump("cells_merged")
                changed = True
