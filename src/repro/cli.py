"""Command-line interface.

::

    smartly opt design.v [--top NAME] [--optimizer smartly] [--check] [--json]
    smartly script "opt_expr; smartly k=6; opt_clean" design.v [--check] [--json]
    smartly stats design.v
    smartly bench table2 | table3 | industrial [--jobs N]
    smartly aig design.v -o design.aag
    smartly write design.v -o optimized.v [--optimizer smartly]
    smartly equiv gold.v gate.v
    smartly fuzz [--iterations N] [--seed-base S] [--json]
                 [--all-lanes] [--artifacts DIR] [--shrink]
    smartly reduce failing.v --oracle cec --flow yosys [-o minimized.v]
    smartly hier design.v [--top NAME] [--optimizer smartly] [--check] [--json]
    smartly serve [--store DIR] [--jobs N] [--port P]
                  [--isolation thread|process] [--timeout S] [--max-retries N]
                  [--queue-limit N] [--per-client N] [--drain S]
                  [--allow-fault-injection]
    smartly sweep [--flow F ...] [-k K ...] [--sim-threshold N ...] [--workload W ...]

``opt``/``script`` run declarative flows through the :mod:`repro.api`
Session layer; ``script`` accepts any Yosys-like flow script.  The ``bench``
subcommands regenerate the paper's tables on the synthetic benchmark suite
in parallel (``--jobs``), with structured progress events rendered to
stderr.  ``fuzz`` runs the differential-testing harness: random modules ×
every flow preset, each result SAT-proven equivalent to its unoptimized
original (exit status 1 when any check fails); ``--artifacts DIR`` dumps
every failing seed's generating module, ``--shrink`` auto-minimizes each
failure through the matching :mod:`repro.testing` oracle, and
``--all-lanes`` adds the engine-divergence and seeded-rerun lanes.
``reduce`` is the standalone delta-debugger: it shrinks a failing design
while the named oracle keeps failing with the same label (exit status 2
when the input does not fail at all).  ``serve`` is the
long-lived optimization-as-a-service daemon: JSON-lines flow jobs in over
stdin (or ``--port``), progress events and reports streamed back out,
with the result cache persisted across restarts via ``--store`` (see
:mod:`repro.flow.serve`).  ``--isolation process`` executes jobs in a
supervised pool of worker subprocesses — a crashed or hung job is killed,
retried (``--max-retries``, wall-clock ``--timeout``) and answered as a
structured retryable error while the daemon and its warm cache survive;
``--queue-limit``/``--per-client`` shed overload with ``busy`` responses
and ``--drain`` bounds how long shutdown waits for stragglers.  ``opt``/``script``/``hier`` accept the same
``--store DIR`` to warm-start one-shot runs from (and contribute back to)
that persistent cache.

``sweep`` is the design-space-exploration runner: it expands a
``flow × k × sim-threshold × workload`` grid into one shared-baseline
parallel suite and renders a comparative Markdown/JSON report (see
:mod:`repro.flow.sweep`).

Design inputs are Verilog (``.v``), Yosys ``write_json`` netlists
(``.json``), or ASCII AIGER (``.aag``) — sniffed from the suffix and
content, or forced with ``--format``.  ``write --output foo.json`` (or
``--output-format json``) exports Yosys JSON instead of Verilog.

Artifacts written to ``--output`` paths go through
:func:`repro.core.store.atomic_write_text`, so an interrupted run never
leaves a truncated file under the target name.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .aig import aig_map, aig_stats, write_aiger
from .api import PrintObserver, Session, suite_cases
from .core.store import atomic_write_text
from .flow import (
    OPTIMIZERS,
    render_industrial,
    render_table2,
    render_table3,
)
from .frontend import compile_verilog
from .workloads import CASE_NAMES, build_case, build_industrial


#: ``--format`` choices for design inputs (``auto`` sniffs suffix/content)
INPUT_FORMATS = ("auto", "verilog", "json", "aiger")


def _detect_format(path: str, text: str) -> str:
    """Sniff a design file's format from its suffix, then its content."""
    if path.endswith(".json"):
        return "json"
    if path.endswith(".aag"):
        return "aiger"
    if path.endswith(".v"):
        return "verilog"
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return "json"
    if text.startswith("aag "):
        return "aiger"
    return "verilog"


def _load_design(path: str, top: Optional[str], fmt: str = "auto"):
    """Load Verilog (.v), Yosys JSON (.json), or ASCII AIGER (.aag)
    into a :class:`~repro.ir.design.Design`."""
    with open(path) as handle:
        text = handle.read()
    if fmt in (None, "auto"):
        fmt = _detect_format(path, text)
    if fmt == "json":
        from .frontend import read_yosys_json

        return read_yosys_json(text, top=top)
    if fmt == "aiger":
        from .aig import aig_to_module, read_aiger
        from .ir import Design

        module = aig_to_module(read_aiger(text), name=top or "from_aig")
        return Design(top=module)
    return compile_verilog(text, top=top)


def _load_module(path: str, top: Optional[str], fmt: str = "auto"):
    """Load a design file and return its top module."""
    return _load_design(path, top, fmt).top


def _run_and_report(module, flow, check: bool, as_json: bool,
                    verbose: bool = False,
                    engine: str = "incremental",
                    store: Optional[str] = None) -> int:
    session = Session(module, engine=engine, store_path=store)
    if verbose:
        session.subscribe(PrintObserver(stream=sys.stderr, verbose=True))
    try:
        report = session.run(flow, check=check)
    finally:
        session.close()  # persists the --store delta even on failure
    if as_json:
        print(report.to_json(indent=2))
        return 0
    print(
        f"{report.case_name}: original AIG area {report.original_area} -> "
        f"{report.optimized_area} "
        f"({100 * report.reduction_vs_original:.2f}% reduction, {report.flow})"
    )
    if not report.converged:
        print(
            f"warning: round limit reached after {report.rounds} round(s) "
            f"without convergence", file=sys.stderr,
        )
    if check:
        print("equivalence check: PASSED")
    for key, value in sorted(report.pass_stats.items()):
        print(f"  {key} = {value}")
    if report.oracle_stats:
        summary = ", ".join(
            f"{key}={value}"
            for key, value in sorted(report.oracle_stats.items())
        )
        print(f"  sat-oracle: {summary}")
    return 0


def cmd_opt(args: argparse.Namespace) -> int:
    """Optimize one Verilog/JSON/AIGER file with a preset and report areas."""
    module = _load_module(args.source, args.top, args.format)
    return _run_and_report(module, args.optimizer, args.check, args.json,
                           args.verbose, args.engine, args.store)


def cmd_script(args: argparse.Namespace) -> int:
    """Parse and run an arbitrary flow script over one file."""
    from .flow import FlowScriptError, FlowSpec

    try:
        spec = FlowSpec.parse(args.flow)
        if not spec.steps:
            raise FlowScriptError("empty flow script (no pass statements)")
        spec.validate()
    except FlowScriptError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    module = _load_module(args.source, args.top, args.format)
    return _run_and_report(module, spec, args.check, args.json, args.verbose,
                           args.engine, args.store)


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the module's cell histogram and AIG statistics."""
    module = _load_module(args.source, args.top)
    print(f"module {module.name}")
    for key, value in sorted(module.stats().items()):
        print(f"  {key:16s} {value}")
    print(f"  {'aig':16s} {aig_stats(aig_map(module))}")
    return 0


def cmd_aig(args: argparse.Namespace) -> int:
    """Bit-blast to an AIG and write ASCII AIGER."""
    module = _load_module(args.source, args.top)
    aig = aig_map(module)
    if args.output:
        import io

        buffer = io.StringIO()
        write_aiger(aig, buffer)
        # tempfile + os.replace: a crash mid-write must never leave a
        # truncated artifact under the real name
        atomic_write_text(args.output, buffer.getvalue())
        print(f"wrote {args.output}: {aig_stats(aig)}")
    else:
        write_aiger(aig, sys.stdout)
    return 0


def cmd_write(args: argparse.Namespace) -> int:
    """Optimize (optionally) and write structural Verilog or Yosys JSON."""
    from .flow.pipeline import optimize
    from .ir import verilog_str, yosys_json_str

    module = _load_module(args.source, args.top)
    if args.optimizer != "none":
        optimize(module, args.optimizer)
    out_format = args.output_format
    if out_format == "auto":
        out_format = (
            "json" if args.output and args.output.endswith(".json")
            else "verilog"
        )
    if out_format == "json":
        text = yosys_json_str(module)
    else:
        text = verilog_str(module)
    if args.output:
        atomic_write_text(args.output, text)
        print(f"wrote {args.output} ({args.optimizer}, {out_format})")
    else:
        sys.stdout.write(text)
    return 0


def cmd_equiv(args: argparse.Namespace) -> int:
    """SAT-prove two netlists equivalent; exit 1 with a counterexample otherwise."""
    from .equiv import check_equivalence

    gold = _load_module(args.gold, args.top)
    gate = _load_module(args.gate, args.top)
    result = check_equivalence(gold, gate)
    if result.equivalent:
        print(f"EQUIVALENT (proved by {result.method})")
        return 0
    print(f"NOT EQUIVALENT (found by {result.method})")
    for name, value in sorted(result.counterexample.items()):
        print(f"  {name} = {value}")
    return 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential-test every flow preset on random modules (exit 1 on any failure)."""
    from .equiv.differential import CI_CORPUS, run_differential

    if args.iterations is None:
        seeds = list(CI_CORPUS)
    else:
        seeds = list(range(args.seed_base, args.seed_base + args.iterations))

    def progress(result) -> None:
        status = "ok" if result.ok else "FAIL"
        print(
            f"  seed {result.seed} {result.flow}: "
            f"{result.original_area} -> {result.optimized_area} [{status}]",
            file=sys.stderr,
        )

    report = run_differential(
        seeds, on_result=progress if args.verbose else None, roundtrip=True,
        divergence=args.all_lanes, seeded=args.all_lanes,
        artifacts_dir=args.artifacts, shrink=args.shrink,
        shrink_probes=args.shrink_probes,
    )
    if args.json:
        print(report.to_json(indent=2))
    else:
        summary = report.summary()
        print(
            f"fuzz: {summary['checks']} checks over {summary['cases']} "
            f"modules, {summary['failures']} failure(s)"
        )
        oracle = summary["oracle"]
        print(
            f"  cec-oracle: queries={oracle.get('queries', 0)} "
            f"conflicts={oracle.get('conflicts', 0)}"
        )
        for failure in report.failures:
            print(
                f"  FAIL seed={failure.seed} flow={failure.flow} "
                f"method={failure.method} cex={failure.counterexample}"
            )
        for entry in report.reductions:
            if "cells" in entry:
                print(
                    f"  shrunk seed={entry['seed']} flow={entry['flow']}: "
                    f"{entry['original_cells']} -> {entry['cells']} cells "
                    f"({100 * entry['reduction']:.1f}%, "
                    f"oracle={entry['oracle']}, label={entry['label']})"
                )
            else:
                print(
                    f"  shrink FAILED seed={entry['seed']} "
                    f"flow={entry['flow']}: {entry.get('error', '?')}"
                )
        for path in report.artifacts:
            print(f"  wrote {path}")
    return 0 if report.ok else 1


def cmd_reduce(args: argparse.Namespace) -> int:
    """Delta-debug a failing case down to a minimal repro (exit 2 if the
    input does not fail the oracle at all)."""
    import json as _json

    from .ir import verilog_str, yosys_json_str
    from .testing import (
        NotFailingError,
        get_oracle,
        reduce_design,
        reduce_module,
    )

    oracle = get_oracle(args.oracle, flow=args.flow)
    design = _load_design(args.source, args.top, args.format)
    progress = None
    if args.verbose:
        progress = lambda msg: print(f"  {msg}", file=sys.stderr)  # noqa: E731
    try:
        if oracle.scope == "design":
            result = reduce_design(design, oracle,
                                   max_probes=args.max_probes,
                                   on_progress=progress)
            minimized = result.design
            modules = list(minimized)
        else:
            result = reduce_module(design.top, oracle,
                                   max_probes=args.max_probes,
                                   on_progress=progress)
            minimized = result.module
            modules = [minimized]
    except NotFailingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"reduce: {result.original_cells} -> {result.cells} cells "
        f"({100 * result.reduction:.1f}%), label {result.target!r}, "
        f"{result.probes} probes", file=sys.stderr,
    )
    if args.json:
        print(_json.dumps(result.summary(), indent=2, sort_keys=True))
    if args.output:
        if args.output.endswith(".json"):
            text = yosys_json_str(minimized)
        else:
            text = "\n".join(verilog_str(m) for m in modules)
        atomic_write_text(args.output, text)
        print(f"wrote {args.output}", file=sys.stderr)
    elif not args.json:
        sys.stdout.write("\n".join(verilog_str(m) for m in modules))
    return 0


def cmd_hier(args: argparse.Namespace) -> int:
    """Optimize a hierarchical design bottom-up with instance replay."""
    design = _load_design(args.source, args.top, args.format)
    session = Session(design, store_path=args.store)
    try:
        report = session.run_hierarchy(
            args.optimizer, top=args.top, check=args.check
        )
    finally:
        session.close()  # persists the --store delta even on failure
    if args.json:
        print(report.to_json(indent=2))
        return 0
    print(
        f"{report.top}: weighted AIG area {report.original_total_area} -> "
        f"{report.total_area} "
        f"({100 * report.reduction_vs_original:.2f}% reduction, {report.flow})"
    )
    for name in report.order:
        module = report.reports[name]
        count = report.instance_counts.get(name, 1)
        tag = ""
        if name in report.replayed:
            tag = f"  [replayed from {report.replayed[name]}]"
        elif name in report.replay_fallbacks:
            tag = f"  [fallback: {report.replay_fallbacks[name]}]"
        print(
            f"  {name:<24} x{count:<3} {module.original_area:>6} -> "
            f"{module.optimized_area:>6}{tag}"
        )
    if args.check:
        print("equivalence checks: PASSED")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived JSON-lines optimization daemon."""
    from .flow.serve import (
        DEFAULT_QUEUE_LIMIT,
        FlowServer,
        serve_socket,
        serve_stdin,
    )

    server = FlowServer(
        store_path=args.store,
        engine=args.engine,
        max_workers=args.jobs,
        keep_generations=args.keep_generations,
        isolation=args.isolation,
        default_timeout_s=args.timeout,
        max_retries=args.max_retries,
        queue_limit=(args.queue_limit if args.queue_limit is not None
                     else DEFAULT_QUEUE_LIMIT),
        per_client_limit=args.per_client,
        drain_timeout_s=args.drain,
        allow_fault_injection=args.allow_fault_injection,
    )
    if args.port is not None:
        def announce(port: int) -> None:
            print(f"serving on 127.0.0.1:{port}", file=sys.stderr,
                  flush=True)

        return serve_socket(server, port=args.port, on_listening=announce)
    return serve_stdin(server)


def _format_cache_stats(stats: dict) -> str:
    """One-line per-kind hit-rate summary of suite/run cache totals."""
    kinds = sorted(
        {key[: -len("_hits")] for key in stats if key.endswith("_hits")}
        | {key[: -len("_misses")] for key in stats if key.endswith("_misses")}
    )
    parts = []
    for kind in kinds:
        if kind.startswith("oracle"):
            continue  # oracle counters print via their own summary line
        hits = stats.get(f"{kind}_hits", 0)
        total = hits + stats.get(f"{kind}_misses", 0)
        rate = 100.0 * hits / total if total else 0.0
        parts.append(f"{kind} {hits}/{total} ({rate:.1f}%)")
    for key in ("evictions", "merged", "entries"):
        if stats.get(key):
            parts.append(f"{key}={stats[key]}")
    if stats.get("oracle_cache_hits") is not None:
        parts.append(
            f"oracle-verdicts {stats.get('oracle_cache_hits', 0)}"
            f"/{stats.get('oracle_queries', 0)}"
        )
    return ", ".join(parts) if parts else "no cache traffic"


def cmd_bench(args: argparse.Namespace) -> int:
    """Regenerate a paper table on the synthetic suite, in parallel."""
    session = Session()
    session.subscribe(PrintObserver(stream=sys.stderr))
    jobs = args.jobs
    executor = args.executor

    if args.table == "table2":
        results = session.run_suite(
            suite_cases(CASE_NAMES, build_case), ("yosys", "smartly"),
            max_workers=jobs, executor=executor,
        )
        print(render_table2(results))
    elif args.table == "table3":
        results = session.run_suite(
            suite_cases(CASE_NAMES, build_case),
            ("yosys", "smartly-sat", "smartly-rebuild", "smartly"),
            max_workers=jobs, executor=executor,
        )
        print(render_table3(results))
    elif args.table == "industrial":
        results = session.run_suite(
            build_industrial(), ("yosys", "smartly"), max_workers=jobs,
            executor=executor,
        )
        print(render_industrial(results))
    else:
        raise ValueError(f"unknown bench {args.table!r}")
    print(f"suite caches: {_format_cache_stats(results.cache_stats)}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a flow × k × sim-threshold DSE grid over preset workloads."""
    from .flow.sweep import run_sweep

    try:
        report = run_sweep(
            workloads=args.workloads or None,
            flows=args.flows or ("yosys", "smartly"),
            ks=args.k or (),
            sim_thresholds=args.sim_threshold or (),
            width=args.width,
            max_workers=args.jobs,
            executor=args.executor,
            check=args.check,
            store_path=args.store,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output_json:
        atomic_write_text(args.output_json, report.to_json(indent=2) + "\n")
        print(f"wrote {args.output_json}", file=sys.stderr)
    if args.output_markdown:
        atomic_write_text(args.output_markdown, report.to_markdown())
        print(f"wrote {args.output_markdown}", file=sys.stderr)
    if args.json:
        print(report.to_json(indent=2))
    else:
        sys.stdout.write(report.to_markdown())
        print(f"suite caches: "
              f"{_format_cache_stats(report.suite.cache_stats)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (one sub-parser per subcommand)."""
    parser = argparse.ArgumentParser(
        prog="smartly",
        description="smaRTLy RTL multiplexer optimization (DAC 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("opt", help="optimize a Verilog file and report AIG area")
    p_opt.add_argument("source")
    p_opt.add_argument("--top", default=None)
    p_opt.add_argument("--optimizer", choices=OPTIMIZERS, default="smartly")
    p_opt.add_argument("--check", action="store_true",
                       help="prove equivalence of the optimized netlist")
    p_opt.add_argument("--json", action="store_true",
                       help="print the RunReport as JSON")
    p_opt.add_argument("-v", "--verbose", action="store_true",
                       help="stream per-pass progress events to stderr")
    p_opt.add_argument("--engine", choices=("incremental", "eager"),
                       default="incremental",
                       help="pass engine: incremental dirty-set worklists "
                            "(default) or eager whole-module sweeps")
    p_opt.add_argument("--store", default=None, metavar="DIR",
                       help="persistent result-cache directory: warm-start "
                            "from it and write this run's delta back")
    p_opt.add_argument("--format", choices=INPUT_FORMATS, default="auto",
                       help="input format (default: sniff suffix/content)")
    p_opt.set_defaults(func=cmd_opt)

    p_script = sub.add_parser(
        "script",
        help='run a flow script, e.g. "opt_expr; smartly k=6; opt_clean"',
    )
    p_script.add_argument("flow", help="semicolon-separated pass statements")
    p_script.add_argument("source")
    p_script.add_argument("--top", default=None)
    p_script.add_argument("--check", action="store_true",
                          help="prove equivalence of the optimized netlist")
    p_script.add_argument("--json", action="store_true",
                          help="print the RunReport as JSON")
    p_script.add_argument("-v", "--verbose", action="store_true",
                          help="stream per-pass progress events to stderr")
    p_script.add_argument("--engine", choices=("incremental", "eager"),
                          default="incremental",
                          help="pass engine: incremental dirty-set worklists "
                               "(default) or eager whole-module sweeps")
    p_script.add_argument("--store", default=None, metavar="DIR",
                          help="persistent result-cache directory: "
                               "warm-start from it and write this run's "
                               "delta back")
    p_script.add_argument("--format", choices=INPUT_FORMATS, default="auto",
                          help="input format (default: sniff suffix/content)")
    p_script.set_defaults(func=cmd_script)

    p_stats = sub.add_parser("stats", help="print cell and AIG statistics")
    p_stats.add_argument("source")
    p_stats.add_argument("--top", default=None)
    p_stats.set_defaults(func=cmd_stats)

    p_aig = sub.add_parser("aig", help="map to AIG and write AIGER")
    p_aig.add_argument("source")
    p_aig.add_argument("--top", default=None)
    p_aig.add_argument("-o", "--output", default=None)
    p_aig.set_defaults(func=cmd_aig)

    p_write = sub.add_parser(
        "write", help="optimize and write structural Verilog"
    )
    p_write.add_argument("source")
    p_write.add_argument("--top", default=None)
    p_write.add_argument("--optimizer", choices=OPTIMIZERS, default="smartly")
    p_write.add_argument("-o", "--output", default=None)
    p_write.add_argument("--output-format", choices=("auto", "verilog", "json"),
                         default="auto",
                         help="netlist format: Verilog or Yosys JSON "
                              "(default: json when --output ends in .json)")
    p_write.set_defaults(func=cmd_write)

    p_equiv = sub.add_parser(
        "equiv", help="SAT-prove two Verilog files equivalent"
    )
    p_equiv.add_argument("gold")
    p_equiv.add_argument("gate")
    p_equiv.add_argument("--top", default=None)
    p_equiv.set_defaults(func=cmd_equiv)

    p_bench = sub.add_parser("bench", help="regenerate a paper table")
    p_bench.add_argument("table", choices=("table2", "table3", "industrial"))
    p_bench.add_argument("-j", "--jobs", type=int, default=None,
                         help="parallel suite workers (default: auto)")
    p_bench.add_argument("--executor", choices=("thread", "process"),
                         default="thread",
                         help="worker pool: GIL-bound threads (default) or "
                              "a process pool for real CPU parallelism")
    p_bench.set_defaults(func=cmd_bench)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential-test all flow presets on random modules",
    )
    p_fuzz.add_argument(
        "-n", "--iterations", type=int, default=None,
        help="number of random seeds (default: the fixed CI corpus)")
    p_fuzz.add_argument(
        "--seed-base", type=int, default=2000,
        help="first seed when --iterations is given (default: 2000)")
    p_fuzz.add_argument("--json", action="store_true",
                        help="print the fuzz report as JSON")
    p_fuzz.add_argument("-v", "--verbose", action="store_true",
                        help="stream per-check progress to stderr")
    p_fuzz.add_argument("--all-lanes", action="store_true",
                        help="also run the engine-divergence and "
                             "seeded-rerun lanes per seed x flow")
    p_fuzz.add_argument("--artifacts", default=None, metavar="DIR",
                        help="dump every failing seed's generating module "
                             "(.v + .json) into DIR before any reduction")
    p_fuzz.add_argument("--shrink", action="store_true",
                        help="auto-minimize each failure through its "
                             "matching repro.testing oracle")
    p_fuzz.add_argument("--shrink-probes", type=int, default=400,
                        metavar="N",
                        help="oracle-probe budget per shrink (default: 400)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    from .testing import ORACLE_NAMES

    p_reduce = sub.add_parser(
        "reduce",
        help="delta-debug a failing design to a minimal repro while an "
             "oracle keeps failing with the same label",
    )
    p_reduce.add_argument("source")
    p_reduce.add_argument("--oracle", choices=ORACLE_NAMES, default="cec",
                          help="interestingness predicate (default: cec)")
    p_reduce.add_argument("--flow", default="smartly",
                          help="flow preset or script the oracle runs "
                               "(default: smartly)")
    p_reduce.add_argument("--top", default=None)
    p_reduce.add_argument("--max-probes", type=int, default=2000,
                          metavar="N",
                          help="oracle-probe budget (default: 2000)")
    p_reduce.add_argument("-o", "--output", default=None, metavar="PATH",
                          help="write the minimized netlist to PATH "
                               "(Yosys JSON when it ends in .json, "
                               "Verilog otherwise; default: stdout)")
    p_reduce.add_argument("--json", action="store_true",
                          help="print the reduction summary as JSON")
    p_reduce.add_argument("-v", "--verbose", action="store_true",
                          help="stream per-shrink progress to stderr")
    p_reduce.add_argument("--format", choices=INPUT_FORMATS, default="auto",
                          help="input format (default: sniff suffix/content)")
    p_reduce.set_defaults(func=cmd_reduce)

    p_hier = sub.add_parser(
        "hier",
        help="optimize a hierarchical design bottom-up with instance replay",
    )
    p_hier.add_argument("source")
    p_hier.add_argument("--top", default=None)
    p_hier.add_argument("--optimizer", choices=OPTIMIZERS, default="smartly")
    p_hier.add_argument("--check", action="store_true",
                        help="SAT-prove every module (replays included)")
    p_hier.add_argument("--json", action="store_true",
                        help="print the HierarchyReport as JSON")
    p_hier.add_argument("--store", default=None, metavar="DIR",
                        help="persistent result-cache directory: warm-start "
                             "from it and write this run's delta back")
    p_hier.add_argument("--format", choices=INPUT_FORMATS, default="auto",
                        help="input format (default: sniff suffix/content)")
    p_hier.set_defaults(func=cmd_hier)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived optimization daemon: JSON-lines flow jobs over "
             "stdin (or --port), streamed progress events and reports",
    )
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="persistent result-cache directory shared "
                              "across daemon restarts (and with opt/script/"
                              "hier --store)")
    p_serve.add_argument("-j", "--jobs", type=int, default=None,
                         help="concurrent in-flight jobs (default: auto)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="serve a localhost TCP socket on this port "
                              "instead of stdin (0 = ephemeral, announced "
                              "on stderr)")
    p_serve.add_argument("--engine", choices=("incremental", "eager"),
                         default="incremental",
                         help="pass engine for served jobs")
    p_serve.add_argument("--keep-generations", type=int, default=32,
                         help="store generations kept by gc at each "
                              "checkpoint (default: 32)")
    p_serve.add_argument("--isolation", choices=("thread", "process"),
                         default="thread",
                         help="job execution: in-process threads, or a "
                              "supervised pool of worker subprocesses that "
                              "survive crashes/hangs (default: thread)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="default per-job wall-clock budget; on expiry "
                              "the worker is killed and the job retried "
                              "under a doubled budget (process isolation "
                              "only; requests override with 'timeout_s')")
    p_serve.add_argument("--max-retries", type=int, default=2,
                         help="retries for retryable failures — worker "
                              "death, timeout — with exponential backoff "
                              "(default: 2)")
    p_serve.add_argument("--queue-limit", type=int, default=None,
                         metavar="N",
                         help="jobs in flight or queued before new ones are "
                              "shed with a 'busy' response (default: 256)")
    p_serve.add_argument("--per-client", type=int, default=None,
                         metavar="N",
                         help="in-flight jobs allowed per request 'client' "
                              "key before that client gets 'busy' "
                              "(default: unlimited)")
    p_serve.add_argument("--drain", type=float, default=None,
                         metavar="SECONDS",
                         help="shutdown drain deadline: in-flight jobs get "
                              "this long to finish before they are "
                              "cancelled and reported (default: wait)")
    p_serve.add_argument("--allow-fault-injection", action="store_true",
                         help="honor the test-only 'inject' request field "
                              "(chaos drills; see repro.core.faults)")
    p_serve.set_defaults(func=cmd_serve)

    p_sweep = sub.add_parser(
        "sweep",
        help="design-space sweep: a flow x k x sim-threshold grid over "
             "preset workloads, one shared-baseline parallel suite",
    )
    p_sweep.add_argument("--flow", dest="flows", action="append",
                         default=None, metavar="NAME",
                         help="flow preset or script to sweep (repeatable; "
                              "default: yosys + smartly)")
    p_sweep.add_argument("--workload", dest="workloads", action="append",
                         default=None, choices=CASE_NAMES, metavar="NAME",
                         help="preset workload model (repeatable; default: "
                              "the five primary IWLS cases)")
    p_sweep.add_argument("-k", action="append", type=int, default=None,
                         metavar="K",
                         help="smartly cut-size value (repeatable; expands "
                              "the smartly-family grid)")
    p_sweep.add_argument("--sim-threshold", action="append", type=int,
                         default=None, metavar="N",
                         help="smartly simulation threshold (repeatable)")
    p_sweep.add_argument("--width", type=int, default=8,
                         help="workload model bit-width (default: 8)")
    p_sweep.add_argument("-j", "--jobs", type=int, default=None,
                         help="parallel suite workers (default: auto)")
    p_sweep.add_argument("--executor", choices=("thread", "process"),
                         default="thread",
                         help="worker pool: GIL-bound threads (default) or "
                              "a process pool for real CPU parallelism")
    p_sweep.add_argument("--check", action="store_true",
                         help="SAT-prove every grid point's result")
    p_sweep.add_argument("--json", action="store_true",
                         help="print the SweepReport as JSON instead of "
                              "the Markdown table")
    p_sweep.add_argument("--output-json", default=None, metavar="PATH",
                         help="also write the JSON report to PATH")
    p_sweep.add_argument("--output-markdown", default=None, metavar="PATH",
                         help="also write the Markdown report to PATH")
    p_sweep.add_argument("--store", default=None, metavar="DIR",
                         help="persistent result-cache directory: warm-start "
                              "from it and write this sweep's delta back")
    p_sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv=None) -> int:
    """CLI entry point: parse arguments, dispatch, return the exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
