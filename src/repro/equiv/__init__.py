"""SAT-based combinational equivalence checking (miter + CEC)."""

from .cec import EquivResult, assert_equivalent, check_equivalence
from .miter import PortMismatchError, build_miter

__all__ = [
    "EquivResult",
    "PortMismatchError",
    "assert_equivalent",
    "build_miter",
    "check_equivalence",
]
