"""SAT-based combinational equivalence checking (miter + CEC) and the
differential-testing harness built on it."""

from .cec import EquivResult, assert_equivalent, check_equivalence
from .differential import (
    CI_CORPUS,
    DifferentialReport,
    DifferentialResult,
    random_module,
    roundtrip_result,
    run_differential,
)
from .miter import PortMismatchError, build_miter

__all__ = [
    "CI_CORPUS",
    "DifferentialReport",
    "DifferentialResult",
    "EquivResult",
    "PortMismatchError",
    "assert_equivalent",
    "build_miter",
    "check_equivalence",
    "random_module",
    "roundtrip_result",
    "run_differential",
]
