"""SAT-based combinational equivalence checking.

``check_equivalence(gold, gate)`` mirrors the paper's "all results passed
equivalence checking": a fast random-simulation filter finds most
non-equivalences; the SAT check on the miter then proves equivalence or
produces a concrete counterexample assignment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..aig.cnf import aig_to_solver
from ..ir.module import Module
from .miter import build_miter


@dataclass
class EquivResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: "sim" when random simulation found the mismatch, "sat" otherwise
    method: str = "sat"
    #: input-bit-name -> value for the distinguishing assignment (if any)
    counterexample: Dict[str, int] = field(default_factory=dict)
    sat_conflicts: int = 0

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    gold: Module,
    gate: Module,
    random_vectors: int = 256,
    seed: int = 0,
    max_conflicts: Optional[int] = None,
) -> EquivResult:
    """Prove or refute combinational equivalence of two modules.

    Raises :class:`TimeoutError` when ``max_conflicts`` is given and the
    solver cannot settle the question within the budget.
    """
    aig, miter_lit = build_miter(gold, gate)

    # 1. random-simulation filter
    if random_vectors > 0 and aig.num_inputs > 0:
        rng = random.Random(seed)
        masks = [rng.getrandbits(random_vectors) for _ in range(aig.num_inputs)]
        values = aig.eval_masks(masks, nvec=random_vectors)

        def lit_val(lit: int) -> int:
            mask = (1 << random_vectors) - 1
            if lit >> 1 == 0:
                value = 0
            else:
                value = values[lit >> 1]
            return (~value & mask) if lit & 1 else value

        diff = lit_val(miter_lit)
        if diff:
            vector = (diff & -diff).bit_length() - 1  # lowest set bit
            cex = {
                name: (masks[i] >> vector) & 1
                for i, name in enumerate(aig.input_names)
            }
            return EquivResult(False, method="sim", counterexample=cex)

    # 2. SAT proof on the miter
    solver, var_map = aig_to_solver(aig)
    const_var = var_map[0]
    if miter_lit >> 1 == 0:
        # miter folded to a constant during construction
        miter_is_true = miter_lit & 1 == 1
        return EquivResult(not miter_is_true, method="fold")
    assumption = var_map[miter_lit >> 1]
    if miter_lit & 1:
        assumption = -assumption
    result = solver.solve([assumption], max_conflicts=max_conflicts)
    if result is None:
        raise TimeoutError("equivalence check exceeded the conflict budget")
    if result is False:
        return EquivResult(True, method="sat", sat_conflicts=solver.stats.conflicts)
    cex = {}
    for i, name in enumerate(aig.input_names):
        value = solver.model_value(var_map[i + 1])
        cex[name] = int(bool(value))
    return EquivResult(
        False, method="sat", counterexample=cex, sat_conflicts=solver.stats.conflicts
    )


def assert_equivalent(gold: Module, gate: Module, **kwargs) -> None:
    """Raise AssertionError with the counterexample when not equivalent."""
    result = check_equivalence(gold, gate, **kwargs)
    if not result.equivalent:
        raise AssertionError(
            f"modules {gold.name!r} and {gate.name!r} are NOT equivalent "
            f"(found by {result.method}); counterexample: {result.counterexample}"
        )
