"""SAT-based combinational equivalence checking.

``check_equivalence(gold, gate)`` mirrors the paper's "all results passed
equivalence checking": a fast random-simulation filter finds most
non-equivalences; the SAT check on the miter then proves equivalence or
produces a concrete counterexample assignment.

The SAT step runs through a :class:`~repro.sat.oracle.SatOracle` — pass
one in (``oracle=...``) to accumulate query/conflict counters across many
checks, e.g. a fuzzing session or ``Session.run_suite(check=True)``.

Decided SAT verdicts can additionally persist in an exportable
:class:`~repro.core.cache.ResultCache` (``cache=...``): the entry is keyed
``("cec", <miter structural digest>)`` where the digest covers the shared
miter AIG's input count, AND-node table and miter literal but *not* its
input names — the name-based port pairing is already baked into the node
structure, so renamed clones and replayed siblings that build the same
miter share the verdict, while independently built twins at worst miss
conservatively.  Only hard SAT verdicts are stored (never ``budget``,
``sim`` or ``fold`` outcomes), so a hit replays a proof, not a guess; a
cached non-equivalence carries no counterexample (``method="cached"``).
Unlike the oracle's in-process verdict memo, these entries survive
``export()``/``merge()`` warm-starts across processes.

Conflict-budget exhaustion is a first-class outcome: the returned
:class:`EquivResult` has ``equivalent=False`` **and** ``undecided=True``
(``method="budget"``), which is distinct from a proven non-equivalence
(``undecided=False`` with a counterexample).  Callers that need a hard
verdict should treat ``undecided`` results as failures, as
:func:`assert_equivalent` does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..ir.module import Module
from ..sat.oracle import SatOracle
from .miter import build_miter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache -> oracle)
    from ..core.cache import ResultCache


@dataclass
class EquivResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: "sim" when random simulation found the mismatch, "fold" when the
    #: miter folded to a constant, "budget" when the conflict budget ran
    #: out before a verdict, "cached" when a ResultCache replayed a prior
    #: SAT verdict (no counterexample on cached refutations), "sat"
    #: otherwise
    method: str = "sat"
    #: input-bit-name -> value for the distinguishing assignment (if any)
    counterexample: Dict[str, int] = field(default_factory=dict)
    sat_conflicts: int = 0
    #: True when the solver exhausted its conflict budget: neither proven
    #: equivalent nor refuted (no counterexample exists in this result)
    undecided: bool = False

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    gold: Module,
    gate: Module,
    random_vectors: int = 256,
    seed: int = 0,
    max_conflicts: Optional[int] = None,
    oracle: Optional[SatOracle] = None,
    cache: Optional["ResultCache"] = None,
) -> EquivResult:
    """Prove or refute combinational equivalence of two modules.

    When ``max_conflicts`` is given and the solver cannot settle the
    question within the budget, the result is *undecided*
    (``EquivResult(False, method="budget", undecided=True)``) rather than
    a claim in either direction.  ``cache`` persists decided SAT verdicts
    under the miter's structural digest (see module docs); only
    structural-mode caches participate.
    """
    aig, miter_lit = build_miter(gold, gate)

    cec_key = None
    if cache is not None and cache.structural:
        cec_key = ("cec", aig.structural_digest(miter_lit))
        hit, verdict = cache.lookup(cec_key)
        if hit:
            return EquivResult(bool(verdict), method="cached")

    # 1. random-simulation filter
    if random_vectors > 0 and aig.num_inputs > 0:
        rng = random.Random(seed)
        masks = [rng.getrandbits(random_vectors) for _ in range(aig.num_inputs)]
        values = aig.eval_masks(masks, nvec=random_vectors)

        def lit_val(lit: int) -> int:
            mask = (1 << random_vectors) - 1
            if lit >> 1 == 0:
                value = 0
            else:
                value = values[lit >> 1]
            return (~value & mask) if lit & 1 else value

        diff = lit_val(miter_lit)
        if diff:
            vector = (diff & -diff).bit_length() - 1  # lowest set bit
            cex = {
                name: (masks[i] >> vector) & 1
                for i, name in enumerate(aig.input_names)
            }
            return EquivResult(False, method="sim", counterexample=cex)

    # 2. SAT proof on the miter
    if miter_lit >> 1 == 0:
        # miter folded to a constant during construction
        miter_is_true = miter_lit & 1 == 1
        return EquivResult(not miter_is_true, method="fold")
    if oracle is None:
        oracle = SatOracle()
    conflicts_before = oracle.stats.conflicts
    verdict, model = oracle.solve_miter(aig, miter_lit, max_conflicts)
    conflicts = oracle.stats.conflicts - conflicts_before
    if verdict is None:
        return EquivResult(
            False, method="budget", sat_conflicts=conflicts, undecided=True
        )
    if verdict is False:
        if cec_key is not None:
            cache.store(cec_key, True)
        return EquivResult(True, method="sat", sat_conflicts=conflicts)
    cex = {
        name: int(model.get(i + 1, False))
        for i, name in enumerate(aig.input_names)
    }
    if cec_key is not None:
        cache.store(cec_key, False)
    return EquivResult(
        False, method="sat", counterexample=cex, sat_conflicts=conflicts
    )


def assert_equivalent(gold: Module, gate: Module, **kwargs) -> None:
    """Raise AssertionError unless the modules are *proven* equivalent.

    Both a found counterexample and an exhausted conflict budget raise —
    an undecided check is not a pass."""
    result = check_equivalence(gold, gate, **kwargs)
    if result.undecided:
        raise AssertionError(
            f"equivalence of {gold.name!r} and {gate.name!r} is UNDECIDED: "
            f"conflict budget exhausted after {result.sat_conflicts} conflicts"
        )
    if not result.equivalent:
        raise AssertionError(
            f"modules {gold.name!r} and {gate.name!r} are NOT equivalent "
            f"(found by {result.method}); counterexample: {result.counterexample}"
        )
