"""Miter construction for combinational equivalence checking.

Two modules with the same port signature are mapped into one shared AIG
(inputs unified by name), corresponding output bits are XORed and the XORs
are OR-reduced into a single *miter* output: the circuits are equivalent iff
that output is constant 0.

DFF handling: dff ``Q`` outputs become shared miter inputs and dff ``D``
inputs become compared outputs (keyed by cell name), so two netlists are
"equivalent" when all next-state and output functions agree — the standard
sequential-preserving combinational check used after synthesis passes that
keep registers in place.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..aig.aig import AIG
from ..aig.aigmap import AigMapper
from ..ir.cells import CellType
from ..ir.module import Module
from ..ir.signals import SigBit
from ..ir.walker import NetIndex


class PortMismatchError(Exception):
    """The two modules do not share the same I/O signature."""


def _io_signature(module: Module) -> Tuple[Dict[str, int], Dict[str, int]]:
    ins = {w.name: w.width for w in module.inputs}
    outs = {w.name: w.width for w in module.outputs}
    return ins, outs


def _input_bit_names(module: Module, index: NetIndex) -> List[str]:
    """Names of all source bits as AigMapper will declare them."""
    names: List[str] = []
    for wire in module.inputs:
        names.extend(f"{wire.name}[{i}]" for i in range(wire.width))
    for cell in module.cells.values():
        if cell.type is CellType.DFF:
            names.extend(f"{cell.name}.Q[{i}]" for i in range(cell.width))
    # undriven instance binding bits (child-output nets) must be *shared*
    # miter inputs, or identical parent logic reading them would compare
    # two independent free variables and spuriously differ
    sigmap = index.sigmap
    for instance in module.instances.values():
        for pname in sorted(instance.connections):
            for i, bit in enumerate(instance.connections[pname]):
                cbit = sigmap.map_bit(bit)
                if not cbit.is_const and index.comb_driver(cbit) is None:
                    names.append(f"{instance.name}.{pname}[{i}]")
    return names


def build_miter(gold: Module, gate: Module) -> Tuple[AIG, int]:
    """Build the miter AIG.  Returns ``(aig, miter_output_literal)``.

    Raises :class:`PortMismatchError` when I/O signatures differ.  Extra
    internal sources (undriven wires) in either module become independent
    miter inputs, which is conservative: equivalence then must hold for all
    their values.
    """
    gold_ins, gold_outs = _io_signature(gold)
    gate_ins, gate_outs = _io_signature(gate)
    if gold_ins != gate_ins or gold_outs != gate_outs:
        raise PortMismatchError(
            f"signatures differ: in {gold_ins} vs {gate_ins}; "
            f"out {gold_outs} vs {gate_outs}"
        )

    gold_index = NetIndex(gold)
    gate_index = NetIndex(gate)

    aig = AIG()
    shared: Dict[str, int] = {}
    for name in _input_bit_names(gold, gold_index) + _input_bit_names(gate, gate_index):
        if name not in shared:
            shared[name] = aig.add_input(name)

    gold_mapper = AigMapper(gold, gold_index, aig=aig, input_lits=shared)
    gold_mapper.run()
    gold_outputs = {name: lit for name, lit in aig.outputs}
    aig.outputs.clear()

    gate_mapper = AigMapper(gate, gate_index, aig=aig, input_lits=shared)
    gate_mapper.run()
    gate_outputs = {name: lit for name, lit in aig.outputs}
    aig.outputs.clear()

    missing = set(gold_outputs) ^ set(gate_outputs)
    if missing:
        raise PortMismatchError(f"output bit sets differ on: {sorted(missing)}")

    xors = [
        aig.xor(gold_outputs[name], gate_outputs[name]) for name in gold_outputs
    ]
    miter_lit = aig.or_reduce(xors)
    aig.add_output(miter_lit, "miter")
    return aig, miter_lit
