"""Differential testing of optimization flows against the CEC oracle.

The harness closes the loop the paper relies on ("all results passed
equivalence checking") and makes it continuous: generate a random
combinational module from the :mod:`repro.workloads.generators` circuit
families, run every optimization flow preset over a private clone, and
SAT-prove the result equivalent to the unoptimized original.  Any
non-equivalence is a genuine optimizer bug, reported with the flow, the
generator seed (which reproduces the module exactly) and the concrete
counterexample assignment.

Used three ways:

* ``tests/fuzz/test_differential.py`` runs a fixed seed corpus in CI and
  extends it locally via ``pytest --fuzz-iterations=N``;
* ``python -m repro.cli fuzz --iterations N`` runs it standalone;
* libraries can call :func:`run_differential` with their own seeds/flows.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..flow.spec import PRESET_NAMES, FlowSpec
from ..ir.builder import Circuit
from ..ir.module import Module
from ..sat.oracle import SatOracle
from ..workloads.generators import (
    InputPool,
    unit_case_chain,
    unit_datapath,
    unit_dataport_redundancy,
    unit_dependent_ctrl_tree,
    unit_obfuscated_select,
    unit_onehot_pmux,
    unit_priority_if_chain,
    unit_shared_ctrl_tree,
)


def _unit_menu(rng: random.Random) -> List[Callable[[Circuit, InputPool], Any]]:
    """Scaled-down unit builders (sizes drawn from ``rng``)."""
    return [
        lambda c, p: unit_shared_ctrl_tree(c, p, depth=rng.randint(2, 5)),
        lambda c, p: unit_dependent_ctrl_tree(
            c, p, depth=rng.randint(2, 4),
            variant=rng.choice(["or", "and"]),
        ),
        lambda c, p: unit_case_chain(
            c, p, sel_width=rng.randint(2, 4),
            distinct_values=rng.randint(2, 4),
        ),
        lambda c, p: unit_onehot_pmux(
            c, p, n_requesters=rng.randint(2, 4), nest=rng.random() < 0.5
        ),
        lambda c, p: unit_obfuscated_select(
            c, p, n_requesters=rng.randint(2, 3), cone_ops=1
        ),
        lambda c, p: unit_dataport_redundancy(c, p, depth=rng.randint(2, 3)),
        lambda c, p: unit_datapath(c, p, ops=rng.randint(2, 5)),
        lambda c, p: unit_priority_if_chain(c, p, depth=rng.randint(2, 4)),
    ]


def random_module(
    seed: int,
    width: int = 4,
    n_units: int = 3,
    name: Optional[str] = None,
) -> Module:
    """A random combinational module built from the workload unit families.

    Deterministic per ``seed`` — a failing seed is a complete repro.
    """
    rng = random.Random(seed)
    circuit = Circuit(name or f"fuzz{seed}")
    pool = InputPool(circuit, rng, width, n_words=6, n_ctrl=5)
    menu = _unit_menu(rng)
    for i in range(n_units):
        unit = rng.choice(menu)
        circuit.output(f"u{i}", unit(circuit, pool))
    return circuit.module


@dataclass(frozen=True)
class DifferentialResult:
    """One (seed, flow) verdict."""

    seed: int
    flow: str
    case_name: str
    original_area: int
    optimized_area: int
    equivalent: bool
    #: True when the CEC ran out of conflict budget — neither a pass nor
    #: a counterexample; treated as a failure by :attr:`DifferentialReport.ok`
    undecided: bool
    method: str
    counterexample: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.equivalent and not self.undecided


@dataclass
class DifferentialReport:
    """All verdicts of one harness run plus the shared oracle's counters."""

    results: List[DifferentialResult] = field(default_factory=list)
    oracle_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> List[DifferentialResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict[str, Any]:
        return {
            "cases": len({r.seed for r in self.results}),
            "checks": len(self.results),
            "failures": len(self.failures),
            "oracle": dict(self.oracle_stats),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "summary": self.summary(),
            "failures": [asdict(r) for r in self.failures],
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)


def roundtrip_result(seed: int, golden: Module) -> DifferentialResult:
    """The Yosys-JSON round-trip lane: ``read(write(m))`` must be
    ``module_signature``-identical to ``m`` (exact structure, not just
    SAT equivalence — the exporter/reader pair may not rewrite anything).
    """
    from ..frontend.yosys_json import read_yosys_json
    from ..ir.json_writer import yosys_json_str
    from ..ir.struct_hash import module_signature

    restored = read_yosys_json(yosys_json_str(golden)).top
    identical = module_signature(restored) == module_signature(golden)
    return DifferentialResult(
        seed=seed,
        flow="json-roundtrip",
        case_name=golden.name,
        original_area=0,
        optimized_area=0,
        equivalent=identical,
        undecided=False,
        method="struct_hash",
    )


def run_differential(
    seeds: Iterable[int],
    flows: Sequence[Union[str, FlowSpec]] = PRESET_NAMES,
    *,
    width: int = 4,
    n_units: int = 3,
    random_vectors: int = 64,
    max_conflicts: Optional[int] = None,
    oracle: Optional[SatOracle] = None,
    on_result: Optional[Callable[[DifferentialResult], None]] = None,
    roundtrip: bool = False,
) -> DifferentialReport:
    """Run the differential harness over ``seeds`` × ``flows``.

    Every flow runs on a private clone; the unoptimized module is the
    golden reference for every check, so flows cannot mask each other's
    bugs.  A shared :class:`~repro.sat.oracle.SatOracle` accumulates
    CEC counters for the whole session (reported in the result).

    ``roundtrip=True`` adds one ``json-roundtrip`` lane per seed: the
    golden module must survive Yosys-JSON export + re-ingestion with an
    identical structural signature (see :func:`roundtrip_result`).
    """
    from ..flow.session import Session  # local import: flow layer is optional
    from .cec import check_equivalence

    if oracle is None:
        oracle = SatOracle()
    report = DifferentialReport()
    for seed in seeds:
        golden = random_module(seed, width=width, n_units=n_units)
        if roundtrip:
            result = roundtrip_result(seed, golden)
            report.results.append(result)
            if on_result is not None:
                on_result(result)
        for flow in flows:
            module = golden.clone()
            run = Session(module).run(flow)
            equiv = check_equivalence(
                golden,
                module,
                random_vectors=random_vectors,
                seed=seed,
                max_conflicts=max_conflicts,
                oracle=oracle,
            )
            result = DifferentialResult(
                seed=seed,
                flow=run.flow,
                case_name=golden.name,
                original_area=run.original_area,
                optimized_area=run.optimized_area,
                equivalent=equiv.equivalent,
                undecided=equiv.undecided,
                method=equiv.method,
                counterexample=dict(equiv.counterexample),
            )
            report.results.append(result)
            if on_result is not None:
                on_result(result)
    report.oracle_stats = oracle.stats.as_dict()
    return report


#: the fixed corpus CI replays (keep stable: appending is fine, renumbering
#: invalidates triage history)
CI_CORPUS = tuple(range(1000, 1024))


__all__ = [
    "CI_CORPUS",
    "DifferentialReport",
    "DifferentialResult",
    "random_module",
    "roundtrip_result",
    "run_differential",
]
