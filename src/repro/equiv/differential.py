"""Differential testing of optimization flows against the CEC oracle.

The harness closes the loop the paper relies on ("all results passed
equivalence checking") and makes it continuous: generate a random
combinational module from the :mod:`repro.workloads.generators` circuit
families, run every optimization flow preset over a private clone, and
SAT-prove the result equivalent to the unoptimized original.  Any
non-equivalence is a genuine optimizer bug, reported with the flow, the
generator seed (which reproduces the module exactly) and the concrete
counterexample assignment.

Used three ways:

* ``tests/fuzz/test_differential.py`` runs a fixed seed corpus in CI and
  extends it locally via ``pytest --fuzz-iterations=N``;
* ``python -m repro.cli fuzz --iterations N`` runs it standalone;
* libraries can call :func:`run_differential` with their own seeds/flows.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..flow.spec import PRESET_NAMES, FlowSpec
from ..ir.builder import Circuit
from ..ir.module import Module
from ..sat.oracle import SatOracle
from ..workloads.generators import (
    InputPool,
    unit_case_chain,
    unit_datapath,
    unit_dataport_redundancy,
    unit_dependent_ctrl_tree,
    unit_obfuscated_select,
    unit_onehot_pmux,
    unit_priority_if_chain,
    unit_shared_ctrl_tree,
)


def _unit_menu(rng: random.Random) -> List[Callable[[Circuit, InputPool], Any]]:
    """Scaled-down unit builders (sizes drawn from ``rng``)."""
    return [
        lambda c, p: unit_shared_ctrl_tree(c, p, depth=rng.randint(2, 5)),
        lambda c, p: unit_dependent_ctrl_tree(
            c, p, depth=rng.randint(2, 4),
            variant=rng.choice(["or", "and"]),
        ),
        lambda c, p: unit_case_chain(
            c, p, sel_width=rng.randint(2, 4),
            distinct_values=rng.randint(2, 4),
        ),
        lambda c, p: unit_onehot_pmux(
            c, p, n_requesters=rng.randint(2, 4), nest=rng.random() < 0.5
        ),
        lambda c, p: unit_obfuscated_select(
            c, p, n_requesters=rng.randint(2, 3), cone_ops=1
        ),
        lambda c, p: unit_dataport_redundancy(c, p, depth=rng.randint(2, 3)),
        lambda c, p: unit_datapath(c, p, ops=rng.randint(2, 5)),
        lambda c, p: unit_priority_if_chain(c, p, depth=rng.randint(2, 4)),
    ]


def random_module(
    seed: int,
    width: int = 4,
    n_units: int = 3,
    name: Optional[str] = None,
) -> Module:
    """A random combinational module built from the workload unit families.

    Deterministic per ``seed`` — a failing seed is a complete repro.
    """
    rng = random.Random(seed)
    circuit = Circuit(name or f"fuzz{seed}")
    pool = InputPool(circuit, rng, width, n_words=6, n_ctrl=5)
    menu = _unit_menu(rng)
    for i in range(n_units):
        unit = rng.choice(menu)
        circuit.output(f"u{i}", unit(circuit, pool))
    return circuit.module


@dataclass(frozen=True)
class DifferentialResult:
    """One (seed, flow) verdict."""

    seed: int
    flow: str
    case_name: str
    original_area: int
    optimized_area: int
    equivalent: bool
    #: True when the CEC ran out of conflict budget — neither a pass nor
    #: a counterexample; treated as a failure by :attr:`DifferentialReport.ok`
    undecided: bool
    method: str
    counterexample: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.equivalent and not self.undecided


@dataclass
class DifferentialReport:
    """All verdicts of one harness run plus the shared oracle's counters.

    When the harness runs with ``artifacts_dir``/``shrink``,
    :attr:`artifacts` lists every repro file written and
    :attr:`reductions` one summary dict per auto-shrunk failure.
    """

    results: List[DifferentialResult] = field(default_factory=list)
    oracle_stats: Dict[str, int] = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)
    reductions: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def failures(self) -> List[DifferentialResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict[str, Any]:
        return {
            "cases": len({r.seed for r in self.results}),
            "checks": len(self.results),
            "failures": len(self.failures),
            "oracle": dict(self.oracle_stats),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "summary": self.summary(),
            "failures": [asdict(r) for r in self.failures],
            "reductions": list(self.reductions),
            "artifacts": list(self.artifacts),
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)


def roundtrip_result(seed: int, golden: Module) -> DifferentialResult:
    """The Yosys-JSON round-trip lane: ``read(write(m))`` must be
    ``module_signature``-identical to ``m`` (exact structure, not just
    SAT equivalence — the exporter/reader pair may not rewrite anything).
    Exceptions become failing results (``method="roundtrip:error:..."``)
    rather than aborting the whole harness run.
    """
    from ..frontend.yosys_json import read_yosys_json
    from ..ir.json_writer import yosys_json_str
    from ..ir.struct_hash import module_signature

    try:
        restored = read_yosys_json(yosys_json_str(golden)).top
        identical = module_signature(restored) == module_signature(golden)
        method = "struct_hash"
    except Exception as exc:  # noqa: BLE001 — any break in the pair is the bug
        identical = False
        method = f"roundtrip:error:{type(exc).__name__}"
    return DifferentialResult(
        seed=seed,
        flow="json-roundtrip",
        case_name=golden.name,
        original_area=0,
        optimized_area=0,
        equivalent=identical,
        undecided=False,
        method=method,
    )


def _flow_label(flow: Union[str, FlowSpec]) -> str:
    if isinstance(flow, str):
        return flow
    return getattr(flow, "name", None) or str(flow)


def _failure_label(result: DifferentialResult) -> str:
    """The oracle label a failing result corresponds to (reducer target)."""
    if result.method.startswith(
        ("crash:", "divergence:", "seeded:", "roundtrip:")
    ):
        return result.method
    if result.flow == "json-roundtrip":
        return "roundtrip:signature"
    if result.undecided:
        return "cec:undecided"
    return "cec:counterexample"


def _oracle_for(result: DifferentialResult, *, random_vectors: int = 64,
                max_conflicts: Optional[int] = None):
    """Map a failing lane result to the oracle that reproduces it.

    Every lane the harness runs — CEC mismatch/undecided, engine
    divergence, seeded-rerun divergence, json-roundtrip, and crashes —
    routes to a :mod:`repro.testing.oracles` predicate here, which is
    what lets :func:`run_differential` auto-shrink any failure.
    """
    from ..testing.oracles import (
        CecOracle,
        CrashOracle,
        DivergenceOracle,
        RoundtripOracle,
        SeededRerunOracle,
    )

    if result.flow == "json-roundtrip":
        return RoundtripOracle()
    if result.flow.startswith("divergence:"):
        return DivergenceOracle(flow=result.flow.split(":", 1)[1])
    if result.flow.startswith("seeded:"):
        return SeededRerunOracle(flow=result.flow.split(":", 1)[1])
    if result.method.startswith("crash:"):
        return CrashOracle(flow=result.flow)
    return CecOracle(flow=result.flow, random_vectors=random_vectors,
                     max_conflicts=max_conflicts)


def _process_failure(
    report: DifferentialReport,
    result: DifferentialResult,
    golden: Module,
    *,
    artifacts_dir: Optional[str],
    shrink: bool,
    shrink_probes: int,
    random_vectors: int,
    max_conflicts: Optional[int],
    generator: Dict[str, Any],
) -> None:
    """Dump the failing case and (optionally) auto-shrink it.

    The pre-reduction dump happens unconditionally when ``artifacts_dir``
    is set — a failing seed is reproducible even when reduction is
    skipped or the reducer cannot confirm the failure.
    """
    from ..testing.reduce import NotFailingError, reduce_module, write_repro

    label = _failure_label(result)
    slug = result.flow.replace(":", "-")
    stem = f"seed{result.seed}.{slug}"
    meta = {
        "seed": result.seed,
        "flow": result.flow,
        "label": label,
        "generator": dict(generator),
    }
    if artifacts_dir:
        report.artifacts.extend(write_repro(
            artifacts_dir, f"{stem}.orig", golden,
            meta={**meta, "reduced": False},
        ))
    if not shrink:
        return
    oracle = _oracle_for(result, random_vectors=random_vectors,
                         max_conflicts=max_conflicts)
    entry: Dict[str, Any] = {"seed": result.seed, "flow": result.flow,
                             "oracle": oracle.name, "label": label}
    try:
        reduction = reduce_module(golden, oracle, max_probes=shrink_probes)
    except NotFailingError:
        # flaky outside the harness run (e.g. shared-oracle state): keep
        # the original dump, note that the shrink could not confirm it
        entry["error"] = "not-reproducible"
        report.reductions.append(entry)
        return
    entry.update(reduction.summary())
    if artifacts_dir:
        paths = write_repro(
            artifacts_dir, f"{stem}.min", reduction.module,
            meta={**meta, "reduced": True, "label": reduction.target,
                  "reduction": reduction.summary()},
        )
        report.artifacts.extend(paths)
        entry["artifact"] = paths[1]
    report.reductions.append(entry)


def run_differential(
    seeds: Iterable[int],
    flows: Sequence[Union[str, FlowSpec]] = PRESET_NAMES,
    *,
    width: int = 4,
    n_units: int = 3,
    random_vectors: int = 64,
    max_conflicts: Optional[int] = None,
    oracle: Optional[SatOracle] = None,
    on_result: Optional[Callable[[DifferentialResult], None]] = None,
    roundtrip: bool = False,
    divergence: bool = False,
    seeded: bool = False,
    artifacts_dir: Optional[str] = None,
    shrink: bool = False,
    shrink_probes: int = 400,
) -> DifferentialReport:
    """Run the differential harness over ``seeds`` × ``flows``.

    Every flow runs on a private clone; the unoptimized module is the
    golden reference for every check, so flows cannot mask each other's
    bugs.  A shared :class:`~repro.sat.oracle.SatOracle` accumulates
    CEC counters for the whole session (reported in the result).  A flow
    that raises becomes a failing ``crash:<ExcType>`` result instead of
    aborting the run.

    ``roundtrip=True`` adds one ``json-roundtrip`` lane per seed: the
    golden module must survive Yosys-JSON export + re-ingestion with an
    identical structural signature (see :func:`roundtrip_result`).
    ``divergence=True`` / ``seeded=True`` add one engine-divergence /
    seeded-rerun lane per seed × flow (reported as ``divergence:<flow>``
    and ``seeded:<flow>``; opt-in, the fixed CI corpus stays CEC-shaped).

    ``artifacts_dir`` dumps every failing seed's generating module as a
    ``.v`` + ``.json`` pair *before* any reduction; ``shrink=True``
    additionally routes each failure to its matching
    :mod:`repro.testing` oracle and writes the minimized repro next to
    it (``seed<seed>.<lane>.min.*``, budget ``shrink_probes``).
    """
    from ..flow.session import Session  # local import: flow layer is optional
    from .cec import check_equivalence

    if oracle is None:
        oracle = SatOracle()
    report = DifferentialReport()
    generator = {"width": width, "n_units": n_units}

    def emit(result: DifferentialResult, golden: Module) -> None:
        report.results.append(result)
        if on_result is not None:
            on_result(result)
        if not result.ok and (artifacts_dir or shrink):
            _process_failure(
                report, result, golden,
                artifacts_dir=artifacts_dir, shrink=shrink,
                shrink_probes=shrink_probes, random_vectors=random_vectors,
                max_conflicts=max_conflicts,
                generator={**generator, "seed": result.seed},
            )

    for seed in seeds:
        golden = random_module(seed, width=width, n_units=n_units)
        if roundtrip:
            emit(roundtrip_result(seed, golden), golden)
        for flow in flows:
            module = golden.clone()
            try:
                run = Session(module).run(flow)
                equiv = check_equivalence(
                    golden,
                    module,
                    random_vectors=random_vectors,
                    seed=seed,
                    max_conflicts=max_conflicts,
                    oracle=oracle,
                )
            except Exception as exc:  # noqa: BLE001 — crashes are lane failures
                emit(DifferentialResult(
                    seed=seed,
                    flow=_flow_label(flow),
                    case_name=golden.name,
                    original_area=0,
                    optimized_area=0,
                    equivalent=False,
                    undecided=False,
                    method=f"crash:{type(exc).__name__}",
                ), golden)
                continue
            emit(DifferentialResult(
                seed=seed,
                flow=run.flow,
                case_name=golden.name,
                original_area=run.original_area,
                optimized_area=run.optimized_area,
                equivalent=equiv.equivalent,
                undecided=equiv.undecided,
                method=equiv.method,
                counterexample=dict(equiv.counterexample),
            ), golden)
        extra_lanes = []
        if divergence:
            extra_lanes.append("divergence")
        if seeded:
            extra_lanes.append("seeded")
        for lane in extra_lanes:
            from ..testing.oracles import PASS, get_oracle

            for flow in flows:
                label = get_oracle(lane, flow=flow).probe(golden)
                emit(DifferentialResult(
                    seed=seed,
                    flow=f"{lane}:{_flow_label(flow)}",
                    case_name=golden.name,
                    original_area=0,
                    optimized_area=0,
                    equivalent=label == PASS,
                    undecided=False,
                    method=label if label != PASS else "oracle",
                ), golden)
    report.oracle_stats = oracle.stats.as_dict()
    return report


#: the fixed corpus CI replays (keep stable: appending is fine, renumbering
#: invalidates triage history)
CI_CORPUS = tuple(range(1000, 1024))


__all__ = [
    "CI_CORPUS",
    "DifferentialReport",
    "DifferentialResult",
    "random_module",
    "roundtrip_result",
    "run_differential",
]
