"""Yosys ``write_json`` netlist reader.

``yosys -p 'prep; write_json design.json'`` is the universal interchange
format real-world flows emit; this reader maps its word-level cell set
(``$and``/``$or``/``$xor``/``$not``/``$mux``/``$pmux``/``$eq``/``$ne``/
``$lt``/``$le``/``$gt``/``$ge``/``$add``/``$sub``/``$shl``/``$shr``/
``$reduce_*``/``$logic_*``/``$dff``) onto the IR so real netlists run
through the full optimization flow.

Normalization is parameter-driven: operands are zero-/sign-extended per
``A_SIGNED``/``B_SIGNED`` to each cell's internal width, compare/reduce
results are zero-padded into wider declared outputs, and declared
``port_directions`` are checked against the cell-semantics registry
(:mod:`repro.ir.celllib`).  Cells of non-``$`` type become hierarchy
:class:`~repro.ir.module.Instance` records feeding the PR 6 machinery.
Anything unsupported (``$mem``, signed compares, negative-polarity
``$dff``, …) raises :class:`YosysJsonError` with a diagnostic naming the
module, cell and reason — never a silently wrong netlist.

Net identity follows the format: every integer bit id is one net; ids are
resolved against ports first, then ``netnames``, then fresh wires.  The
string bits ``"0"``/``"1"``/``"x"``/``"z"`` map to constant IR bits
(``z`` is treated as ``x``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Union

from ..ir import celllib
from ..ir.cells import CellType, PortDir
from ..ir.design import Design
from ..ir.module import Module
from ..ir.signals import BIT0, BIT1, BITX, SigBit, SigSpec
from .lexer import FrontendError


class YosysJsonError(FrontendError):
    """The JSON netlist is malformed or uses an unsupported construct."""


_CONST_BITS = {"0": BIT0, "1": BIT1, "x": BITX, "z": BITX}

#: Yosys cell types accepted via argument swap (A>B == B<A, A>=B == B<=A)
_SWAPPED_COMPARES = {"$gt": CellType.LT, "$ge": CellType.LE}


def _param_int(value: Union[int, str, None], default: int = 0) -> int:
    """Yosys parameters are ints or MSB-first bit-strings (x/z count as 0)."""
    if value is None:
        return default
    if isinstance(value, int):
        return value
    text = str(value).strip()
    if not text:
        return default
    return int("".join("1" if c == "1" else "0" for c in text), 2)


class _ModuleReader:
    """Builds one :class:`Module` from its JSON dict."""

    def __init__(self, name: str, data: Mapping):
        self.name = name
        self.data = data
        self.module = Module(name)
        self.bit_map: Dict[int, SigBit] = {}

    def fail(self, message: str) -> "YosysJsonError":
        return YosysJsonError(f"module {self.name!r}: {message}")

    # -- net resolution -------------------------------------------------------

    def _map_bits(self, wire, bits: List[Union[int, str]], *,
                  driven_by_wire: bool) -> None:
        """Associate a wire's positions with net ids.

        Unmapped ids adopt the wire bit.  Already-mapped ids mean the wire
        aliases an existing net: the wire bit is connected as the driven
        side when the wire is a sink (``driven_by_wire`` False), e.g. an
        output port fed by an internal net.
        """
        for offset, token in enumerate(bits):
            wire_bit = SigBit(wire, offset)
            if isinstance(token, str):
                const = _CONST_BITS.get(token)
                if const is None:
                    raise self.fail(f"wire {wire.name!r}: bad constant bit {token!r}")
                self.module.connect(wire_bit, const)
                continue
            existing = self.bit_map.get(token)
            if existing is None:
                self.bit_map[token] = wire_bit
            elif driven_by_wire:
                self.module.connect(existing, wire_bit)
            else:
                self.module.connect(wire_bit, existing)

    def resolve(self, bits: List[Union[int, str]], hint: str) -> SigSpec:
        """Net-id list -> SigSpec, creating fresh wires for unseen ids."""
        out: List[SigBit] = []
        for token in bits:
            if isinstance(token, str):
                const = _CONST_BITS.get(token)
                if const is None:
                    raise self.fail(f"{hint}: bad constant bit {token!r}")
                out.append(const)
                continue
            bit = self.bit_map.get(token)
            if bit is None:
                wire = self.module.add_wire(f"n${token}", 1)
                bit = SigBit(wire, 0)
                self.bit_map[token] = bit
            out.append(bit)
        return SigSpec(out)

    # -- construction ---------------------------------------------------------

    def build(self) -> Module:
        self._read_ports()
        self._read_netnames()
        for cname, cdata in (self.data.get("cells") or {}).items():
            ctype = str(cdata.get("type", ""))
            if ctype.startswith("$"):
                self._read_cell(cname, ctype, cdata)
            else:
                self._read_instance(cname, ctype, cdata)
        return self.module

    def _read_ports(self) -> None:
        for pname, pdata in (self.data.get("ports") or {}).items():
            direction = pdata.get("direction")
            if direction not in ("input", "output"):
                raise self.fail(
                    f"port {pname!r}: unsupported direction {direction!r} "
                    "(only input/output)"
                )
            bits = pdata.get("bits", [])
            wire = self.module.add_wire(
                pname,
                max(1, len(bits)),
                port_input=direction == "input",
                port_output=direction == "output",
            )
            # input ports are net sources; output ports are sinks fed by
            # whichever net drives their bit ids
            self._map_bits(wire, bits, driven_by_wire=direction == "input")

    def _read_netnames(self) -> None:
        for nname, ndata in (self.data.get("netnames") or {}).items():
            if nname in self.module.wires:
                continue  # ports re-appear in netnames
            bits = ndata.get("bits", [])
            if not bits or not any(
                isinstance(t, int) and t not in self.bit_map for t in bits
            ):
                continue  # purely cosmetic alias of already-known nets
            wire = self.module.add_wire(nname, len(bits))
            self._map_bits(wire, bits, driven_by_wire=False)

    # -- hierarchy instances ---------------------------------------------------

    def _read_instance(self, cname: str, ctype: str, cdata: Mapping) -> None:
        connections = {
            pname: self.resolve(bits, f"instance {cname!r} port {pname}")
            for pname, bits in (cdata.get("connections") or {}).items()
        }
        instance = self.module.add_instance(ctype, name=cname, connections=connections)
        for key, value in (cdata.get("attributes") or {}).items():
            instance.attributes[key] = value

    # -- $-cells ---------------------------------------------------------------

    def _read_cell(self, cname: str, ctype: str, cdata: Mapping) -> None:
        params = cdata.get("parameters") or {}
        connections = cdata.get("connections") or {}

        swap = ctype in _SWAPPED_COMPARES
        if swap:
            spec = celllib.spec_for(_SWAPPED_COMPARES[ctype])
        else:
            spec = celllib.spec_for_yosys(ctype)
        if spec is None:
            raise self.fail(
                f"cell {cname!r}: unsupported Yosys cell type {ctype!r} "
                "(supported: "
                + ", ".join(sorted(s.yosys_type for s in celllib.all_specs()))
                + "; run e.g. `yosys -p 'prep; memory; techmap t:$mul ...'` "
                "to lower exotic cells first)"
            )

        self._check_port_directions(cname, ctype, spec, cdata.get("port_directions"))

        def conn(port: str) -> List[Union[int, str]]:
            if port not in connections:
                raise self.fail(f"cell {cname!r} ({ctype}): port {port} unconnected")
            return connections[port]

        def operand(port: str) -> SigSpec:
            return self.resolve(conn(port), f"cell {cname!r} port {port}")

        a_signed = bool(_param_int(params.get("A_SIGNED")))
        b_signed = bool(_param_int(params.get("B_SIGNED")))
        out_name = spec.out_port
        declared = conn(out_name)

        ports: Dict[str, SigSpec] = {}
        width = 1
        n = 1

        if not spec.combinational:  # $dff
            if _param_int(params.get("CLK_POLARITY"), 1) != 1:
                raise self.fail(
                    f"cell {cname!r}: negative-polarity $dff is unsupported "
                    "(run `yosys -p 'dffunmap; clk2fflogic'` or invert the clock)"
                )
            width = _param_int(params.get("WIDTH"), len(declared))
            ports["CLK"] = self._fit(operand("CLK"), 1, False)
            ports["D"] = self._fit(operand("D"), width, False)
        elif spec.ctype is CellType.MUX:
            width = _param_int(params.get("WIDTH"), len(declared))
            ports["A"] = self._fit(operand("A"), width, a_signed)
            ports["B"] = self._fit(operand("B"), width, b_signed)
            ports["S"] = self._fit(operand("S"), 1, False)
        elif spec.ctype is CellType.PMUX:
            width = _param_int(params.get("WIDTH"), len(declared))
            s = operand("S")
            n = _param_int(params.get("S_WIDTH"), len(s))
            ports["S"] = self._fit(s, n, False)
            ports["A"] = self._fit(operand("A"), width, False)
            ports["B"] = self._fit(operand("B"), width * n, False)
        elif spec.ctype in (CellType.SHL, CellType.SHR):
            if b_signed:
                raise self.fail(
                    f"cell {cname!r}: signed shift amounts are unsupported"
                )
            width = _param_int(params.get("Y_WIDTH"), len(declared))
            b = operand("B")
            n = len(b)
            ports["A"] = self._fit(operand("A"), width, a_signed)
            ports["B"] = b
        elif "B" in spec.input_ports and spec.expected_width("Y", 7, 1) == 1:
            # compares and $logic_and/$logic_or: widen to a common width
            if spec.ctype in (CellType.LT, CellType.LE) and (a_signed or b_signed):
                raise self.fail(
                    f"cell {cname!r}: signed comparison ({ctype}) is "
                    "unsupported (only unsigned $lt/$le/$gt/$ge)"
                )
            a, b = operand("A"), operand("B")
            if swap:
                a, b = b, a
                a_signed, b_signed = b_signed, a_signed
            width = max(1, len(a), len(b))
            ports["A"] = self._fit(a, width, a_signed)
            ports["B"] = self._fit(b, width, b_signed)
        elif "B" in spec.input_ports:
            # bitwise binary and $add/$sub: internal width is Y_WIDTH
            width = _param_int(params.get("Y_WIDTH"), len(declared))
            ports["A"] = self._fit(operand("A"), width, a_signed)
            ports["B"] = self._fit(operand("B"), width, b_signed)
        elif spec.expected_width("Y", 7, 1) == 1:
            # reductions and $logic_not: width is the operand's
            a = operand("A")
            width = max(1, len(a))
            ports["A"] = self._fit(a, width, a_signed)
        else:  # $not
            width = _param_int(params.get("Y_WIDTH"), len(declared))
            ports["A"] = self._fit(operand("A"), width, a_signed)

        out_width = spec.expected_width(out_name, width, n)
        out_spec = self.resolve(declared, f"cell {cname!r} port {out_name}")
        for bit in out_spec:
            if bit.is_const:
                raise self.fail(
                    f"cell {cname!r} ({ctype}): constant bit in output "
                    f"{out_name}"
                )
        if len(out_spec) == out_width:
            ports[out_name] = out_spec
            self.module.add_cell(spec.ctype, name=cname, width=width, n=n, **ports)
        else:
            # zero-pad (or truncate) the internal result into the declared net
            cell = self.module.add_cell(
                spec.ctype, name=cname, width=width, n=n, **ports
            )
            produced = cell.connections[out_name]
            self.module.connect(out_spec, produced.extend(len(out_spec)))

    def _check_port_directions(
        self,
        cname: str,
        ctype: str,
        spec: celllib.CellSpec,
        directions: Optional[Mapping[str, str]],
    ) -> None:
        if not directions:
            return
        want = {p: ("input" if d is PortDir.IN else "output")
                for p, d, _w in spec.ports}
        for pname, direction in directions.items():
            expected = want.get(pname)
            if expected is not None and direction != expected:
                raise self.fail(
                    f"cell {cname!r} ({ctype}): port {pname} declared "
                    f"{direction!r}, expected {expected!r}"
                )

    @staticmethod
    def _fit(spec: SigSpec, width: int, signed: bool) -> SigSpec:
        """Zero-/sign-extend or truncate to exactly ``width`` bits."""
        return spec.extend(width, signed=signed)


def read_yosys_json(source: Union[str, Mapping], top: Optional[str] = None) -> Design:
    """Parse Yosys ``write_json`` output into a :class:`Design`.

    ``source`` is the JSON text (or an already-parsed dict); ``top``
    overrides top-module selection, which otherwise honours the Yosys
    ``top`` attribute and falls back to the first uninstantiated module.
    """
    if isinstance(source, Mapping):
        data = source
    else:
        try:
            data = json.loads(source)
        except json.JSONDecodeError as exc:
            raise YosysJsonError(f"invalid JSON: {exc}") from None
    modules_json = data.get("modules")
    if not isinstance(modules_json, Mapping) or not modules_json:
        raise YosysJsonError('no "modules" object in JSON netlist')

    design = Design()
    attr_top: Optional[str] = None
    for mname, mdata in modules_json.items():
        attributes = mdata.get("attributes") or {}
        if _param_int(attributes.get("blackbox")) or _param_int(
            attributes.get("whitebox")
        ):
            continue
        design.add_module(_ModuleReader(mname, mdata).build())
        if _param_int(attributes.get("top")):
            attr_top = mname
    if not len(design):
        raise YosysJsonError("JSON netlist contains only blackbox modules")

    if top is not None:
        if top not in design:
            raise YosysJsonError(
                f"no module named {top!r} (available: {sorted(design.modules)})"
            )
        design.set_top(top)
    elif attr_top is not None:
        design.set_top(attr_top)
    else:
        instantiated = {
            inst.module_name
            for module in design
            for inst in module.instances.values()
            if inst.module_name != module.name
        }
        for name in design.modules:
            if name not in instantiated:
                design.set_top(name)
                break
    return design


def load_yosys_json(path: str, top: Optional[str] = None) -> Design:
    """Read a Yosys JSON netlist file into a :class:`Design`."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return read_yosys_json(text, top=top)


__all__ = ["YosysJsonError", "load_yosys_json", "read_yosys_json"]
