"""Tokenizer for the synthesizable Verilog subset.

Handles identifiers, decimal and based literals (``8'hFF``, ``3'b01z``),
operators (including two-character forms), punctuation, and both comment
styles.  Line/column positions are tracked for error messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class FrontendError(Exception):
    """Lexing/parsing/elaboration error with source position."""


class TokKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    BASED_NUMBER = "based_number"
    OP = "op"
    PUNCT = "punct"
    KEYWORD = "keyword"
    EOF = "eof"


KEYWORDS = frozenset(
    """module endmodule input output inout wire reg assign always begin end
    if else case casez casex endcase default posedge negedge or parameter
    localparam integer signed function endfunction for generate endgenerate
    genvar initial""".split()
)

#: multi-character operators, longest first
_OPERATORS = [
    "<<<", ">>>", "===", "!==",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "~&", "~|", "~^", "^~",
    "+", "-", "*", "/", "%", "!", "~", "&", "|", "^", "<", ">", "=", "?",
]

_PUNCT = set("()[]{}:;,.#@")


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind.value}({self.text!r}@{self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize a full source text; raises :class:`FrontendError` on junk."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> FrontendError:
        return FrontendError(f"lex error at {line}:{col}: {message}")

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[i:end]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            col += 2
            continue
        start_line, start_col = line, col
        # based literal: [size]'[sbodh]digits
        if ch.isdigit() or ch == "'":
            j = i
            while j < n and (source[j].isdigit() or source[j] == "_"):
                j += 1
            if j < n and source[j] == "'":
                k = j + 1
                if k < n and source[k] in "sS":
                    k += 1
                if k >= n or source[k] not in "bBoOdDhH":
                    raise error("bad based literal")
                k += 1
                body_start = k
                while k < n and (source[k].isalnum() or source[k] in "_?"):
                    k += 1
                if k == body_start:
                    raise error("empty based literal")
                text = source[i:k]
                tokens.append(Token(TokKind.BASED_NUMBER, text, start_line, start_col))
                col += k - i
                i = k
                continue
            text = source[i:j].replace("_", "")
            tokens.append(Token(TokKind.NUMBER, text, start_line, start_col))
            col += j - i
            i = j
            continue
        # identifier / keyword
        if ch.isalpha() or ch in "_$\\":
            j = i
            if ch == "\\":  # escaped identifier: up to whitespace
                j += 1
                while j < n and not source[j].isspace():
                    j += 1
                text = source[i + 1:j]
                tokens.append(Token(TokKind.IDENT, text, start_line, start_col))
            else:
                while j < n and (source[j].isalnum() or source[j] in "_$"):
                    j += 1
                text = source[i:j]
                kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
                tokens.append(Token(kind, text, start_line, start_col))
            col += j - i
            i = j
            continue
        # operators
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokKind.OP, op, start_line, start_col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokKind.PUNCT, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token(TokKind.EOF, "", line, col))
    return tokens


def parse_based_literal(text: str) -> "tuple[Optional[int], str]":
    """Split ``8'b01xz`` into (size or None, MSB-first digit pattern).

    The pattern uses binary digits plus ``x``/``z``/``?``; other bases are
    expanded to binary.
    """
    size_part, _tick, rest = text.partition("'")
    size = int(size_part) if size_part else None
    rest = rest.lstrip("sS")
    base = rest[0].lower()
    digits = rest[1:].replace("_", "").lower()
    if base == "b":
        bits = digits
    elif base == "o":
        bits = "".join(
            "xxx" if d in "xz?" else format(int(d, 8), "03b") for d in digits
        )
    elif base == "h":
        bits = "".join(
            "xxxx" if d in "xz?" else format(int(d, 16), "04b") for d in digits
        )
    elif base == "d":
        if any(d in "xz?" for d in digits):
            raise FrontendError(f"x/z digits not allowed in decimal: {text!r}")
        value = int(digits)
        width = size if size is not None else max(1, value.bit_length())
        bits = format(value, f"0{width}b")
    else:  # pragma: no cover - lexer guarantees the base letter
        raise FrontendError(f"bad base in {text!r}")
    bits = bits.replace("?", "z")
    if size is not None:
        if len(bits) < size:
            pad = bits[0] if bits[:1] in ("x", "z") else "0"
            bits = pad * (size - len(bits)) + bits
        elif len(bits) > size:
            bits = bits[-size:]
    return size, bits
