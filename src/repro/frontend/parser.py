"""Recursive-descent parser for the Verilog subset.

Supported constructs: module headers (1995 and ANSI-2001 port styles),
``wire``/``reg`` declarations with ranges, ``parameter``/``localparam``,
``assign``, ``always @*`` / ``always @(sensitivity)`` / ``always
@(posedge clk)``, ``begin/end``, ``if/else``, ``case``/``casez`` with
``default``, blocking and nonblocking assignments, and the expression
grammar with standard precedence.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    AlwaysBlock,
    Assign,
    Binary,
    Block,
    Case,
    CaseItem,
    Concat,
    ContinuousAssign,
    Expr,
    Ident,
    If,
    Index,
    InstanceDecl,
    ModuleDecl,
    NetDecl,
    Number,
    ParamDecl,
    RangeSelect,
    Repeat,
    SourceFile,
    Stmt,
    Ternary,
    Unary,
)
from .lexer import FrontendError, TokKind, Token, parse_based_literal, tokenize

#: binary operator precedence (higher binds tighter)
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "~^": 4,
    "^~": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_UNARY_OPS = {"~", "!", "&", "|", "^", "-", "+", "~&", "~|", "~^"}


class Parser:
    """One-token-lookahead recursive descent."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str) -> FrontendError:
        tok = self.current
        return FrontendError(
            f"parse error at {tok.line}:{tok.col} near {tok.text!r}: {message}"
        )

    def advance(self) -> Token:
        tok = self.current
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in (
            TokKind.OP,
            TokKind.PUNCT,
            TokKind.KEYWORD,
        )

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind is not TokKind.IDENT:
            raise self.error("expected identifier")
        return self.advance().text

    # -- top level ----------------------------------------------------------------

    def parse_source(self) -> SourceFile:
        source = SourceFile()
        while self.current.kind is not TokKind.EOF:
            if self.check("module"):
                source.modules.append(self.parse_module())
            else:
                raise self.error("expected 'module'")
        return source

    def parse_module(self) -> ModuleDecl:
        self.expect("module")
        module = ModuleDecl(name=self.expect_ident())
        if self.accept("#"):
            self._parse_param_port_list(module)
        if self.accept("("):
            if not self.check(")"):
                self._parse_port_list(module)
            self.expect(")")
        self.expect(";")
        while not self.check("endmodule"):
            self._parse_module_item(module)
        self.expect("endmodule")
        return module

    def _parse_param_port_list(self, module: ModuleDecl) -> None:
        self.expect("(")
        while True:
            self.expect("parameter")
            name = self.expect_ident()
            self.expect("=")
            module.params.append(ParamDecl(name, self.parse_expr()))
            if not self.accept(","):
                break
        self.expect(")")

    def _parse_port_list(self, module: ModuleDecl) -> None:
        """Both 1995 (`module m(a, b);`) and ANSI (`input [3:0] a, ...`)."""
        while True:
            if self.check("input") or self.check("output") or self.check("inout"):
                direction = self.advance().text
                if direction == "inout":
                    raise self.error("inout ports are not supported")
                kind = "reg" if self.accept("reg") else "wire"
                msb = lsb = None
                if self.accept("["):
                    msb = self.parse_expr()
                    self.expect(":")
                    lsb = self.parse_expr()
                    self.expect("]")
                while True:
                    name = self.expect_ident()
                    module.ports.append(name)
                    module.nets.append(
                        NetDecl(
                            name,
                            kind,
                            msb,
                            lsb,
                            is_input=direction == "input",
                            is_output=direction == "output",
                        )
                    )
                    if not self.accept(","):
                        return
                    if self.check("input") or self.check("output"):
                        break
            else:
                module.ports.append(self.expect_ident())
                if not self.accept(","):
                    return

    def _parse_module_item(self, module: ModuleDecl) -> None:
        if self.check("input") or self.check("output"):
            direction = self.advance().text
            kind = "reg" if self.accept("reg") else "wire"
            msb, lsb = self._parse_optional_range()
            while True:
                name = self.expect_ident()
                decl = self._find_or_add_net(module, name, kind)
                decl.kind = kind
                decl.msb, decl.lsb = msb, lsb
                decl.is_input = direction == "input"
                decl.is_output = direction == "output"
                if not self.accept(","):
                    break
            self.expect(";")
        elif self.check("wire") or self.check("reg"):
            kind = self.advance().text
            msb, lsb = self._parse_optional_range()
            while True:
                name = self.expect_ident()
                decl = self._find_or_add_net(module, name, kind)
                decl.kind = kind
                decl.msb, decl.lsb = msb, lsb
                if self.accept("="):
                    # wire w = expr;  -> implicit continuous assign
                    module.assigns.append(
                        ContinuousAssign(Ident(name), self.parse_expr())
                    )
                if not self.accept(","):
                    break
            self.expect(";")
        elif self.check("parameter") or self.check("localparam"):
            self.advance()
            self._parse_optional_range()
            while True:
                name = self.expect_ident()
                self.expect("=")
                module.params.append(ParamDecl(name, self.parse_expr()))
                if not self.accept(","):
                    break
            self.expect(";")
        elif self.check("assign"):
            self.advance()
            while True:
                target = self.parse_primary(lvalue=True)
                self.expect("=")
                module.assigns.append(ContinuousAssign(target, self.parse_expr()))
                if not self.accept(","):
                    break
            self.expect(";")
        elif self.check("always"):
            module.always_blocks.append(self._parse_always())
        elif self.check("integer") or self.check("genvar"):
            raise self.error(f"{self.current.text} declarations are not supported")
        elif self.current.kind is TokKind.IDENT:
            module.instances.append(self._parse_instance())
        else:
            raise self.error("unsupported module item")

    def _parse_instance(self) -> InstanceDecl:
        """``mod inst (.port(expr), ...);`` — named connections only."""
        module_name = self.expect_ident()
        if self.check("#"):
            raise self.error("parameterised instantiation is not supported")
        instance_name = self.expect_ident()
        inst = InstanceDecl(module=module_name, name=instance_name)
        self.expect("(")
        if not self.check(")"):
            while True:
                if not self.accept("."):
                    raise self.error(
                        "positional port connections are not supported "
                        "(use .port(net))"
                    )
                port = self.expect_ident()
                self.expect("(")
                expr = None if self.check(")") else self.parse_expr()
                self.expect(")")
                if expr is not None:
                    inst.bindings.append((port, expr))
                if not self.accept(","):
                    break
        self.expect(")")
        self.expect(";")
        return inst

    def _find_or_add_net(self, module: ModuleDecl, name: str, kind: str) -> NetDecl:
        for net in module.nets:
            if net.name == name:
                return net
        decl = NetDecl(name, kind)
        module.nets.append(decl)
        return decl

    def _parse_optional_range(self):
        if self.accept("["):
            msb = self.parse_expr()
            self.expect(":")
            lsb = self.parse_expr()
            self.expect("]")
            return msb, lsb
        return None, None

    # -- always blocks -------------------------------------------------------------

    def _parse_always(self) -> AlwaysBlock:
        self.expect("always")
        self.expect("@")
        clock: Optional[str] = None
        if self.accept("("):
            if self.accept("*"):
                pass
            elif self.check("posedge") or self.check("negedge"):
                edge = self.advance().text
                if edge == "negedge":
                    raise self.error("negedge clocks are not supported")
                clock = self.expect_ident()
                if self.accept("or") or self.accept(","):
                    raise self.error("async resets are not supported")
            else:
                # plain sensitivity list: treated as combinational
                self.expect_ident()
                while self.accept("or") or self.accept(","):
                    self.expect_ident()
            self.expect(")")
        elif self.accept("*"):
            pass
        else:
            raise self.error("expected sensitivity list")
        return AlwaysBlock(stmt=self.parse_statement(), clock=clock)

    # -- statements -------------------------------------------------------------------

    def parse_statement(self) -> Stmt:
        if self.accept("begin"):
            block = Block()
            while not self.check("end"):
                block.statements.append(self.parse_statement())
            self.expect("end")
            return block
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then_stmt = self.parse_statement()
            else_stmt = self.parse_statement() if self.accept("else") else None
            return If(cond, then_stmt, else_stmt)
        if self.check("case") or self.check("casez") or self.check("casex"):
            keyword = self.advance().text
            if keyword == "casex":
                raise self.error("casex is not supported (use casez)")
            self.expect("(")
            selector = self.parse_expr()
            self.expect(")")
            items: List[CaseItem] = []
            while not self.check("endcase"):
                if self.accept("default"):
                    self.accept(":")
                    items.append(CaseItem([], self.parse_statement()))
                    continue
                patterns = [self.parse_expr()]
                while self.accept(","):
                    patterns.append(self.parse_expr())
                self.expect(":")
                items.append(CaseItem(patterns, self.parse_statement()))
            self.expect("endcase")
            return Case(selector, items, casez=keyword == "casez")
        if self.accept(";"):
            return Block()  # empty statement
        # assignment
        target = self.parse_primary(lvalue=True)
        if self.accept("="):
            blocking = True
        elif self.accept("<="):
            blocking = False
        else:
            raise self.error("expected '=' or '<=' in assignment")
        value = self.parse_expr()
        self.expect(";")
        return Assign(target, value, blocking=blocking)

    # -- expressions --------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            then_value = self.parse_expr()
            self.expect(":")
            else_value = self.parse_expr()
            return Ternary(cond, then_value, else_value)
        return cond

    def _parse_binary(self, min_precedence: int) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self.current
            if tok.kind is not TokKind.OP:
                break
            precedence = _BINARY_PRECEDENCE.get(tok.text)
            if precedence is None or precedence < min_precedence:
                break
            self.advance()
            right = self._parse_binary(precedence + 1)
            left = Binary(tok.text, left, right)
        return left

    def _parse_unary(self) -> Expr:
        tok = self.current
        if tok.kind is TokKind.OP and tok.text in _UNARY_OPS:
            self.advance()
            return Unary(tok.text, self._parse_unary())
        return self.parse_primary()

    def parse_primary(self, lvalue: bool = False) -> Expr:
        tok = self.current
        if tok.kind is TokKind.NUMBER:
            self.advance()
            value = int(tok.text)
            return Number(pattern=format(value, "b"), width=None)
        if tok.kind is TokKind.BASED_NUMBER:
            self.advance()
            size, bits = parse_based_literal(tok.text)
            return Number(pattern=bits, width=size)
        if tok.kind is TokKind.IDENT:
            self.advance()
            expr: Expr = Ident(tok.text)
            while self.check("["):
                self.advance()
                first = self.parse_expr()
                if self.accept(":"):
                    second = self.parse_expr()
                    self.expect("]")
                    expr = RangeSelect(expr, first, second)
                else:
                    self.expect("]")
                    expr = Index(expr, first)
            return expr
        if self.accept("("):
            if lvalue:
                raise self.error("parenthesised lvalues are not supported")
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if self.accept("{"):
            first = self.parse_expr()
            if self.check("{"):
                # replication {N{expr}}
                self.advance()
                operand = self.parse_expr()
                self.expect("}")
                self.expect("}")
                return Repeat(first, operand)
            parts = [first]
            while self.accept(","):
                parts.append(self.parse_expr())
            self.expect("}")
            return Concat(tuple(parts))
        raise self.error("expected expression")


def parse_source(text: str) -> SourceFile:
    """Parse a full source text into a :class:`SourceFile`."""
    return Parser(text).parse_source()
