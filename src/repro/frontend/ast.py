"""Abstract syntax tree for the Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Ident(Expr):
    name: str


@dataclass(frozen=True)
class Number(Expr):
    """A literal; ``pattern`` is the MSB-first bit string (may hold x/z)."""

    pattern: str
    width: Optional[int] = None  # None = unsized

    @property
    def has_xz(self) -> bool:
        return any(c in "xz" for c in self.pattern)

    def value(self) -> int:
        if self.has_xz:
            raise ValueError(f"literal {self.pattern!r} has x/z bits")
        return int(self.pattern, 2) if self.pattern else 0


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # ~ ! & | ^ ~& ~| ~^ -
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - & | ^ && || == != < <= > >= << >>
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    then_value: Expr
    else_value: Expr


@dataclass(frozen=True)
class Index(Expr):
    """Bit select ``x[i]`` (constant or dynamic index)."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class RangeSelect(Expr):
    """Constant part select ``x[msb:lsb]``."""

    base: Expr
    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class Concat(Expr):
    parts: Tuple[Expr, ...]  # MSB-first, Verilog order


@dataclass(frozen=True)
class Repeat(Expr):
    count: Expr
    operand: Expr


# -- statements --------------------------------------------------------------------


@dataclass
class Stmt:
    pass


@dataclass
class Assign(Stmt):
    """Procedural assignment; blocking (=) or nonblocking (<=)."""

    target: Expr  # Ident / Index / RangeSelect / Concat
    value: Expr
    blocking: bool = True


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then_stmt: Stmt
    else_stmt: Optional[Stmt] = None


@dataclass
class CaseItem:
    patterns: List[Expr]  # empty = default
    stmt: Stmt


@dataclass
class Case(Stmt):
    selector: Expr
    items: List[CaseItem]
    casez: bool = False


# -- module-level -------------------------------------------------------------------


@dataclass
class NetDecl:
    """wire/reg/input/output declaration (one name per decl after parsing)."""

    name: str
    kind: str  # "wire" | "reg"
    msb: Optional[Expr] = None
    lsb: Optional[Expr] = None
    is_input: bool = False
    is_output: bool = False


@dataclass
class ParamDecl:
    name: str
    value: Expr


@dataclass
class ContinuousAssign:
    target: Expr
    value: Expr


@dataclass
class AlwaysBlock:
    """``always @(...) stmt``; ``clock`` is set for posedge blocks."""

    stmt: Stmt
    clock: Optional[str] = None  # None = combinational (@* or signal list)


@dataclass
class InstanceDecl:
    """``module_name instance_name (.port(expr), ...);`` — named
    connections only (positional port lists are rejected at parse time)."""

    module: str
    name: str
    bindings: List[Tuple[str, Expr]] = field(default_factory=list)


@dataclass
class ModuleDecl:
    name: str
    ports: List[str] = field(default_factory=list)
    nets: List[NetDecl] = field(default_factory=list)
    params: List[ParamDecl] = field(default_factory=list)
    assigns: List[ContinuousAssign] = field(default_factory=list)
    always_blocks: List[AlwaysBlock] = field(default_factory=list)
    instances: List[InstanceDecl] = field(default_factory=list)


@dataclass
class SourceFile:
    modules: List[ModuleDecl] = field(default_factory=list)
