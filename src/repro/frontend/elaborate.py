"""Elaboration: Verilog-subset AST -> RTL netlist.

The elaborator mirrors the parts of Yosys ``proc`` that matter for this
paper: behavioural ``if``/``case`` statements become multiplexer networks —
a ``case`` elaborates to the eq+mux priority chain of Figure 5, which is
precisely the structure the restructuring pass later rebuilds.

Design notes / documented simplifications:

* Arithmetic is unsigned; ``*``, ``/``, ``%`` are rejected.
* An incompletely-assigned signal in a combinational block gets ``x``
  (don't-care) bits instead of an inferred latch; sequential blocks use
  hold semantics (``Q`` feeds back) as usual.
* Nonblocking assignments are elaborated in program order within a block
  (single-assignment style); cross-variable swap idioms relying on strict
  NBA scheduling are out of scope.
* Module instantiation uses named connections only (``mod inst
  (.port(net), ...)``); each binding elaborates in the parent and becomes
  an :class:`~repro.ir.module.Instance` record — no flattening happens
  here.  Cross-module checks (does the child exist, do widths match) are
  deferred to :func:`repro.ir.hierarchy.hierarchy`, since modules may be
  declared in any order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.builder import Circuit
from ..ir.cells import CellType
from ..ir.design import Design
from ..ir.module import Module
from ..ir.signals import BITX, SigBit, SigSpec, State
from .ast import (
    AlwaysBlock,
    Assign,
    Binary,
    Block,
    Case,
    Concat,
    Expr,
    Ident,
    If,
    Index,
    ModuleDecl,
    Number,
    RangeSelect,
    Repeat,
    SourceFile,
    Stmt,
    Ternary,
    Unary,
)
from .lexer import FrontendError
from .parser import parse_source


class Elaborator:
    """Elaborates one :class:`ModuleDecl` into a fresh netlist module."""

    def __init__(self, decl: ModuleDecl, overrides: Optional[Dict[str, int]] = None):
        self.decl = decl
        self.circuit = Circuit(decl.name)
        self.module = self.circuit.module
        self.params: Dict[str, int] = {}
        self.lsb_of: Dict[str, int] = {}
        if overrides:
            self.params.update(overrides)

    # -- parameters and declarations --------------------------------------------

    def const_eval(self, expr: Expr) -> int:
        """Evaluate a constant expression (parameters, widths, indices)."""
        if isinstance(expr, Number):
            return expr.value()
        if isinstance(expr, Ident):
            if expr.name in self.params:
                return self.params[expr.name]
            raise FrontendError(f"not a constant: {expr.name!r}")
        if isinstance(expr, Unary):
            value = self.const_eval(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return int(value == 0)
            raise FrontendError(f"bad constant unary {expr.op!r}")
        if isinstance(expr, Binary):
            left = self.const_eval(expr.left)
            right = self.const_eval(expr.right)
            ops = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right,
                "%": lambda: left % right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "==": lambda: int(left == right),
                "!=": lambda: int(left != right),
                "<": lambda: int(left < right),
                "<=": lambda: int(left <= right),
                ">": lambda: int(left > right),
                ">=": lambda: int(left >= right),
                "&&": lambda: int(bool(left) and bool(right)),
                "||": lambda: int(bool(left) or bool(right)),
            }
            if expr.op not in ops:
                raise FrontendError(f"bad constant binary {expr.op!r}")
            return ops[expr.op]()
        if isinstance(expr, Ternary):
            return (
                self.const_eval(expr.then_value)
                if self.const_eval(expr.cond)
                else self.const_eval(expr.else_value)
            )
        raise FrontendError(f"not a constant expression: {expr!r}")

    def elaborate(self) -> Module:
        for param in self.decl.params:
            if param.name not in self.params:  # overrides win
                self.params[param.name] = self.const_eval(param.value)
        for net in self.decl.nets:
            msb = self.const_eval(net.msb) if net.msb is not None else 0
            lsb = self.const_eval(net.lsb) if net.lsb is not None else 0
            if msb < lsb:
                raise FrontendError(
                    f"descending ranges are not supported: {net.name}[{msb}:{lsb}]"
                )
            self.module.add_wire(
                net.name,
                msb - lsb + 1,
                port_input=net.is_input,
                port_output=net.is_output,
            )
            self.lsb_of[net.name] = lsb
        for assign in self.decl.assigns:
            target = self.eval_lvalue(assign.target)
            value = self.eval_expr(assign.value, width=len(target))
            self.module.connect(target, value)
        for block in self.decl.always_blocks:
            if block.clock is None:
                self._elaborate_comb(block)
            else:
                self._elaborate_seq(block)
        for inst in self.decl.instances:
            connections = {}
            for port, expr in inst.bindings:
                if port in connections:
                    raise FrontendError(
                        f"duplicate connection to port {port!r} on "
                        f"instance {inst.name!r}"
                    )
                try:
                    # plain net lvalues carry both directions
                    connections[port] = self.eval_lvalue(expr)
                except FrontendError:
                    # expression bindings (input-only) build parent logic
                    connections[port] = self.eval_expr(expr)
            self.module.add_instance(
                inst.module, name=inst.name, connections=connections
            )
        return self.module

    # -- lvalues ------------------------------------------------------------------

    def eval_lvalue(self, expr: Expr) -> SigSpec:
        """A static SigSpec for an assignment target."""
        if isinstance(expr, Ident):
            if expr.name not in self.module.wires:
                raise FrontendError(f"undeclared signal {expr.name!r}")
            return SigSpec.from_wire(self.module.wires[expr.name])
        if isinstance(expr, Index):
            base = self.eval_lvalue(expr.base)
            if not isinstance(expr.base, Ident):
                raise FrontendError("nested lvalue selects are not supported")
            offset = self.const_eval(expr.index) - self.lsb_of[expr.base.name]
            if not (0 <= offset < len(base)):
                raise FrontendError(f"index out of range in lvalue: {expr!r}")
            return SigSpec([base[offset]])
        if isinstance(expr, RangeSelect):
            base = self.eval_lvalue(expr.base)
            if not isinstance(expr.base, Ident):
                raise FrontendError("nested lvalue selects are not supported")
            lsb_base = self.lsb_of[expr.base.name]
            msb = self.const_eval(expr.msb) - lsb_base
            lsb = self.const_eval(expr.lsb) - lsb_base
            if not (0 <= lsb <= msb < len(base)):
                raise FrontendError(f"range out of bounds in lvalue: {expr!r}")
            return base[lsb:msb + 1]
        if isinstance(expr, Concat):
            # Verilog concat is MSB first: reverse into LSB-first order
            parts = [self.eval_lvalue(p) for p in reversed(expr.parts)]
            result = SigSpec()
            for part in parts:
                result = result.concat(part)
            return result
        raise FrontendError(f"unsupported lvalue: {expr!r}")

    # -- expressions -----------------------------------------------------------------

    def eval_expr(
        self,
        expr: Expr,
        env: Optional[Dict[str, SigSpec]] = None,
        width: Optional[int] = None,
    ) -> SigSpec:
        """Build logic for an expression; ``env`` holds procedural values."""
        spec = self._eval(expr, env if env is not None else {})
        if width is not None:
            spec = spec.extend(width)
        return spec

    def _read(self, name: str, env: Dict[str, SigSpec]) -> SigSpec:
        if name in env:
            return env[name]
        if name in self.params:
            value = self.params[name]
            return SigSpec.from_const(value, max(1, value.bit_length()))
        if name not in self.module.wires:
            raise FrontendError(f"undeclared signal {name!r}")
        return SigSpec.from_wire(self.module.wires[name])

    def _eval(self, expr: Expr, env: Dict[str, SigSpec]) -> SigSpec:
        c = self.circuit
        if isinstance(expr, Number):
            if expr.has_xz:
                raise FrontendError(
                    f"x/z literals are only allowed in case patterns: "
                    f"{expr.pattern!r}"
                )
            width = expr.width if expr.width is not None else max(1, len(expr.pattern))
            return SigSpec.from_const(expr.value(), width)
        if isinstance(expr, Ident):
            return self._read(expr.name, env)
        if isinstance(expr, Index):
            base = self._eval(expr.base, env)
            lsb = self.lsb_of.get(self._base_name(expr.base), 0)
            try:
                offset = self.const_eval(expr.index) - lsb
            except FrontendError:
                # dynamic bit select: shift right then take bit 0
                index_spec = self._eval(expr.index, env)
                shifted = c.shr(base, index_spec)
                return SigSpec([shifted[0]])
            if not (0 <= offset < len(base)):
                raise FrontendError(f"index out of range: {expr!r}")
            return SigSpec([base[offset]])
        if isinstance(expr, RangeSelect):
            base = self._eval(expr.base, env)
            lsb_base = self.lsb_of.get(self._base_name(expr.base), 0)
            msb = self.const_eval(expr.msb) - lsb_base
            lsb = self.const_eval(expr.lsb) - lsb_base
            if not (0 <= lsb <= msb < len(base)):
                raise FrontendError(f"range out of bounds: {expr!r}")
            return base[lsb:msb + 1]
        if isinstance(expr, Concat):
            parts = [self._eval(p, env) for p in reversed(expr.parts)]
            result = SigSpec()
            for part in parts:
                result = result.concat(part)
            return result
        if isinstance(expr, Repeat):
            count = self.const_eval(expr.count)
            return self._eval(expr.operand, env).repeat(count)
        if isinstance(expr, Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, Ternary):
            cond = self._bool(self._eval(expr.cond, env))
            then_spec = self._eval(expr.then_value, env)
            else_spec = self._eval(expr.else_value, env)
            width = max(len(then_spec), len(else_spec))
            return c.mux(else_spec.extend(width), then_spec.extend(width), cond)
        raise FrontendError(f"unsupported expression: {expr!r}")

    @staticmethod
    def _base_name(expr: Expr) -> str:
        return expr.name if isinstance(expr, Ident) else ""

    def _bool(self, spec: SigSpec) -> SigSpec:
        """Coerce to a single-bit condition."""
        if len(spec) == 1:
            return spec
        return self.circuit.reduce_bool(spec)

    def _eval_unary(self, expr: Unary, env: Dict[str, SigSpec]) -> SigSpec:
        c = self.circuit
        operand = self._eval(expr.operand, env)
        if expr.op == "~":
            return c.not_(operand)
        if expr.op == "!":
            return c.logic_not(operand)
        if expr.op == "&":
            return c.reduce_and(operand)
        if expr.op == "|":
            return c.reduce_or(operand)
        if expr.op == "^":
            return c.reduce_xor(operand)
        if expr.op in ("~&", "~|", "~^", "^~"):
            inner = {"~&": c.reduce_and, "~|": c.reduce_or}.get(expr.op, c.reduce_xor)
            return c.not_(inner(operand))
        if expr.op == "-":
            return c.sub(SigSpec.from_const(0, len(operand)), operand)
        if expr.op == "+":
            return operand
        raise FrontendError(f"unsupported unary operator {expr.op!r}")

    def _eval_binary(self, expr: Binary, env: Dict[str, SigSpec]) -> SigSpec:
        c = self.circuit
        op = expr.op
        if op in ("*", "/", "%"):
            raise FrontendError(f"operator {op!r} is not supported")
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if op in ("<<", ">>"):
            builder = c.shl if op == "<<" else c.shr
            try:
                amount = self.const_eval(expr.right)
            except FrontendError:
                return builder(left, right)
            # constant shift: pure rewiring, no cell needed
            width = len(left)
            amount = min(amount, width)
            zeros = list(SigSpec.from_const(0, amount))
            if op == "<<":
                bits = zeros + list(left[: width - amount])
            else:
                bits = list(left[amount:]) + zeros
            return SigSpec(bits)
        if op in ("&&", "||"):
            lbit, rbit = self._bool(left), self._bool(right)
            return c.and_(lbit, rbit) if op == "&&" else c.or_(lbit, rbit)
        width = max(len(left), len(right))
        left = left.extend(width)
        right = right.extend(width)
        builders = {
            "&": c.and_,
            "|": c.or_,
            "^": c.xor,
            "~^": c.xnor,
            "^~": c.xnor,
            "+": c.add,
            "-": c.sub,
            "==": c.eq,
            "!=": c.ne,
            "<": c.lt,
            "<=": c.le,
        }
        if op in builders:
            return builders[op](left, right)
        if op == ">":
            return c.lt(right, left)
        if op == ">=":
            return c.le(right, left)
        raise FrontendError(f"unsupported binary operator {op!r}")

    # -- procedural blocks ------------------------------------------------------------

    def _elaborate_comb(self, block: AlwaysBlock) -> None:
        env: Dict[str, SigSpec] = {}
        writes: set = set()
        self._exec(block.stmt, env, writes, comb=True)
        for name in sorted(writes):
            wire = self.module.wires[name]
            value = env[name].extend(wire.width)
            self.module.connect(SigSpec.from_wire(wire), value)

    def _elaborate_seq(self, block: AlwaysBlock) -> None:
        if block.clock not in self.module.wires:
            raise FrontendError(f"undeclared clock {block.clock!r}")
        clock = self.module.wires[block.clock]
        env: Dict[str, SigSpec] = {}
        writes: set = set()
        self._exec(block.stmt, env, writes, comb=False)
        for name in sorted(writes):
            wire = self.module.wires[name]
            d_value = env[name].extend(wire.width)
            self.module.add_cell(
                CellType.DFF,
                CLK=SigSpec.from_wire(clock)[0:1],
                D=d_value,
                Q=SigSpec.from_wire(wire),
            )

    def _initial_value(self, name: str, comb: bool) -> SigSpec:
        """What a procedural read sees before any write in this block."""
        wire = self.module.wires.get(name)
        if wire is None:
            raise FrontendError(f"undeclared signal {name!r}")
        if comb:
            # incomplete combinational assignment: x (don't care), not latch
            return SigSpec([BITX] * wire.width)
        return SigSpec.from_wire(wire)  # sequential: hold current Q

    def _exec(self, stmt: Stmt, env: Dict[str, SigSpec], writes: set, comb: bool) -> None:
        if isinstance(stmt, Block):
            for sub in stmt.statements:
                self._exec(sub, env, writes, comb)
            return
        if isinstance(stmt, Assign):
            self._exec_assign(stmt, env, writes, comb)
            return
        if isinstance(stmt, If):
            cond = self._bool(self.eval_expr(stmt.cond, env))
            then_env, then_writes = dict(env), set(writes)
            self._exec(stmt.then_stmt, then_env, then_writes, comb)
            else_env, else_writes = dict(env), set(writes)
            if stmt.else_stmt is not None:
                self._exec(stmt.else_stmt, else_env, else_writes, comb)
            self._merge(cond, then_env, else_env, env, writes,
                        then_writes | else_writes, comb)
            return
        if isinstance(stmt, Case):
            self._exec_case(stmt, env, writes, comb)
            return
        raise FrontendError(f"unsupported statement: {stmt!r}")

    def _exec_assign(self, stmt: Assign, env: Dict[str, SigSpec],
                     writes: set, comb: bool) -> None:
        value = self.eval_expr(stmt.value, env)
        targets = self._target_slices(stmt.target)
        total = sum(width for _n, _off, width in targets)
        value = value.extend(total)
        position = 0
        for name, offset, width in targets:
            wire = self.module.wires[name]
            current = env.get(name)
            if current is None:
                current = self._initial_value(name, comb)
            piece = value[position:position + width]
            position += width
            bits = list(current.extend(wire.width))
            bits[offset:offset + width] = list(piece)
            env[name] = SigSpec(bits)
            writes.add(name)

    def _target_slices(self, target: Expr) -> List[Tuple[str, int, int]]:
        """Decompose an lvalue into (name, bit offset, width) pieces,
        LSB-first across the whole assignment."""
        if isinstance(target, Ident):
            wire = self.module.wires.get(target.name)
            if wire is None:
                raise FrontendError(f"undeclared signal {target.name!r}")
            return [(target.name, 0, wire.width)]
        if isinstance(target, Index):
            if not isinstance(target.base, Ident):
                raise FrontendError("nested lvalue selects are not supported")
            name = target.base.name
            wire = self.module.wires.get(name)
            if wire is None:
                raise FrontendError(f"undeclared signal {name!r}")
            offset = self.const_eval(target.index) - self.lsb_of.get(name, 0)
            if not (0 <= offset < wire.width):
                raise FrontendError(f"bit index out of range in lvalue: {name}")
            return [(name, offset, 1)]
        if isinstance(target, RangeSelect):
            if not isinstance(target.base, Ident):
                raise FrontendError("nested lvalue selects are not supported")
            name = target.base.name
            wire = self.module.wires.get(name)
            if wire is None:
                raise FrontendError(f"undeclared signal {name!r}")
            lsb_base = self.lsb_of.get(name, 0)
            msb = self.const_eval(target.msb) - lsb_base
            lsb = self.const_eval(target.lsb) - lsb_base
            if not (0 <= lsb <= msb < wire.width):
                raise FrontendError(f"range out of bounds in lvalue: {name}")
            return [(name, lsb, msb - lsb + 1)]
        if isinstance(target, Concat):
            pieces: List[Tuple[str, int, int]] = []
            for part in reversed(target.parts):  # LSB-first
                pieces.extend(self._target_slices(part))
            return pieces
        raise FrontendError(f"unsupported lvalue: {target!r}")

    def _merge(
        self,
        cond: SigSpec,
        then_env: Dict[str, SigSpec],
        else_env: Dict[str, SigSpec],
        env: Dict[str, SigSpec],
        writes: set,
        merged_writes: set,
        comb: bool,
    ) -> None:
        """Join two branch environments with muxes on ``cond``."""
        for name in sorted(merged_writes):
            then_value = then_env.get(name)
            else_value = else_env.get(name)
            if then_value is None:
                then_value = self._initial_value(name, comb)
            if else_value is None:
                else_value = self._initial_value(name, comb)
            if then_value == else_value:
                env[name] = then_value
            else:
                wire = self.module.wires[name]
                env[name] = self.circuit.mux(
                    else_value.extend(wire.width),
                    then_value.extend(wire.width),
                    cond,
                )
            writes.add(name)

    def _exec_case(self, stmt: Case, env: Dict[str, SigSpec],
                   writes: set, comb: bool) -> None:
        selector = self.eval_expr(stmt.selector, env)
        # elaborate every arm against the incoming environment
        arms: List[Tuple[Optional[SigSpec], Dict[str, SigSpec], set]] = []
        default_env: Optional[Dict[str, SigSpec]] = None
        default_writes: set = set()
        all_writes: set = set()
        for item in stmt.items:
            item_env, item_writes = dict(env), set()
            self._exec(item.stmt, item_env, item_writes, comb)
            all_writes |= item_writes
            if not item.patterns:
                default_env, default_writes = item_env, item_writes
                continue
            match = self._match_any(selector, item.patterns, env, stmt.casez)
            arms.append((match, item_env, item_writes))

        # resolve each written signal as a priority mux chain (Figure 5)
        for name in sorted(all_writes | default_writes):
            wire = self.module.wires[name]
            if default_env is not None and name in default_env:
                result = default_env[name].extend(wire.width)
            elif name in env:
                result = env[name].extend(wire.width)
            else:
                result = self._initial_value(name, comb).extend(wire.width)
            for match, item_env, _iw in reversed(arms):
                value = item_env.get(name)
                if value is None:
                    value = env.get(name)
                if value is None:
                    value = self._initial_value(name, comb)
                value = value.extend(wire.width)
                if value == result:
                    continue
                result = self.circuit.mux(result, value, match)
            env[name] = result
            writes.add(name)

    def _match_any(
        self,
        selector: SigSpec,
        patterns: List[Expr],
        env: Dict[str, SigSpec],
        casez: bool,
    ) -> SigSpec:
        """One-bit match condition for a case item (possibly multi-pattern)."""
        conditions: List[SigSpec] = []
        for pattern in patterns:
            if isinstance(pattern, Number) and pattern.has_xz:
                if not casez:
                    raise FrontendError(
                        "x/z patterns require casez"
                    )
                padded = pattern.pattern.rjust(len(selector), "0")
                conditions.append(
                    self.circuit.match_pattern(selector, padded)
                )
            else:
                value = self.eval_expr(pattern, env, width=len(selector))
                conditions.append(self.circuit.eq(selector, value))
        result = conditions[0]
        for extra in conditions[1:]:
            result = self.circuit.or_(result, extra)
        return result


def elaborate(decl: ModuleDecl, overrides: Optional[Dict[str, int]] = None) -> Module:
    """Elaborate one parsed module declaration."""
    return Elaborator(decl, overrides).elaborate()


def compile_verilog(
    source: str,
    top: Optional[str] = None,
    overrides: Optional[Dict[str, int]] = None,
) -> Design:
    """Parse and elaborate Verilog text into a (possibly hierarchical)
    Design; instances stay unflattened (see :mod:`repro.ir.hierarchy`)."""
    parsed: SourceFile = parse_source(source)
    if not parsed.modules:
        raise FrontendError("no modules in source")
    design = Design()
    for decl in parsed.modules:
        design.add_module(elaborate(decl, overrides))
    if top is not None:
        design.set_top(top)
    elif any(module.instances for module in design):
        # hierarchical source: default top is the first uninstantiated
        # root in declaration order, not simply the first module
        instantiated = {
            inst.module_name
            for module in design
            for inst in module.instances.values()
            if inst.module_name != module.name
        }
        for name in design.modules:
            if name not in instantiated:
                design.set_top(name)
                break
    return design
