"""Verilog-subset frontend: lexer, parser, elaborator."""

from .ast import ModuleDecl, SourceFile
from .elaborate import Elaborator, compile_verilog, elaborate
from .lexer import FrontendError, Token, tokenize
from .parser import Parser, parse_source
from .yosys_json import YosysJsonError, load_yosys_json, read_yosys_json

__all__ = [
    "Elaborator",
    "FrontendError",
    "ModuleDecl",
    "Parser",
    "SourceFile",
    "Token",
    "YosysJsonError",
    "compile_verilog",
    "elaborate",
    "load_yosys_json",
    "parse_source",
    "read_yosys_json",
    "tokenize",
]
