"""Verilog-subset frontend: lexer, parser, elaborator."""

from .ast import ModuleDecl, SourceFile
from .elaborate import Elaborator, compile_verilog, elaborate
from .lexer import FrontendError, Token, tokenize
from .parser import Parser, parse_source

__all__ = [
    "Elaborator",
    "FrontendError",
    "ModuleDecl",
    "Parser",
    "SourceFile",
    "Token",
    "compile_verilog",
    "elaborate",
    "parse_source",
    "tokenize",
]
