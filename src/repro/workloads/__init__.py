"""Synthetic benchmark workloads (IWLS-2005/RISC-V models + industrial)."""

from .generators import (
    InputPool,
    unit_case_chain,
    unit_datapath,
    unit_dataport_redundancy,
    unit_dependent_ctrl_tree,
    unit_obfuscated_select,
    unit_onehot_pmux,
    unit_priority_if_chain,
    unit_shared_ctrl_tree,
)
from .industrial import INDUSTRIAL_POINTS, IndustrialPoint, build_industrial, build_point
from .iwls import (
    CASE_NAMES,
    PAPER_TABLE2,
    SCALED_TARGET,
    PaperRow,
    allocate_units,
    build_all,
    build_case,
)

__all__ = [
    "CASE_NAMES",
    "INDUSTRIAL_POINTS",
    "IndustrialPoint",
    "InputPool",
    "PAPER_TABLE2",
    "PaperRow",
    "SCALED_TARGET",
    "allocate_units",
    "build_all",
    "build_case",
    "build_industrial",
    "build_point",
    "unit_case_chain",
    "unit_datapath",
    "unit_dataport_redundancy",
    "unit_dependent_ctrl_tree",
    "unit_obfuscated_select",
    "unit_onehot_pmux",
    "unit_priority_if_chain",
    "unit_shared_ctrl_tree",
]
