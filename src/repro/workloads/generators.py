"""Parameterised circuit-family generators.

Each *unit* generator emits one self-contained block of logic into a
:class:`~repro.ir.builder.Circuit` and returns its output signal.  Units are
designed so that exactly one optimization strategy can shrink them:

``unit_shared_ctrl_tree``
    Figure-1/2 structure: a mux chain reusing one control signal, with a
    private data cone hanging off every never-taken branch.  The Yosys
    baseline (and smaRTLy) collapses it to a single mux, killing the cones.
``unit_dependent_ctrl_tree``
    Figure-3 structure: the same chain but every inner control is
    ``or(S, r_i)`` / ``and(S, r_i)`` — logically decided on the path yet
    syntactically different, so only SAT-based redundancy elimination
    prunes it.
``unit_case_chain``
    A case-statement chain whose arm values repeat from a small pool, so
    the ADD collapses and only muxtree restructuring wins.
``unit_onehot_pmux``
    Industrial-style selection logic: nested pmux cells with one-hot
    ``eq(grant, i)`` selects whose nesting is dead under the parent's
    grant — prunable by SAT and rebuildable by the ADD, nearly invisible
    to the baseline.
``unit_datapath``
    Adder/xor/compare filler that no muxtree optimization touches
    (irreducible area).

All units draw operands from a shared input pool, so inputs are reused but
cones stay private (pruning a branch really removes its gates).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..ir.builder import Circuit
from ..ir.signals import SigSpec


class InputPool:
    """A bounded pool of input words; units draw operands from it."""

    def __init__(self, circuit: Circuit, rng: random.Random, width: int,
                 n_words: int = 40, n_ctrl: int = 24, prefix: str = ""):
        self.circuit = circuit
        self.rng = rng
        self.width = width
        self.words = [
            circuit.input(f"{prefix}d{i}", width) for i in range(n_words)
        ]
        self.ctrl = [circuit.input(f"{prefix}c{i}") for i in range(n_ctrl)]

    def word(self) -> SigSpec:
        return self.rng.choice(self.words)

    def ctrl_bit(self) -> SigSpec:
        return self.rng.choice(self.ctrl)

    def fresh_ctrl(self, name: str) -> SigSpec:
        return self.circuit.input(name)


def _private_cone(c: Circuit, pool: InputPool, ops: int) -> SigSpec:
    """A small private datapath cone (killed entirely if its user dies).

    A random constant *salt* is mixed in so cones rarely become
    structurally identical — otherwise ``opt_merge`` would deduplicate
    cones across units and skew the per-unit area economics.
    """
    width = pool.width
    value = pool.word()
    salt = pool.rng.getrandbits(width) or 1
    value = c.xor(value, SigSpec.from_const(salt, width))
    for _ in range(max(1, ops)):
        op = pool.rng.randrange(3)
        other = pool.word()
        if op == 0:
            value = c.add(value, other)
        elif op == 1:
            value = c.xor(value, other)
        else:
            value = c.and_(value, c.not_(other))
    return value


def unit_shared_ctrl_tree(
    c: Circuit, pool: InputPool, depth: int = 6, cone_ops: int = 2
) -> SigSpec:
    """Mux chain with one shared control: baseline-prunable (Figure 1).

    ``y = S ? (S ? (... ) : cone_d) : cone_0`` — every inner A-branch cone
    is dead on the only reachable path, so Yosys collapses the chain to a
    single mux and opt_clean removes the cones.  The live ends are plain
    pool words, so the removable fraction approaches ``(depth-1)/depth`` of
    the unit (cones included).
    """
    s = pool.ctrl_bit()
    value = pool.word()
    for _ in range(depth):
        dead = _private_cone(c, pool, cone_ops)
        value = c.mux(dead, value, s)  # S=1 keeps `value`, cone is dead
    return value


def unit_dependent_ctrl_tree(
    c: Circuit,
    pool: InputPool,
    depth: int = 6,
    cone_ops: int = 2,
    variant: str = "or",
) -> SigSpec:
    """Figure-3 chain: inner controls are ``S|r_i`` (or ``S&r_i``).

    On the B path of the root (``S = 1``) every ``S|r_i`` is forced to 1 —
    but only a solver/inference engine can see it, so the Yosys baseline
    keeps the whole chain while smaRTLy collapses it.
    """
    s = pool.ctrl_bit()
    value = pool.word()
    for _ in range(depth):
        r = pool.ctrl_bit()
        if variant == "or":
            ctrl = c.or_(s, r)  # == 1 whenever S == 1
            dead = _private_cone(c, pool, cone_ops)
            value = c.mux(dead, value, ctrl)
        else:
            ctrl = c.and_(s, r)  # == 0 whenever S == 0
            dead = _private_cone(c, pool, cone_ops)
            value = c.mux(value, dead, ctrl)
    if variant == "or":
        return c.mux(pool.word(), value, s)
    return c.mux(value, pool.word(), s)


def unit_case_chain(
    c: Circuit,
    pool: InputPool,
    sel: Optional[SigSpec] = None,
    sel_width: int = 4,
    n_arms: Optional[int] = None,
    distinct_values: int = 4,
) -> SigSpec:
    """A case chain whose arm values repeat: restructuring fodder.

    With ``distinct_values`` far below ``n_arms`` the ADD collapses to a
    few nodes while the chain burns one mux + one eq per arm — the paper's
    Figure 5 -> Figure 7 transformation at scale.
    """
    if sel is None:
        sel = c.input(f"sel{pool.rng.randrange(1 << 30):x}", sel_width)
    sel_width = len(sel)
    if n_arms is None:
        n_arms = (1 << sel_width) - 1
    values = [pool.word() for _ in range(distinct_values)]
    # cyclic arm values: deterministic, highly collapsible ADD (the common
    # real-world pattern of case statements mapping many codes to few data)
    arms = [
        (i, values[i % distinct_values])
        for i in range(min(n_arms, (1 << sel_width) - 1))
    ]
    default = values[0]
    return c.case_(sel, arms, default)


def unit_onehot_pmux(
    c: Circuit,
    pool: InputPool,
    n_requesters: int = 4,
    nest: bool = True,
    cone_ops: int = 1,
) -> SigSpec:
    """Industrial selection logic: one-hot granted pmux with dead nesting.

    The grant is ``eq(gnt, i)`` over a shared grant word.  When ``nest`` is
    set, each branch contains another pmux over the *same* grant whose
    other branches are dead — SAT prunes them; the eq/pmux structure also
    feeds the restructurer.
    """
    bits = max(2, (n_requesters - 1).bit_length())
    gnt = c.input(f"gnt{pool.rng.randrange(1 << 30):x}", bits)
    branches = []
    for i in range(n_requesters):
        sel_i = c.eq(gnt, SigSpec.from_const(i, bits))
        if nest:
            inner_branches = []
            for j in range(n_requesters):
                data = _private_cone(c, pool, cone_ops)
                inner_branches.append(
                    (c.eq(gnt, SigSpec.from_const(j, bits)), data)
                )
            data_i = c.pmux(pool.word(), inner_branches)
        else:
            data_i = _private_cone(c, pool, cone_ops)
        branches.append((sel_i, data_i))
    return c.pmux(pool.word(), branches)


def unit_obfuscated_select(
    c: Circuit,
    pool: InputPool,
    n_requesters: int = 4,
    cone_ops: int = 2,
) -> SigSpec:
    """Industrial selection block the baseline cannot see through.

    Outer one-hot grant selects via ``eq(gnt, i)``; each branch nests a
    pmux whose selects are *obfuscated* equalities ``!(gnt != j)``.
    ``opt_merge`` cannot unify them with the outer eq cells, so the Yosys
    baseline keeps every nested branch; smaRTLy's inference rules decide
    them from ``eq(gnt, i) = 1`` (backward eq + ne + logic_not) and delete
    all but the ``j == i`` cone.  This is the dominant structure of the
    §IV-B industrial benchmark: high pmux share, near-zero baseline yield.
    """
    bits = max(2, (n_requesters - 1).bit_length())
    gnt = c.input(f"g{pool.rng.randrange(1 << 30):x}", bits)
    branches = []
    for i in range(n_requesters):
        sel_i = c.eq(gnt, SigSpec.from_const(i, bits))
        inner_branches = []
        for j in range(n_requesters):
            data = _private_cone(c, pool, cone_ops)
            sel_j = c.logic_not(c.ne(gnt, SigSpec.from_const(j, bits)))
            inner_branches.append((sel_j, data))
        data_i = c.pmux(pool.word(), inner_branches)
        branches.append((sel_i, data_i))
    return c.pmux(pool.word(), branches)


def unit_dataport_redundancy(
    c: Circuit, pool: InputPool, depth: int = 3
) -> SigSpec:
    """Figure-2 structure: control bits reappear inside data operands."""
    s = pool.ctrl_bit()
    width = pool.width
    value = pool.word()
    for _ in range(depth):
        # data operand embeds the control bit in its low bits
        inner_ctrl = pool.ctrl_bit()
        embedded = SigSpec(list(s) + list(value[1:]))
        picked = c.mux(pool.word(), embedded, inner_ctrl)
        value = c.mux(pool.word(), picked, s)
    return value


def unit_datapath(c: Circuit, pool: InputPool, ops: int = 8) -> SigSpec:
    """Irreducible arithmetic/logic filler (neither method can touch it)."""
    value = pool.word()
    for i in range(ops):
        other = pool.word()
        op = pool.rng.randrange(4)
        if op == 0:
            value = c.add(value, other)
        elif op == 1:
            value = c.sub(value, other)
        elif op == 2:
            value = c.xor(value, c.add(other, 1))
        else:
            flag = c.lt(value, other)
            value = c.mux(value, c.not_(value), flag)
    return value


def unit_priority_if_chain(
    c: Circuit, pool: InputPool, depth: int = 4
) -> SigSpec:
    """Priority if-else chain with independent conditions (irreducible
    muxes: every branch is reachable)."""
    value = pool.word()
    for _ in range(depth):
        cond = pool.ctrl_bit()
        value = c.mux(value, pool.word(), cond)
    return value
