"""Synthetic models of the paper's 10 public benchmark circuits.

The IWLS-2005 / RISC-V sources are not available offline and would be far
too large for a pure-Python flow, so each named case is generated as a
seeded mixture of optimization-opportunity *units*
(:mod:`repro.workloads.generators`) whose proportions are solved from the
paper's Table II/III numbers:

* the fraction the Yosys baseline removes  -> shared-control trees,
* the extra fraction only SAT removes      -> dependent-control trees,
* the extra fraction only Rebuild removes  -> collapsible case chains,
* the irreducible remainder                -> datapath filler.

Absolute sizes are scaled down (roughly x400, see ``PAPER_TABLE2``) while
keeping the relative ordering of the cases; all comparisons in the paper
are ratios, which is what the benchmark harness reproduces.

The per-unit area constants below were measured with the calibration
script in ``benchmarks/bench_unit_calibration.py`` (width 8, seed 1) and
are deterministic for a fixed generator version.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.builder import Circuit
from ..ir.module import Module
from .generators import (
    InputPool,
    unit_case_chain,
    unit_datapath,
    unit_dependent_ctrl_tree,
    unit_obfuscated_select,
    unit_shared_ctrl_tree,
)


@dataclass(frozen=True)
class UnitEconomics:
    """Measured per-unit AIG numbers (width 8): original area, area the
    baseline removes, extra area removed only by SAT / only by Rebuild."""

    build: Callable
    kwargs: Dict
    orig: int
    yosys: int
    satx: int
    rebx: int


UNIT_MENU: Dict[str, UnitEconomics] = {
    "shared16": UnitEconomics(
        unit_shared_ctrl_tree, {"depth": 16, "cone_ops": 3}, 1967, 1816, 0, 0
    ),
    "shared8": UnitEconomics(
        unit_shared_ctrl_tree, {"depth": 8, "cone_ops": 3}, 876, 803, 0, 0
    ),
    "shared4": UnitEconomics(
        unit_shared_ctrl_tree, {"depth": 4, "cone_ops": 3}, 405, 321, 0, 0
    ),
    "shared2": UnitEconomics(
        unit_shared_ctrl_tree, {"depth": 2, "cone_ops": 3}, 257, 177, 0, 0
    ),
    "dep8": UnitEconomics(
        unit_dependent_ctrl_tree, {"depth": 8, "cone_ops": 2}, 720, 71, 625, 0
    ),
    "dep4": UnitEconomics(
        unit_dependent_ctrl_tree, {"depth": 4, "cone_ops": 2}, 368, 33, 311, 0
    ),
    "dep2": UnitEconomics(
        unit_dependent_ctrl_tree, {"depth": 2, "cone_ops": 2}, 217, 0, 193, 0
    ),
    "dep1": UnitEconomics(
        unit_dependent_ctrl_tree, {"depth": 1, "cone_ops": 2}, 101, 0, 77, 0
    ),
    "case5": UnitEconomics(
        unit_case_chain, {"sel_width": 5, "distinct_values": 4}, 799, 0, 0, 655
    ),
    "case4": UnitEconomics(
        unit_case_chain, {"sel_width": 4, "distinct_values": 4}, 383, 0, 0, 263
    ),
    "case3": UnitEconomics(
        unit_case_chain, {"sel_width": 3, "distinct_values": 2}, 179, 25, 0, 82
    ),
    "obf4": UnitEconomics(
        unit_obfuscated_select, {"n_requesters": 4}, 1575, 0, 1240, 19
    ),
    "datapath": UnitEconomics(unit_datapath, {"ops": 8}, 519, 0, 0, 0),
}


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Tables II and III."""

    original: int
    yosys: int
    smartly: int
    ratio_pct: float       # Table II: smaRTLy reduction vs Yosys
    sat_pct: float         # Table III: SAT-only reduction vs Yosys
    rebuild_pct: float     # Table III: Rebuild-only reduction vs Yosys


#: the paper's published numbers (Tables II + III)
PAPER_TABLE2: Dict[str, PaperRow] = {
    "top_cache_axi": PaperRow(10836722, 1301437, 977118, 24.92, 0.01, 24.91),
    "pci_bridge32": PaperRow(61847, 47411, 44369, 6.42, 0.71, 2.01),
    "wb_conmax": PaperRow(336039, 123659, 89290, 27.79, 19.05, 4.65),
    "mem_ctrl": PaperRow(1118764, 65785, 65437, 0.53, 0.12, 0.47),
    "wb_dma": PaperRow(592158, 74697, 64322, 13.89, 11.52, 0.80),
    "tv80": PaperRow(772802, 46137, 45070, 2.31, 0.71, 1.61),
    "usb_funct": PaperRow(76287, 40571, 39095, 3.64, 1.60, 1.69),
    "ethernet": PaperRow(124127, 113507, 112202, 1.15, 0.49, 0.48),
    "riscv": PaperRow(210141, 121280, 118689, 2.14, 0.17, 1.97),
    "ac97_ctrl": PaperRow(23709, 23173, 21622, 6.69, 1.34, 5.36),
}

#: scaled original-area targets for the synthetic models (pure-Python flow)
SCALED_TARGET: Dict[str, int] = {
    "top_cache_axi": 18000,
    "pci_bridge32": 2400,
    "wb_conmax": 4200,
    "mem_ctrl": 8000,
    "wb_dma": 5200,
    "tv80": 9600,
    "usb_funct": 4200,
    "ethernet": 5200,
    "riscv": 3600,
    "ac97_ctrl": 2000,
}

CASE_NAMES: Tuple[str, ...] = tuple(PAPER_TABLE2)


@dataclass
class Allocation:
    """Solved unit counts for one synthetic case."""

    counts: Dict[str, int]

    def total(self, attr: str) -> int:
        return sum(
            getattr(UNIT_MENU[name], attr) * n for name, n in self.counts.items()
        )


def allocate_units(name: str) -> Allocation:
    """Solve unit counts from the paper fractions for one case."""
    row = PAPER_TABLE2[name]
    target = SCALED_TARGET[name]
    yosys_frac = 1.0 - row.yosys / row.original
    yosys_area_frac = row.yosys / row.original
    sat_extra = row.sat_pct / 100.0 * yosys_area_frac       # vs original
    reb_extra = row.rebuild_pct / 100.0 * yosys_area_frac   # vs original

    counts: Dict[str, int] = {key: 0 for key in UNIT_MENU}

    def fill(budget: float, attr: str, order: List[str]) -> float:
        """Greedy largest-first fill; the smallest unit rounds to nearest,
        and a non-trivial leftover still gets one small unit so tiny paper
        percentages stay nonzero."""
        for position, unit_name in enumerate(order):
            unit = UNIT_MENU[unit_name]
            per_unit = getattr(unit, attr)
            if per_unit <= 0:
                continue
            last = position == len(order) - 1
            n = round(budget / per_unit) if last else int(budget // per_unit)
            if last and n == 0 and budget >= 0.25 * per_unit:
                n = 1
            counts[unit_name] += n
            budget -= n * per_unit
        return budget

    fill(sat_extra * target, "satx", ["dep8", "dep4", "dep2", "dep1"])
    fill(reb_extra * target, "rebx", ["case5", "case4", "case3"])

    consumed_yosys = sum(
        UNIT_MENU[u].yosys * n for u, n in counts.items()
    )
    fill(
        max(0.0, yosys_frac * target - consumed_yosys),
        "yosys",
        ["shared16", "shared8", "shared4", "shared2"],
    )
    consumed_orig = sum(UNIT_MENU[u].orig * n for u, n in counts.items())
    fill(max(0.0, target - consumed_orig), "orig", ["datapath"])
    return Allocation(counts)


def build_case(name: str, seed: Optional[int] = None, width: int = 8) -> Module:
    """Build the synthetic model of one named benchmark circuit."""
    if name not in PAPER_TABLE2:
        raise KeyError(f"unknown case {name!r}; choose from {CASE_NAMES}")
    if seed is None:
        seed = sum(ord(ch) for ch in name)
    allocation = allocate_units(name)
    rng = random.Random(seed)
    circuit = Circuit(name)
    pool = InputPool(circuit, rng, width=width)
    out_index = 0
    # deterministic order: menu order, then per-unit repetition
    for unit_name, economics in UNIT_MENU.items():
        for _ in range(allocation.counts[unit_name]):
            value = economics.build(circuit, pool, **economics.kwargs)
            circuit.output(f"out{out_index}", value)
            out_index += 1
    return circuit.module


def build_all(seed_offset: int = 0) -> Dict[str, Module]:
    """Build every named case (deterministic)."""
    return {
        name: build_case(name, seed=seed_offset + sum(ord(ch) for ch in name))
        for name in CASE_NAMES
    }
