"""A hierarchical SoC-style workload for the hierarchy flow benchmarks.

The generated :class:`~repro.ir.design.Design` is a three-level instance
tree purpose-built for measuring isomorphic-instance replay
(:meth:`Session.run_hierarchy <repro.flow.session.Session.run_hierarchy>`)
against flatten-then-optimize:

* **leaf IP classes** — ``leaf<c>_<t>``: per class ``c``, every *twin*
  ``t`` is built by replaying the same seeded RNG, so twins are
  byte-identical netlists under different module names (equal
  :func:`~repro.ir.struct_hash.module_signature`, equal port lists).
  Each leaf mixes baseline-prunable shared-control trees, SAT-only
  dependent trees and rebuild-only case chains
  (:mod:`repro.workloads.generators`), so every preset has real work.
* **cluster twins** — ``cluster_<t>``: identical wrappers instantiating
  the *same* leaf (``leaf0_0``) plus private glue, giving the tree depth
  and a replayable class whose members themselves contain instances.
* **top** — instantiates every leaf twin ``instances_per_module`` times
  plus every cluster, with **airtight boundaries**: every child input
  port is bound to its own fresh top-level input (never shared between
  instances, never constant), and every child output is folded through
  an XOR with another fresh input before reaching a top output.  No
  cross-instance sharing exists for ``opt_merge``/structural hashing to
  exploit in the flattened design, so the flat optimum is exactly the
  sum of per-instance optima — which is what makes the
  flat-vs-hierarchical area comparison byte-exact rather than
  approximate.

Everything is combinational and deterministic in ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..ir.builder import Circuit
from ..ir.design import Design
from ..ir.module import Module
from ..ir.signals import SigSpec


def build_leaf(name: str, seed: int, width: int = 8) -> Module:
    """One leaf IP block; equal ``seed`` => byte-identical netlists.

    The RNG is seeded *per class*, not per module, so every twin of a
    class replays the same construction and only the module name
    differs — the property instance replay keys on.
    """
    from .generators import (
        InputPool,
        unit_case_chain,
        unit_dependent_ctrl_tree,
        unit_shared_ctrl_tree,
    )

    rng = random.Random(seed)
    c = Circuit(name)
    pool = InputPool(c, rng, width, n_words=5, n_ctrl=4)
    parts = [
        unit_shared_ctrl_tree(c, pool, depth=4, cone_ops=2),
        unit_dependent_ctrl_tree(c, pool, depth=2, cone_ops=2),
        unit_case_chain(c, pool, sel_width=3, distinct_values=2),
    ]
    value = parts[0]
    for part in parts[1:]:
        value = c.xor(value, part)
    c.output("y", value)
    return c.module


def _bind_child(
    c: Circuit, child: Module, prefix: str
) -> Dict[str, SigSpec]:
    """Airtight bindings for one instantiation site: every child input
    port gets its own fresh parent input ``<prefix>_<port>`` (no sharing
    between sites, no constants) and every output port gets a private
    parent wire ``<prefix>_<port>``."""
    bindings: Dict[str, SigSpec] = {}
    for wire in child.inputs:
        bindings[wire.name] = c.input(f"{prefix}_{wire.name}", wire.width)
    for wire in child.outputs:
        bindings[wire.name] = SigSpec.from_wire(
            c.module.add_wire(f"{prefix}_{wire.name}", wire.width)
        )
    return bindings


def build_cluster(name: str, leaf: Module, width: int = 8) -> Module:
    """A wrapper instantiating ``leaf`` plus private XOR glue.

    All cluster twins wrap the *same* leaf module, so their instance
    sub-structure (child-name multiset) matches and the whole class
    replays, exercising replay on modules that themselves contain
    instances.
    """
    c = Circuit(name)
    bindings = _bind_child(c, leaf, "u0")
    c.module.add_instance(leaf.name, name="u0", connections=bindings)
    salt = c.input("salt", width)
    c.output("y", c.xor(bindings["y"], salt))
    return c.module


def build_soc_design(
    seed: int = 0,
    leaf_classes: int = 2,
    twins_per_class: int = 2,
    instances_per_module: int = 2,
    clusters: int = 2,
    width: int = 8,
) -> Design:
    """The full SoC: top + clusters + ``leaf_classes * twins_per_class``
    leaves; defaults give 10 top-level instances over 7 modules."""
    design = Design()
    top_c = Circuit("soc_top")
    design.add_module(top_c.module)

    leaves: List[Module] = []
    for cls in range(leaf_classes):
        for twin in range(twins_per_class):
            mod = build_leaf(
                f"leaf{cls}_{twin}", seed=seed * 7919 + cls, width=width
            )
            design.add_module(mod)
            leaves.append(mod)
    cluster_mods = [
        build_cluster(f"cluster_{t}", leaves[0], width=width)
        for t in range(clusters)
    ]
    for mod in cluster_mods:
        design.add_module(mod)

    outputs: List[SigSpec] = []
    site = 0
    children = [
        mod for mod in leaves for _copy in range(instances_per_module)
    ] + cluster_mods
    for child in children:
        prefix = f"i{site}"
        bindings = _bind_child(top_c, child, prefix)
        top_c.module.add_instance(
            child.name, name=f"u{site}", connections=bindings
        )
        # irreducible glue: child output XOR a fresh private input
        mixed = top_c.xor(
            bindings["y"], top_c.input(f"{prefix}_mix", width)
        )
        outputs.append(mixed)
        site += 1

    for i, value in enumerate(outputs):
        top_c.output(f"y{i}", value)
    design.set_top("soc_top")
    return design


__all__ = ["build_cluster", "build_leaf", "build_soc_design"]
