"""Synthetic model of the §IV-B industrial benchmark.

The paper's industrial suite is confidential; what it reports is the
*mechanism*: test points average millions of AIG nodes (37.5% above one
million), selection circuits dominate (a much higher MUX/PMUX share than
the public set), and Yosys "performs poorly — in some cases there is
almost no optimization effect", while smaRTLy removes 47.2% more area.

The generator reproduces that mechanism at Python scale: each test point
is dominated by *obfuscated one-hot selection* blocks
(:func:`~repro.workloads.generators.unit_obfuscated_select`) whose nested
pmux branches are dead only under logical (not syntactic) analysis, plus
collapsible case chains, with only a thin baseline-visible and irreducible
remainder.  37.5% of the points (3 of 8) are built "large".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.builder import Circuit
from ..ir.module import Module
from .generators import (
    InputPool,
    unit_case_chain,
    unit_datapath,
    unit_obfuscated_select,
    unit_shared_ctrl_tree,
)


@dataclass(frozen=True)
class IndustrialPoint:
    """One industrial test point: unit counts per family."""

    name: str
    obfuscated: int
    case_chains: int
    shared: int
    datapath: int
    seed: int

    @property
    def is_large(self) -> bool:
        return self.obfuscated >= 8


#: 8 test points; 3 of 8 (37.5%) are "large", matching §IV-B.  The datapath
#: share is solved so the aggregate extra reduction lands near the paper's
#: 47.2% (dp ~= 2*obfuscated + case/3, from the measured unit economics).
INDUSTRIAL_POINTS: List[IndustrialPoint] = [
    IndustrialPoint("ind_selector_0", 3, 2, 1, 7, 101),
    IndustrialPoint("ind_selector_1", 4, 2, 0, 9, 102),
    IndustrialPoint("ind_crossbar_0", 8, 3, 1, 17, 103),
    IndustrialPoint("ind_crossbar_1", 10, 4, 1, 22, 104),
    IndustrialPoint("ind_noc_router", 12, 4, 2, 26, 105),
    IndustrialPoint("ind_dma_engine", 5, 3, 1, 11, 106),
    IndustrialPoint("ind_bus_matrix", 6, 2, 1, 13, 107),
    IndustrialPoint("ind_arbiter", 4, 1, 0, 8, 108),
]


def build_point(point: IndustrialPoint, width: int = 8) -> Module:
    """Build one industrial test point."""
    rng = random.Random(point.seed)
    circuit = Circuit(point.name)
    pool = InputPool(circuit, rng, width=width)
    out = 0
    for _ in range(point.obfuscated):
        circuit.output(f"out{out}", unit_obfuscated_select(circuit, pool))
        out += 1
    for _ in range(point.case_chains):
        circuit.output(
            f"out{out}",
            unit_case_chain(circuit, pool, sel_width=4, distinct_values=4),
        )
        out += 1
    for _ in range(point.shared):
        circuit.output(
            f"out{out}", unit_shared_ctrl_tree(circuit, pool, depth=4, cone_ops=2)
        )
        out += 1
    for _ in range(point.datapath):
        circuit.output(f"out{out}", unit_datapath(circuit, pool, ops=6))
        out += 1
    return circuit.module


def build_industrial(width: int = 8) -> Dict[str, Module]:
    """Build all 8 industrial test points (deterministic)."""
    return {point.name: build_point(point, width) for point in INDUSTRIAL_POINTS}
