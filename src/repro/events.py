"""Structured flow events: the observer channel for pipelines and suites.

Optimization progress used to be reported through ``PassManager(verbose=True)``
prints.  This module replaces that with a typed event stream: producers
(:class:`~repro.opt.pass_base.PassManager`, :class:`~repro.flow.session.Session`)
emit :class:`FlowEvent` records onto an :class:`EventBus`; consumers subscribe
callables.  Shipped consumers:

* :class:`EventLog` — records events for assertions and post-hoc analysis,
* :class:`PrintObserver` — renders human-readable progress lines (what the
  CLI attaches to stderr),

but any callable works, so callers can stream events to JSON lines, a
profiler, or a progress bar without the library printing anything itself.

Event kinds (``FlowEvent.kind``) and their payload keys:

========================  ===================================================
``pipeline_started``      pipeline, passes, fixpoint, max_rounds, module,
                          engine (``"incremental"`` or ``"eager"``)
``pass_started``          pipeline, pass, round, module
``pass_finished``         pipeline, pass, round, module, changed, stats,
                          runtime_s — ``stats`` carries the pass's counters,
                          including the SAT stage's query/budget numbers and
                          the incremental oracle's ``oracle_*`` session
                          counters (queries, cache_hits, conflicts, ...; see
                          :class:`repro.sat.oracle.OracleStats`) plus its
                          ``sat_wallclock_us`` timing
``round_finished``        pipeline, round, module, changed, touched_cells
                          (size of the round's dirty-cell set)
``round_converged``       pipeline, rounds, module
``round_limit_reached``   pipeline, rounds, max_rounds, module — emitted
                          when a fixpoint run exhausts ``max_rounds`` while
                          passes were still changing the module (previously
                          silent and indistinguishable from convergence)
``pipeline_finished``     pipeline, rounds, module, changed, converged
``flow_started``          case, flow
``flow_skipped``          case, flow, revision — the design-scope engine
                          proved the module unchanged since this flow last
                          converged on it and skipped every pass
``flow_finished``         case, flow, original_area, optimized_area,
                          runtime_s
``suite_started``         cases, flows, jobs, max_workers, executor
``case_started``          case, flow
``case_finished``         case, flow, original_area, optimized_area,
                          runtime_s
``suite_finished``        jobs, runtime_s
``job_retried``           attempt, reason (``"died"`` or ``"timeout"``),
                          backoff_s, timeout_s — the serve daemon retrying a
                          job after its worker died or overran its budget
``job_cancelled``         reason — the serve daemon abandoning a job at the
                          shutdown drain deadline
========================  ===================================================

The last two kinds are emitted by the serve layer directly onto its JSON
response stream (shaped as ``{"type": "event", "kind": ..., ...}`` lines)
rather than through an :class:`EventBus` — the constants live here so
producers and consumers share one vocabulary.
"""

from __future__ import annotations

import json
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO

# -- event kinds ---------------------------------------------------------------

PIPELINE_STARTED = "pipeline_started"
PASS_STARTED = "pass_started"
PASS_FINISHED = "pass_finished"
ROUND_FINISHED = "round_finished"
ROUND_CONVERGED = "round_converged"
ROUND_LIMIT_REACHED = "round_limit_reached"
PIPELINE_FINISHED = "pipeline_finished"
FLOW_STARTED = "flow_started"
FLOW_SKIPPED = "flow_skipped"
FLOW_FINISHED = "flow_finished"
SUITE_STARTED = "suite_started"
CASE_STARTED = "case_started"
CASE_FINISHED = "case_finished"
SUITE_FINISHED = "suite_finished"
JOB_RETRIED = "job_retried"
JOB_CANCELLED = "job_cancelled"


@dataclass(frozen=True)
class FlowEvent:
    """One structured progress record."""

    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **self.data}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


Observer = Callable[[FlowEvent], None]


class EventBus:
    """Fan-out channel: producers ``emit``, subscribers receive every event.

    Thread-safe: :meth:`emit` may be called concurrently (the parallel suite
    runner emits from worker threads).  Subscriber exceptions propagate to
    the emitter — observers are part of the caller's program, not plugins.
    """

    def __init__(self) -> None:
        self._subscribers: List[Observer] = []
        self._lock = threading.Lock()

    def subscribe(self, observer: Observer) -> Observer:
        """Register ``observer``; returns it so this nests in expressions."""
        with self._lock:
            self._subscribers.append(observer)
        return observer

    def unsubscribe(self, observer: Observer) -> None:
        with self._lock:
            self._subscribers.remove(observer)

    def emit(self, kind: str, **data: Any) -> FlowEvent:
        event = FlowEvent(kind, data)
        self.publish(event)
        return event

    def publish(self, event: FlowEvent) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for observer in subscribers:
            observer(event)


class EventLog:
    """Subscriber that records every event (ideal for tests/analysis)."""

    def __init__(self) -> None:
        self.events: List[FlowEvent] = []
        self._lock = threading.Lock()

    def __call__(self, event: FlowEvent) -> None:
        with self._lock:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FlowEvent]:
        return iter(list(self.events))

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[FlowEvent]:
        return [event for event in self.events if event.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


class PrintObserver:
    """Renders progress lines from the event stream.

    ``verbose=False`` prints only suite/flow milestones (the old
    ``"  case: done"`` stderr lines); ``verbose=True`` additionally prints
    per-pass lines in the exact format ``PassManager(verbose=True)`` used,
    so legacy output is reproducible over the structured channel.
    """

    def __init__(self, stream: Optional[TextIO] = None, verbose: bool = False):
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self._lock = threading.Lock()

    def _line(self, text: str) -> None:
        with self._lock:
            print(text, file=self.stream)

    def __call__(self, event: FlowEvent) -> None:
        if event.kind == PASS_FINISHED and self.verbose:
            if event["changed"] or event["stats"]:
                self._line(f"[{event['pass']}] {event['stats']}")
        elif event.kind == ROUND_CONVERGED and self.verbose:
            self._line(
                f"[{event['pipeline']}] converged after "
                f"{event['rounds']} round(s)"
            )
        elif event.kind == ROUND_LIMIT_REACHED:
            self._line(
                f"[{event['pipeline']}] warning: round limit "
                f"({event['max_rounds']}) reached before convergence"
            )
        elif event.kind == CASE_FINISHED:
            self._line(
                f"  {event['case']}: {event['flow']} "
                f"{event['original_area']} -> {event['optimized_area']} "
                f"({event['runtime_s']:.2f}s)"
            )
        elif event.kind == SUITE_STARTED:
            self._line(
                f"suite: {event['jobs']} job(s) over "
                f"{len(event['cases'])} case(s)"
            )
        elif event.kind == SUITE_FINISHED:
            self._line(
                f"suite: finished {event['jobs']} job(s) "
                f"in {event['runtime_s']:.2f}s"
            )


class JsonLinesObserver:
    """Writes each event as one JSON line — machine-readable progress."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def __call__(self, event: FlowEvent) -> None:
        with self._lock:
            print(event.to_json(), file=self.stream)


__all__ = [
    "CASE_FINISHED",
    "CASE_STARTED",
    "EventBus",
    "EventLog",
    "FLOW_FINISHED",
    "FLOW_SKIPPED",
    "FLOW_STARTED",
    "FlowEvent",
    "JOB_CANCELLED",
    "JOB_RETRIED",
    "JsonLinesObserver",
    "Observer",
    "PASS_FINISHED",
    "PASS_STARTED",
    "PIPELINE_FINISHED",
    "PIPELINE_STARTED",
    "PrintObserver",
    "ROUND_CONVERGED",
    "ROUND_FINISHED",
    "ROUND_LIMIT_REACHED",
    "SUITE_FINISHED",
    "SUITE_STARTED",
]
