"""smaRTLy reproduction — RTL multiplexer optimization with logic
inferencing and structural rebuilding (DAC 2025).

Public API
----------
``repro.api``
    The stable surface: :class:`~repro.flow.session.Session` (owns a design,
    caches baselines, runs flows, parallel ``run_suite``),
    :class:`~repro.flow.spec.FlowSpec` (declarative pipelines parsed from
    Yosys-like scripts, with the legacy optimizer names as presets), the
    JSON-serializable :class:`~repro.flow.session.RunReport`, and the
    structured event channel from :mod:`repro.events`.

    >>> from repro.api import Session
    >>> report = Session.from_verilog(src).run("opt_expr; smartly k=6; opt_clean")

Subpackages
-----------
``repro.ir``
    Word-level RTL netlist IR (wires, cells, modules, builder, walkers).
``repro.frontend``
    Verilog-subset lexer/parser/elaborator producing IR netlists.
``repro.sim``
    Three-valued and vector simulation.
``repro.sat``
    MiniSAT-style CDCL SAT solver, CNF containers, Tseitin encoding.
``repro.aig``
    Structurally-hashed And-Inverter Graph and the ``aigmap`` bit-blaster.
``repro.opt``
    Pass framework and baseline passes, including the Yosys ``opt_muxtree``
    reimplementation.
``repro.core``
    The paper's contribution: SAT-based redundancy elimination and
    ADD-based muxtree restructuring.
``repro.equiv``
    SAT-based combinational equivalence checking.
``repro.workloads``
    Synthetic benchmark circuit generators (IWLS-2005/RISC-V models and the
    industrial benchmark).
``repro.flow``
    FlowSpec/Session implementation, legacy ``run_flow`` shims, and the
    Table II/III report renderers.
``repro.events``
    Structured progress events (bus, log, print/JSON-lines observers).
"""

__version__ = "1.1.0"
