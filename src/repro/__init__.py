"""smaRTLy reproduction — RTL multiplexer optimization with logic
inferencing and structural rebuilding (DAC 2025).

Subpackages
-----------
``repro.ir``
    Word-level RTL netlist IR (wires, cells, modules, builder, walkers).
``repro.frontend``
    Verilog-subset lexer/parser/elaborator producing IR netlists.
``repro.sim``
    Three-valued and vector simulation.
``repro.sat``
    MiniSAT-style CDCL SAT solver, CNF containers, Tseitin encoding.
``repro.aig``
    Structurally-hashed And-Inverter Graph and the ``aigmap`` bit-blaster.
``repro.opt``
    Pass framework and baseline passes, including the Yosys ``opt_muxtree``
    reimplementation.
``repro.core``
    The paper's contribution: SAT-based redundancy elimination and
    ADD-based muxtree restructuring.
``repro.equiv``
    SAT-based combinational equivalence checking.
``repro.workloads``
    Synthetic benchmark circuit generators (IWLS-2005/RISC-V models and the
    industrial benchmark).
``repro.flow``
    End-to-end synthesis flows and the Table II/III report renderers.
"""

__version__ = "1.0.0"
