"""DIMACS CNF reader/writer."""

from __future__ import annotations

from typing import TextIO, Union

from .cnf import CNF


def write_dimacs(cnf: CNF, stream: TextIO) -> None:
    """Write in standard ``p cnf`` format."""
    stream.write(f"p cnf {cnf.num_vars} {len(cnf.clauses)}\n")
    for clause in cnf.clauses:
        stream.write(" ".join(str(lit) for lit in clause) + " 0\n")


def dimacs_str(cnf: CNF) -> str:
    import io

    buffer = io.StringIO()
    write_dimacs(cnf, buffer)
    return buffer.getvalue()


def read_dimacs(source: Union[str, TextIO]) -> CNF:
    """Parse DIMACS text (string or file object).

    Tolerates comments, blank lines and clauses spanning several lines.
    """
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = source.readlines()
    cnf = CNF()
    declared_vars = None
    pending: list = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"bad problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if pending:
        cnf.add_clause(pending)
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    return cnf
