"""Tseitin encoding of RTL netlists into CNF.

:class:`CircuitEncoder` binds a :class:`~repro.sat.solver.Solver` to a module
snapshot and lazily encodes cells (or whole fanin cones) into clauses.  Every
canonical bit gets one solver variable; constants use a shared always-true
variable.  ``x`` constants are modeled as one shared unconstrained variable —
a conservative choice that never lets the solver prove more than the circuit
guarantees.

PMUX uses the same priority semantics as the simulator and the AIG mapper,
so SAT answers, simulation and AIG evaluation always agree.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..ir.cells import CellType
from ..ir.module import Cell, SigMap
from ..ir.signals import SigBit, State
from ..ir.walker import NetIndex
from .solver import Solver


class CircuitEncoder:
    """Incremental netlist-to-CNF encoder over one solver instance."""

    def __init__(self, solver: Solver, sigmap: Optional[SigMap] = None):
        self.solver = solver
        self.sigmap = sigmap if sigmap is not None else SigMap()
        self._bitvar: Dict[SigBit, int] = {}
        self._true_lit: Optional[int] = None
        self._x_lit: Optional[int] = None
        self._encoded: Set[int] = set()  # id(cell) of already-encoded cells

    # -- literals ---------------------------------------------------------------

    def true_lit(self) -> int:
        if self._true_lit is None:
            self._true_lit = self.solver.new_var()
            self.solver.add_clause([self._true_lit])
        return self._true_lit

    def lit(self, bit: SigBit) -> int:
        """The solver literal for a (canonicalised) bit."""
        cbit = self.sigmap.map_bit(bit)
        if cbit.is_const:
            if cbit.state is State.S1:
                return self.true_lit()
            if cbit.state is State.S0:
                return -self.true_lit()
            if self._x_lit is None:
                self._x_lit = self.solver.new_var()
            return self._x_lit
        var = self._bitvar.get(cbit)
        if var is None:
            var = self.solver.new_var()
            self._bitvar[cbit] = var
        return var

    def lits(self, bits: Iterable[SigBit]) -> List[int]:
        return [self.lit(b) for b in bits]

    def fresh(self) -> int:
        return self.solver.new_var()

    # -- gate definitions ----------------------------------------------------------

    def _add(self, lits: List[int]) -> None:
        self.solver.add_clause(lits)

    def def_and(self, y: int, a: int, b: int) -> None:
        self._add([-a, -b, y])
        self._add([a, -y])
        self._add([b, -y])

    def def_or(self, y: int, a: int, b: int) -> None:
        self._add([a, b, -y])
        self._add([-a, y])
        self._add([-b, y])

    def def_xor(self, y: int, a: int, b: int) -> None:
        self._add([-a, -b, -y])
        self._add([a, b, -y])
        self._add([-a, b, y])
        self._add([a, -b, y])

    def def_not(self, y: int, a: int) -> None:
        self._add([a, y])
        self._add([-a, -y])

    def def_equal(self, y: int, a: int) -> None:
        """Constrain y == a."""
        self._add([-a, y])
        self._add([a, -y])

    def def_mux(self, y: int, a: int, b: int, s: int) -> None:
        """y = s ? b : a"""
        self._add([s, -a, y])
        self._add([s, a, -y])
        self._add([-s, -b, y])
        self._add([-s, b, -y])

    def def_maj(self, y: int, a: int, b: int, c: int) -> None:
        """y = majority(a, b, c) — the full-adder carry."""
        self._add([-a, -b, y])
        self._add([-a, -c, y])
        self._add([-b, -c, y])
        self._add([a, b, -y])
        self._add([a, c, -y])
        self._add([b, c, -y])

    def def_wide_and(self, y: int, terms: Sequence[int]) -> None:
        """y = AND(terms); empty conjunction is true."""
        if not terms:
            self.def_not(y, -self.true_lit())
            return
        for t in terms:
            self._add([t, -y])
        self._add([y] + [-t for t in terms])

    def def_wide_or(self, y: int, terms: Sequence[int]) -> None:
        if not terms:
            self._add([-y])
            return
        for t in terms:
            self._add([-t, y])
        self._add([-y] + list(terms))

    def xor3(self, a: int, b: int, c: int) -> int:
        t = self.fresh()
        self.def_xor(t, a, b)
        y = self.fresh()
        self.def_xor(y, t, c)
        return y

    # -- cell encoding ---------------------------------------------------------------

    def encode_cell(self, cell: Cell) -> None:
        """Add the cell's CNF definition (idempotent per encoder)."""
        if id(cell) in self._encoded:
            return
        self._encoded.add(id(cell))
        t = cell.type
        if t is CellType.DFF:
            return  # sequential boundary: Q stays a free variable

        conn = cell.connections
        if t is CellType.NOT:
            for abit, ybit in zip(conn["A"], conn["Y"]):
                self.def_not(self.lit(ybit), self.lit(abit))
        elif t in (CellType.AND, CellType.OR, CellType.XOR, CellType.XNOR,
                   CellType.NAND, CellType.NOR):
            for abit, bbit, ybit in zip(conn["A"], conn["B"], conn["Y"]):
                a, b, y = self.lit(abit), self.lit(bbit), self.lit(ybit)
                if t is CellType.AND:
                    self.def_and(y, a, b)
                elif t is CellType.OR:
                    self.def_or(y, a, b)
                elif t is CellType.XOR:
                    self.def_xor(y, a, b)
                elif t is CellType.XNOR:
                    self.def_xor(-y, a, b)
                elif t is CellType.NAND:
                    self.def_and(-y, a, b)
                else:  # NOR
                    self.def_or(-y, a, b)
        elif t is CellType.MUX:
            s = self.lit(conn["S"][0])
            for abit, bbit, ybit in zip(conn["A"], conn["B"], conn["Y"]):
                self.def_mux(self.lit(ybit), self.lit(abit), self.lit(bbit), s)
        elif t is CellType.PMUX:
            self._encode_pmux(cell)
        elif t is CellType.EQ:
            self._encode_eq(self.lit(conn["Y"][0]), conn["A"], conn["B"])
        elif t is CellType.NE:
            self._encode_eq(-self.lit(conn["Y"][0]), conn["A"], conn["B"])
        elif t is CellType.LT:
            self._encode_lt(self.lit(conn["Y"][0]), conn["A"], conn["B"])
        elif t is CellType.LE:
            self._encode_lt(-self.lit(conn["Y"][0]), conn["B"], conn["A"])
        elif t is CellType.ADD:
            self._encode_add(conn["Y"], conn["A"], conn["B"], -self.true_lit())
        elif t is CellType.SUB:
            self._encode_add(
                conn["Y"],
                conn["A"],
                conn["B"],
                self.true_lit(),
                invert_b=True,
            )
        elif t in (CellType.SHL, CellType.SHR):
            self._encode_shift(cell, left=t is CellType.SHL)
        elif t is CellType.REDUCE_AND:
            self.def_wide_and(self.lit(conn["Y"][0]), self.lits(conn["A"]))
        elif t in (CellType.REDUCE_OR, CellType.REDUCE_BOOL):
            self.def_wide_or(self.lit(conn["Y"][0]), self.lits(conn["A"]))
        elif t is CellType.REDUCE_XOR:
            acc = -self.true_lit()
            for abit in conn["A"]:
                nxt = self.fresh()
                self.def_xor(nxt, acc, self.lit(abit))
                acc = nxt
            self.def_equal(self.lit(conn["Y"][0]), acc)
        elif t is CellType.LOGIC_NOT:
            self.def_wide_or(-self.lit(conn["Y"][0]), self.lits(conn["A"]))
        elif t in (CellType.LOGIC_AND, CellType.LOGIC_OR):
            a_any, b_any = self.fresh(), self.fresh()
            self.def_wide_or(a_any, self.lits(conn["A"]))
            self.def_wide_or(b_any, self.lits(conn["B"]))
            y = self.lit(conn["Y"][0])
            if t is CellType.LOGIC_AND:
                self.def_and(y, a_any, b_any)
            else:
                self.def_or(y, a_any, b_any)
        else:
            raise NotImplementedError(f"no CNF encoding for cell type {t}")

    def _encode_pmux(self, cell: Cell) -> None:
        conn = cell.connections
        width = cell.width
        # priority chain, lowest select index wins (matches simulator/aigmap)
        current = self.lits(conn["A"])
        b_lits = self.lits(conn["B"])
        s_lits = self.lits(conn["S"])
        for i in range(cell.n - 1, -1, -1):
            branch = b_lits[i * width:(i + 1) * width]
            nxt = []
            for cur, br in zip(current, branch):
                y = self.fresh()
                self.def_mux(y, cur, br, s_lits[i])
                nxt.append(y)
            current = nxt
        for y_lit, ybit in zip(current, conn["Y"]):
            self.def_equal(self.lit(ybit), y_lit)

    def _encode_eq(self, y: int, a_bits, b_bits) -> None:
        terms = []
        for abit, bbit in zip(a_bits, b_bits):
            t = self.fresh()
            self.def_xor(-t, self.lit(abit), self.lit(bbit))  # t = xnor
            terms.append(t)
        self.def_wide_and(y, terms)

    def _encode_lt(self, y: int, a_bits, b_bits) -> None:
        """y = (a < b) unsigned, LSB-to-MSB borrow chain."""
        lt = -self.true_lit()
        for abit, bbit in zip(a_bits, b_bits):
            a, b = self.lit(abit), self.lit(bbit)
            eq = self.fresh()
            self.def_xor(-eq, a, b)
            keep = self.fresh()
            self.def_and(keep, eq, lt)
            new_term = self.fresh()
            self.def_and(new_term, -a, b)
            nxt = self.fresh()
            self.def_or(nxt, new_term, keep)
            lt = nxt
        self.def_equal(y, lt)

    def _encode_add(self, y_bits, a_bits, b_bits, carry: int, invert_b=False) -> None:
        for abit, bbit, ybit in zip(a_bits, b_bits, y_bits):
            a = self.lit(abit)
            b = self.lit(bbit)
            if invert_b:
                b = -b
            s = self.xor3(a, b, carry)
            self.def_equal(self.lit(ybit), s)
            cout = self.fresh()
            self.def_maj(cout, a, b, carry)
            carry = cout

    def _encode_shift(self, cell: Cell, left: bool) -> None:
        conn = cell.connections
        width = cell.width
        current = self.lits(conn["A"])
        false_lit = -self.true_lit()
        for j, sbit in enumerate(conn["B"]):
            amount = 1 << j
            if amount >= width:
                shifted = [false_lit] * width
            elif left:
                shifted = [false_lit] * amount + current[: width - amount]
            else:
                shifted = current[amount:] + [false_lit] * amount
            s = self.lit(sbit)
            nxt = []
            for cur, sh in zip(current, shifted):
                y = self.fresh()
                self.def_mux(y, cur, sh, s)
                nxt.append(y)
            current = nxt
        for y_lit, ybit in zip(current, conn["Y"]):
            self.def_equal(self.lit(ybit), y_lit)

    # -- cone encoding ---------------------------------------------------------------

    def encode_cone(
        self,
        index: NetIndex,
        bits: Iterable[SigBit],
        within: Optional[Set[str]] = None,
    ) -> None:
        """Encode the combinational fanin cone of ``bits``.

        ``within`` restricts encoding to the named cells (the sub-graph of
        the redundancy pass); drivers outside the set are left as free
        variables.
        """
        worklist = [index.sigmap.map_bit(b) for b in bits]
        visited: Set[SigBit] = set(worklist)
        while worklist:
            bit = worklist.pop()
            cell = index.comb_driver(bit)
            if cell is None:
                continue
            if within is not None and cell.name not in within:
                continue
            if id(cell) not in self._encoded:
                self.encode_cell(cell)
                for fbit in index.cell_fanin_bits(cell):
                    if fbit not in visited:
                        visited.add(fbit)
                        worklist.append(fbit)


def encode_module(
    solver: Solver, module, index: Optional[NetIndex] = None
) -> CircuitEncoder:
    """Encode every combinational cell of a module; returns the encoder."""
    if index is None:
        index = NetIndex(module)
    encoder = CircuitEncoder(solver, index.sigmap)
    for cell in module.cells.values():
        if cell.is_combinational:
            encoder.encode_cell(cell)
    return encoder
