"""Incremental SAT oracle: clause reuse, verdict memoization, counters.

The redundancy pass and the equivalence checker used to build a fresh
:class:`~repro.sat.solver.Solver` and re-encode their CNF for every single
query — the hottest path of the whole flow.  :class:`SatOracle` replaces
that with persistent *contexts*:

* one context per *target bit*, grown monotonically: every reduced
  sub-graph handed in for that target adds the not-yet-encoded cells to
  the context's solver, so the target's fanin cone — common to every
  fact-variant of the query — is encoded exactly once, and queries are
  answered through assumption-based incremental ``solve()`` calls —
  **monotonic clause reuse**.  Exactness argument: a reduced sub-graph is
  the union of the target's and the known bits' fanin cones inside the
  (facts-independent) distance-k neighbourhood, so any in-neighbourhood
  driver of one of its free inputs would itself be an ancestor of the
  target and therefore already inside the sub-graph.  Cells contributed
  by *other* fact-variants of the same target can consequently never
  drive a sub-graph input — they only define their own (otherwise
  unconstrained) outputs — so adding them cannot change any per-query
  SAT/UNSAT verdict, and the learned clauses they participate in are
  implied by circuit CNF independently of any assumption set;
* every encoded cell's :attr:`~repro.ir.module.Cell.version` is recorded
  and re-validated on each query — a cell rewired mid-pass (muxtree
  pruning mutates the netlist as it walks) invalidates the whole context,
  which is rebuilt from the current sub-graph rather than answered from a
  stale encoding;
* verdicts are memoized by a canonical ``(sub-graph signature, target,
  assumptions, polarity, budget)`` key, so repeated queries (the muxtree
  traversal asks about the same control bits along many paths, and
  fixpoint flows repeat whole pass invocations) skip the solver entirely.
  With ``structural_keys=True`` (the default) *decided* verdicts are
  additionally keyed by the canonical name-free structural signature
  (:func:`repro.ir.struct_hash.struct_signature`), so isomorphic
  sub-graphs — renamed regions of the same module, or repeated instances
  of the same logic shape — share SAT/UNSAT answers.  A decided polarity
  verdict is a semantic property of the structure, so sharing it is
  always sound; *budget-exhausted* (None) verdicts depend on the CNF
  variable order the solver happened to see, so they stay under the
  identity key — only ever replayed for the exact same sub-graph, the
  historic behaviour.

Per-session counters (:class:`OracleStats`) are merged into the owning
pass's :class:`~repro.opt.pass_base.PassResult` stats, which flow through
``pass_finished`` events on the :mod:`repro.events` bus and into
:class:`~repro.flow.session.RunReport` JSON.

The oracle itself never looks at path semantics: callers hand it a cell
set, facts, and a question.  :meth:`decide` packages the redundancy pass's
two-polarity protocol; :meth:`solve_miter` serves the equivalence checker.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..ir.module import Cell, SigMap
from ..ir.signals import SigBit
from ..ir.struct_hash import StructKeyMemo
from .solver import Solver
from .tseitin import CircuitEncoder

#: content signature of an encoded cell set
Signature = Tuple[Tuple[str, int], ...]


class OracleStats:
    """Cumulative per-oracle counters (monotonic across generations)."""

    __slots__ = (
        "queries",
        "cache_hits",
        "solver_calls",
        "conflicts",
        "contexts_built",
        "contexts_reused",
        "cells_encoded",
        "learned_clauses",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def delta(self, base: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a previous :meth:`as_dict` snapshot."""
        return {
            name: getattr(self, name) - base.get(name, 0)
            for name in self.__slots__
        }


class Decision(NamedTuple):
    """Outcome of a two-polarity redundancy query (:meth:`SatOracle.decide`).

    ``value`` is the forced value of the target bit (None = undecided,
    which covers both genuinely-free targets and exhausted conflict
    budgets).  ``dead`` marks a contradiction: the path assumptions
    themselves are unsatisfiable, so neither polarity is reachable.
    """

    value: Optional[bool]
    dead: bool = False


class _Context:
    """One persistent solver accumulating the encodings of one target."""

    __slots__ = ("solver", "encoder", "encoded", "diff_lits")

    def __init__(self, sigmap: Optional[SigMap]):
        self.solver = Solver()
        self.encoder = CircuitEncoder(self.solver, sigmap)
        #: id(cell) -> (cell, version-at-encode) for staleness validation;
        #: the cell reference also pins the object so ids cannot recycle
        self.encoded: Dict[int, Tuple[Cell, int]] = {}
        #: memoized a!=b indicator literals for :meth:`SatOracle.equiv`
        self.diff_lits: Dict[Tuple[SigBit, SigBit], int] = {}

    def is_stale(self) -> bool:
        """True when any encoded cell was rewired since its encoding."""
        return any(
            cell.version != version for cell, version in self.encoded.values()
        )

    def extend(self, cells: Sequence[Cell]) -> int:
        """Encode the not-yet-encoded cells; returns how many were added."""
        added = 0
        for cell in cells:
            if id(cell) not in self.encoded:
                self.encoder.encode_cell(cell)
                self.encoded[id(cell)] = (cell, cell.version)
                added += 1
        return added


def signature_of(cells: Sequence[Cell]) -> Signature:
    """Content signature of a cell sequence (order-sensitive)."""
    return tuple((cell.name, cell.version) for cell in cells)


class SatOracle:
    """Persistent incremental SAT oracle for one module (or one CEC run).

    ``module`` is an identity anchor only: owners such as
    :class:`~repro.core.smartly.Smartly` keep one oracle per module and
    rebuild it when handed a different one.  ``max_contexts`` bounds
    memory with LRU eviction of whole solver contexts.
    ``structural_keys`` additionally memoizes decided :meth:`can_be`
    verdicts under canonical name-free structural signatures so
    isomorphic sub-graphs share answers (see the module docstring);
    :meth:`equiv` keys stay identity-only either way (its two-target
    queries serve the equivalence checker, which never crosses modules).

    A *generation* is one optimization-pass invocation: callers must open
    one with :meth:`begin_pass` before querying.  Contexts and verdicts
    never survive a generation change, because alias connections added by
    other passes can re-canonicalise bits between passes; counters do
    survive, giving per-session totals.
    """

    def __init__(
        self,
        module: Any = None,
        max_contexts: int = 256,
        max_verdicts: int = 200_000,
        structural_keys: bool = True,
        struct_memo: Optional[StructKeyMemo] = None,
    ):
        self.module = module
        self.max_contexts = max_contexts
        self.max_verdicts = max_verdicts
        self.stats = OracleStats()
        #: context key is the query target bit (one growing solver each)
        self._contexts: "OrderedDict[SigBit, _Context]" = OrderedDict()
        self._verdicts: Dict[Tuple, Optional[bool]] = {}
        self._sigmap: Optional[SigMap] = None
        #: canonical-labeling memo; None disables structural verdict
        #: sharing (the pure-identity reference path).  Owners that also
        #: hold a structural :class:`~repro.core.cache.ResultCache` pass
        #: its memo in, so the same sub-graph is canonicalized once for
        #: resolve keys, rung keys and verdict keys alike.
        if struct_memo is not None:
            self._struct_memo: Optional[StructKeyMemo] = struct_memo
        else:
            self._struct_memo = StructKeyMemo() if structural_keys else None

    # -- lifecycle -------------------------------------------------------------

    def begin_pass(self, sigmap: Optional[SigMap] = None) -> None:
        """Open a new generation bound to a pass's sigmap snapshot.

        Solver contexts never cross generations: their CNF is built
        against one sigmap snapshot, and alias connections added by other
        passes in between may re-canonicalise bits.  The *verdict* cache
        does survive — its keys embed the sub-graph's content signature
        (cell versions), free-input list, target and facts, all expressed
        in canonical bits, so any re-canonicalisation that could change a
        query's CNF also changes its key.  Fixpoint flows re-ask every
        undecided control query each round; those repeats are the cache's
        main customer.
        """
        self._contexts.clear()
        self._sigmap = sigmap

    # -- contexts --------------------------------------------------------------

    def _context_for(self, target: SigBit, cells: Sequence[Cell]) -> _Context:
        context = self._contexts.get(target)
        if context is not None and context.is_stale():
            del self._contexts[target]
            context = None
        if context is not None:
            self._contexts.move_to_end(target)
            self.stats.contexts_reused += 1
        else:
            context = _Context(self._sigmap)
            self.stats.contexts_built += 1
            self._contexts[target] = context
            if len(self._contexts) > self.max_contexts:
                self._contexts.popitem(last=False)
        self.stats.cells_encoded += context.extend(cells)
        return context

    def _solve(
        self,
        context: _Context,
        assumptions: List[int],
        max_conflicts: Optional[int],
    ) -> Optional[bool]:
        solver = context.solver
        before_conflicts = solver.stats.conflicts
        before_learned = len(solver.learned)
        verdict = solver.solve(assumptions, max_conflicts=max_conflicts)
        self.stats.solver_calls += 1
        self.stats.conflicts += solver.stats.conflicts - before_conflicts
        self.stats.learned_clauses += max(
            0, len(solver.learned) - before_learned
        )
        return verdict

    def _remember(self, key: Tuple, verdict: Optional[bool]) -> None:
        """Memoize a verdict, dropping the oldest half at the size cap.

        Netlist mutation permanently orphans every key that embeds an old
        cell version, so the cache must not grow with the lifetime of a
        long optimization run; plain-dict insertion order makes oldest-
        first eviction free.
        """
        if len(self._verdicts) >= self.max_verdicts:
            for stale in list(self._verdicts)[: self.max_verdicts // 2]:
                del self._verdicts[stale]
        self._verdicts[key] = verdict

    @staticmethod
    def _assumption_lits(
        context: _Context, known: Dict[SigBit, bool]
    ) -> List[int]:
        lit = context.encoder.lit
        return [lit(bit) if value else -lit(bit) for bit, value in known.items()]

    # -- queries ---------------------------------------------------------------

    def can_be(
        self,
        cells: Sequence[Cell],
        target: SigBit,
        value: bool,
        known: Dict[SigBit, bool],
        max_conflicts: Optional[int] = None,
        inputs: Sequence[SigBit] = (),
    ) -> Optional[bool]:
        """Can ``target`` take ``value`` under the ``known`` facts?

        True/False is a definite SAT/UNSAT verdict for the sub-graph CNF;
        None means the conflict budget ran out.  All three outcomes are
        memoized (None deterministically so, keyed by the budget).

        ``inputs`` — the sub-graph's free source bits — participates in
        the memo key only: it is what makes cached verdicts safe across
        pass generations, because alias connections that re-canonicalise
        a boundary bit change the input list (and alias-to-constant folds
        drop the bit from it) even when no sub-graph cell was rewired.
        """
        self.stats.queries += 1
        ident_key = (
            signature_of(cells),
            tuple(inputs),
            target,
            frozenset(known.items()),
            value,
            max_conflicts,
        )
        struct_key: Optional[Tuple] = None
        if self._struct_memo is not None:
            struct_key = (
                self._struct_memo.signature(
                    cells, target, known, inputs=inputs, sigmap=self._sigmap
                ),
                value,
                max_conflicts,
            )
            if struct_key in self._verdicts:
                self.stats.cache_hits += 1
                return self._verdicts[struct_key]
        if ident_key in self._verdicts:
            self.stats.cache_hits += 1
            return self._verdicts[ident_key]
        context = self._context_for(target, cells)
        assumptions = self._assumption_lits(context, known)
        target_lit = context.encoder.lit(target)
        assumptions.append(target_lit if value else -target_lit)
        verdict = self._solve(context, assumptions, max_conflicts)
        # decided verdicts are structural facts; budget-outs are not (the
        # conflict count depends on the variable order this sub-graph's
        # encoding happened to produce), so they memoize per identity only
        if struct_key is not None and verdict is not None:
            self._remember(struct_key, verdict)
        else:
            self._remember(ident_key, verdict)
        return verdict

    def implies(
        self,
        cells: Sequence[Cell],
        target: SigBit,
        value: bool,
        known: Dict[SigBit, bool],
        max_conflicts: Optional[int] = None,
        inputs: Sequence[SigBit] = (),
    ) -> Optional[bool]:
        """Do the ``known`` facts force ``target`` to ``value``?

        True = proven (the opposite polarity is UNSAT); False = refuted
        (a model with the opposite polarity exists); None = budget out.
        ``inputs`` as in :meth:`can_be` — pass the sub-graph's free source
        bits whenever cached verdicts may outlive the current pass.
        """
        opposite = self.can_be(
            cells, target, not value, known, max_conflicts, inputs=inputs
        )
        if opposite is None:
            return None
        return not opposite

    def equiv(
        self,
        cells: Sequence[Cell],
        a: SigBit,
        b: SigBit,
        known: Optional[Dict[SigBit, bool]] = None,
        max_conflicts: Optional[int] = None,
        inputs: Sequence[SigBit] = (),
    ) -> Optional[bool]:
        """Are bits ``a`` and ``b`` equal for every sub-graph assignment?

        Encodes one ``d = a xor b`` indicator per (a, b) pair (memoized in
        the context — adding it is monotone) and asks whether ``d`` can be
        true.  True = proven equivalent, False = a distinguishing model
        exists, None = budget out.  ``inputs`` as in :meth:`can_be`.
        """
        self.stats.queries += 1
        signature = signature_of(cells)
        known = known or {}
        key = (signature, tuple(inputs), (a, b), frozenset(known.items()),
               "equiv", max_conflicts)
        if key in self._verdicts:
            self.stats.cache_hits += 1
            return self._verdicts[key]
        context = self._context_for(a, cells)
        diff = context.diff_lits.get((a, b))
        if diff is None:
            diff = context.encoder.fresh()
            context.encoder.def_xor(
                diff, context.encoder.lit(a), context.encoder.lit(b)
            )
            context.diff_lits[(a, b)] = diff
        assumptions = self._assumption_lits(context, known)
        assumptions.append(diff)
        sat = self._solve(context, assumptions, max_conflicts)
        verdict = None if sat is None else not sat
        self._remember(key, verdict)
        return verdict

    def decide(self, subgraph: Any, max_conflicts: Optional[int] = None) -> Decision:
        """The redundancy pass's two-polarity protocol on a ``SubGraph``.

        Mirrors the historic fresh-solver ladder exactly: ask whether the
        target can be 1; if not, it is forced to 0 (additionally flagging
        a dead path when it cannot be 0 either); otherwise ask whether it
        can be 0, and a negative answer forces 1.
        """
        cells = subgraph.cells
        target = subgraph.target
        known = subgraph.known
        inputs = subgraph.inputs
        can_be_true = self.can_be(
            cells, target, True, known, max_conflicts, inputs=inputs
        )
        if can_be_true is False:
            can_be_false = self.can_be(
                cells, target, False, known, max_conflicts, inputs=inputs
            )
            return Decision(False, dead=can_be_false is False)
        can_be_false = self.can_be(
            cells, target, False, known, max_conflicts, inputs=inputs
        )
        if can_be_false is False:
            return Decision(True)
        return Decision(None)

    # -- miter solving (equivalence checking) ----------------------------------

    def solve_miter(
        self,
        aig: Any,
        miter_lit: int,
        max_conflicts: Optional[int] = None,
    ) -> Tuple[Optional[bool], Dict[int, bool]]:
        """Solve one miter output of an AIG.

        Returns ``(verdict, model)``: verdict True = the miter can fire
        (circuits differ — ``model`` maps AIG input variables 1..n to the
        distinguishing values), False = proven silent (equivalent), None =
        conflict budget exhausted.  Counters accumulate on this oracle, so
        a harness running many checks gets one session total.
        """
        # local import: avoids a package cycle (aig.cnf imports sat.solver)
        from ..aig.cnf import aig_lit_to_solver_lit, aig_to_solver

        self.stats.queries += 1
        solver, var_map = aig_to_solver(aig)
        assumption = aig_lit_to_solver_lit(miter_lit, var_map, var_map[0])
        before_conflicts = solver.stats.conflicts
        verdict = solver.solve([assumption], max_conflicts=max_conflicts)
        self.stats.solver_calls += 1
        self.stats.conflicts += solver.stats.conflicts - before_conflicts
        self.stats.learned_clauses += len(solver.learned)
        model: Dict[int, bool] = {}
        if verdict:
            for var in range(1, aig.num_inputs + 1):
                model[var] = bool(solver.model_value(var_map[var]))
        return verdict, model


__all__ = ["Decision", "OracleStats", "SatOracle", "signature_of"]
