"""A MiniSAT-style CDCL SAT solver in pure Python.

The paper uses MiniSAT v1.13 for its redundancy queries; this module
implements the same algorithmic ingredients:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and minimization,
* VSIDS variable activities with an indexed binary heap,
* phase saving,
* Luby-sequence restarts,
* learned-clause database reduction,
* incremental solving under assumptions (``solve([a, -b])``),
* optional conflict budget (returns ``None`` = unknown when exceeded).

Literals are DIMACS-style signed integers: variable ``v >= 1`` appears as
``v`` (positive) or ``-v`` (negated).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Clause:
    """A disjunction of literals.  The first two positions are the watched
    literals."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool = False):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0

    def __repr__(self) -> str:
        return f"Clause({self.lits}{' L' if self.learned else ''})"


class _VarHeap:
    """Indexed max-heap ordered by variable activity (MiniSAT's order heap)."""

    __slots__ = ("heap", "pos", "activity")

    def __init__(self, activity: List[float]):
        self.heap: List[int] = []
        self.pos: Dict[int, int] = {}
        self.activity = activity

    def __contains__(self, var: int) -> bool:
        return var in self.pos

    def __len__(self) -> int:
        return len(self.heap)

    def _swap(self, i: int, j: int) -> None:
        hi, hj = self.heap[i], self.heap[j]
        self.heap[i], self.heap[j] = hj, hi
        self.pos[hi], self.pos[hj] = j, i

    def _sift_up(self, i: int) -> None:
        act = self.activity
        heap = self.heap
        while i > 0:
            parent = (i - 1) >> 1
            if act[heap[i]] <= act[heap[parent]]:
                break
            self._swap(i, parent)
            i = parent

    def _sift_down(self, i: int) -> None:
        act = self.activity
        heap = self.heap
        size = len(heap)
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] <= act[heap[i]]:
                break
            self._swap(i, best)
            i = best

    def insert(self, var: int) -> None:
        if var in self.pos:
            return
        self.pos[var] = len(self.heap)
        self.heap.append(var)
        self._sift_up(len(self.heap) - 1)

    def bump(self, var: int) -> None:
        """Re-establish heap order after the variable's activity increased."""
        if var in self.pos:
            self._sift_up(self.pos[var])

    def pop_max(self) -> int:
        top = self.heap[0]
        last = self.heap.pop()
        del self.pos[top]
        if self.heap:
            self.heap[0] = last
            self.pos[last] = 0
            self._sift_down(0)
        return top


def luby(index: int) -> int:
    """The ``index``-th element (0-based) of the Luby sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq


class SolverStats:
    """Counters exposed for benchmarks and ablations."""

    __slots__ = ("decisions", "propagations", "conflicts", "restarts", "learned_kept")

    def __init__(self):
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.restarts = 0
        self.learned_kept = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class Solver:
    """CDCL solver with incremental assumptions.

    Typical use::

        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, b])
        assert s.solve() is True
        assert s.solve(assumptions=[-b]) is False
    """

    def __init__(self, var_decay: float = 0.95, clause_decay: float = 0.999):
        self.num_vars = 0
        self.clauses: List[Clause] = []
        self.learned: List[Clause] = []
        self.watches: Dict[int, List[Clause]] = {}
        # var-indexed arrays (index 0 unused)
        self.assign: List[int] = [0]  # 0 unknown, 1 true, -1 false
        self.level: List[int] = [0]
        self.reason: List[Optional[Clause]] = [None]
        self.activity: List[float] = [0.0]
        self.polarity: List[bool] = [False]  # saved phase
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.ok = True  # False once UNSAT without assumptions
        self.var_inc = 1.0
        self.var_decay = var_decay
        self.cla_inc = 1.0
        self.cla_decay = clause_decay
        self.heap = _VarHeap(self.activity)
        self.stats = SolverStats()
        self._model: Dict[int, bool] = {}

    # -- variable / clause management ------------------------------------------

    def new_var(self, polarity: bool = False) -> int:
        self.num_vars += 1
        var = self.num_vars
        self.assign.append(0)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.polarity.append(polarity)
        self.watches[var] = []
        self.watches[-var] = []
        self.heap.insert(var)
        return var

    def ensure_vars(self, max_var: int) -> None:
        while self.num_vars < max_var:
            self.new_var()

    def lit_value(self, lit: int) -> int:
        """1 if lit is true, -1 if false, 0 if unassigned."""
        value = self.assign[abs(lit)]
        return value if lit > 0 else -value

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a problem clause.  Returns False if the formula became UNSAT.

        Must be called when no assumptions are active (between solve calls).
        """
        if not self.ok:
            return False
        if self.decision_level != 0:
            self._cancel_until(0)
        seen = set()
        simplified: List[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology: trivially satisfied
            if lit in seen:
                continue
            value = self.lit_value(lit)
            if value == 1:
                return True  # already satisfied at top level
            if value == -1:
                continue  # already false at top level: drop literal
            seen.add(lit)
            simplified.append(lit)
        if not simplified:
            self.ok = False
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        clause = Clause(simplified)
        self.clauses.append(clause)
        self._attach(clause)
        return True

    def _attach(self, clause: Clause) -> None:
        self.watches[clause.lits[0]].append(clause)
        self.watches[clause.lits[1]].append(clause)

    # -- trail management ------------------------------------------------------

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def _new_decision_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    def _enqueue(self, lit: int, reason: Optional[Clause]) -> bool:
        value = self.lit_value(lit)
        if value != 0:
            return value == 1
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        self.level[var] = self.decision_level
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _cancel_until(self, target_level: int) -> None:
        if self.decision_level <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in reversed(self.trail[boundary:]):
            var = abs(lit)
            self.polarity[var] = lit > 0
            self.assign[var] = 0
            self.reason[var] = None
            self.heap.insert(var)
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # -- propagation --------------------------------------------------------------

    def _propagate(self) -> Optional[Clause]:
        """Unit propagation; returns the conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            watch_list = self.watches[false_lit]
            new_list: List[Clause] = []
            i = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                lits = clause.lits
                # ensure the false literal is at position 1
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], false_lit
                first = lits[0]
                if self.lit_value(first) == 1:
                    new_list.append(clause)  # clause already satisfied
                    continue
                # search a replacement watch
                found = False
                for k in range(2, len(lits)):
                    if self.lit_value(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], false_lit
                        self.watches[lits[1]].append(clause)
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                new_list.append(clause)
                if not self._enqueue(first, clause):
                    # conflict: keep remaining watches and report
                    new_list.extend(watch_list[i:n])
                    self.watches[false_lit] = new_list
                    return clause
            self.watches[false_lit] = new_list
        return None

    # -- activities -----------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        self.heap.bump(var)

    def _bump_clause(self, clause: Clause) -> None:
        clause.activity += self.cla_inc
        if clause.activity > 1e20:
            for c in self.learned:
                c.activity *= 1e-20
            self.cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self.var_inc /= self.var_decay
        self.cla_inc /= self.cla_decay

    # -- conflict analysis ------------------------------------------------------------

    def _analyze(self, conflict: Clause) -> Tuple[List[int], int]:
        """First-UIP learning.  Returns (learned clause lits, backjump level);
        the asserting literal is at position 0."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit: Optional[int] = None
        index = len(self.trail) - 1
        clause: Optional[Clause] = conflict
        current_level = self.decision_level

        while True:
            if clause is not None:
                if clause.learned:
                    self._bump_clause(clause)
                start = 0 if lit is None else 1
                for reason_lit in clause.lits[start:]:
                    var = abs(reason_lit)
                    if seen[var] or self.level[var] == 0:
                        continue
                    seen[var] = True
                    self._bump_var(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(reason_lit)
            # find the next marked literal of the current level on the trail
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            clause = self.reason[var]

        # basic clause minimization: drop literals implied by the others
        marked = {abs(l) for l in learned}
        kept = [learned[0]]
        for reason_lit in learned[1:]:
            reason = self.reason[abs(reason_lit)]
            if reason is None:
                kept.append(reason_lit)
                continue
            redundant = all(
                self.level[abs(other)] == 0 or abs(other) in marked
                for other in reason.lits
                if abs(other) != abs(reason_lit)
            )
            if not redundant:
                kept.append(reason_lit)
        learned = kept

        if len(learned) == 1:
            return learned, 0
        # backjump level = max level among learned[1:]
        max_i = 1
        for i in range(2, len(learned)):
            if self.level[abs(learned[i])] > self.level[abs(learned[max_i])]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self.level[abs(learned[1])]

    # -- learned clause DB ----------------------------------------------------------------

    def _reduce_db(self) -> None:
        """Drop the lower-activity half of long, unlocked learned clauses."""
        locked = {
            id(self.reason[var])
            for var in range(1, self.num_vars + 1)
            if self.reason[var] is not None
        }
        candidates = [c for c in self.learned if len(c.lits) > 2 and id(c) not in locked]
        candidates.sort(key=lambda c: c.activity)
        drop = {id(c) for c in candidates[: len(candidates) // 2]}
        for clause in self.learned:
            if id(clause) in drop:
                self._detach(clause)
        self.learned = [c for c in self.learned if id(c) not in drop]
        self.stats.learned_kept = len(self.learned)

    def _detach(self, clause: Clause) -> None:
        for lit in clause.lits[:2]:
            try:
                self.watches[lit].remove(clause)
            except ValueError:
                pass

    # -- main search ------------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Optional[bool]:
        """Solve under assumptions.

        Returns True (SAT — model available via :meth:`model_value`),
        False (UNSAT under the assumptions), or None when the
        ``max_conflicts`` budget is exhausted.

        Assumption literals occupy the first decision levels; after a
        backjump below that prefix they are transparently re-extended, so
        arbitrary assumption sets are supported without dedicated
        analyze-final machinery.
        """
        if not self.ok:
            return False
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        self._cancel_until(0)
        if self._propagate() is not None:
            self.ok = False
            return False

        conflicts_before = self.stats.conflicts
        restart_index = 0
        restart_budget = 32 * luby(restart_index)
        max_learned = max(1000, (len(self.clauses) * 2) // 3)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if self.decision_level == 0:
                    self.ok = False
                    return False
                learned, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self.ok = False
                        return False
                else:
                    clause = Clause(learned, learned=True)
                    self.learned.append(clause)
                    self._attach(clause)
                    self._bump_clause(clause)
                    self._enqueue(learned[0], clause)
                self._decay_activities()
                spent = self.stats.conflicts - conflicts_before
                if max_conflicts is not None and spent >= max_conflicts:
                    self._cancel_until(0)
                    return None
                if spent >= restart_budget:
                    self.stats.restarts += 1
                    restart_index += 1
                    restart_budget += 32 * luby(restart_index)
                    self._cancel_until(0)
                if len(self.learned) - len(self.trail) > max_learned:
                    self._reduce_db()
                    max_learned = int(max_learned * 1.3)
                continue

            if self.decision_level < len(assumptions):
                # establish the next assumption as a decision
                lit = assumptions[self.decision_level]
                value = self.lit_value(lit)
                if value == -1:
                    self._cancel_until(0)
                    return False
                self._new_decision_level()
                if value == 0:
                    self._enqueue(lit, None)
                continue

            decision = self._pick_branch()
            if decision == 0:
                self._save_model()
                self._cancel_until(0)
                return True
            self.stats.decisions += 1
            self._new_decision_level()
            self._enqueue(decision, None)

    def _pick_branch(self) -> int:
        while len(self.heap):
            var = self.heap.pop_max()
            if self.assign[var] == 0:
                return var if self.polarity[var] else -var
        return 0

    def _save_model(self) -> None:
        self._model = {
            var: self.assign[var] == 1 for var in range(1, self.num_vars + 1)
        }

    def model_value(self, lit: int) -> Optional[bool]:
        """The value of ``lit`` in the last satisfying model."""
        value = self._model.get(abs(lit))
        if value is None:
            return None
        return value if lit > 0 else not value

    def model(self) -> Dict[int, bool]:
        return dict(self._model)
