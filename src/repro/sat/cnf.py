"""A plain CNF formula container, independent of any solver instance.

Useful for building formulas once and solving them several times, for
DIMACS round-trips, and for brute-force cross-checking in tests.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from .solver import Solver


class CNF:
    """A list of clauses over variables ``1..num_vars``."""

    def __init__(self, num_vars: int = 0):
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = tuple(lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def to_solver(self, solver: Optional[Solver] = None) -> Solver:
        """Load the formula into a (new) :class:`Solver`."""
        if solver is None:
            solver = Solver()
        solver.ensure_vars(self.num_vars)
        for clause in self.clauses:
            solver.add_clause(clause)
        return solver

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[bool]:
        return self.to_solver().solve(assumptions)

    def evaluate(self, model: Sequence[bool]) -> bool:
        """Check a full assignment; ``model[i]`` is the value of var ``i+1``."""

        def lit_true(lit: int) -> bool:
            value = model[abs(lit) - 1]
            return value if lit > 0 else not value

        return all(any(lit_true(lit) for lit in clause) for clause in self.clauses)

    def brute_force_satisfiable(self) -> bool:
        """Exhaustive satisfiability check (tests only; exponential)."""
        if self.num_vars > 20:
            raise ValueError("brute force limited to 20 variables")
        for bits in itertools.product([False, True], repeat=self.num_vars):
            if self.evaluate(bits):
                return True
        return False

    def count_models(self) -> int:
        """Exhaustive model count (tests only; exponential)."""
        if self.num_vars > 20:
            raise ValueError("brute force limited to 20 variables")
        return sum(
            1
            for bits in itertools.product([False, True], repeat=self.num_vars)
            if self.evaluate(bits)
        )

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF({self.num_vars} vars, {len(self.clauses)} clauses)"
