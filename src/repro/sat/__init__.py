"""MiniSAT-style CDCL SAT solving, CNF containers and Tseitin encoding."""

from .cnf import CNF
from .dimacs import dimacs_str, read_dimacs, write_dimacs
from .solver import Clause, Solver, SolverStats, luby
from .tseitin import CircuitEncoder, encode_module

__all__ = [
    "CNF",
    "CircuitEncoder",
    "Clause",
    "Solver",
    "SolverStats",
    "dimacs_str",
    "encode_module",
    "luby",
    "read_dimacs",
    "write_dimacs",
]
