"""MiniSAT-style CDCL SAT solving, CNF containers, Tseitin encoding, and
the incremental :class:`~repro.sat.oracle.SatOracle`."""

from .cnf import CNF
from .dimacs import dimacs_str, read_dimacs, write_dimacs
from .oracle import Decision, OracleStats, SatOracle
from .solver import Clause, Solver, SolverStats, luby
from .tseitin import CircuitEncoder, encode_module

__all__ = [
    "CNF",
    "CircuitEncoder",
    "Clause",
    "Decision",
    "OracleStats",
    "SatOracle",
    "Solver",
    "SolverStats",
    "dimacs_str",
    "encode_module",
    "luby",
    "read_dimacs",
    "write_dimacs",
]
