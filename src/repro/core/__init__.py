"""The paper's contribution: smaRTLy's two muxtree optimizations.

* :class:`~repro.core.redundancy.SatRedundancy` — SAT-based redundancy
  elimination over reduced sub-graphs (paper §II),
* :class:`~repro.core.restructure.MuxtreeRestructure` — ADD-based muxtree
  restructuring (paper §III, Algorithm 1),
* :func:`~repro.core.smartly.run_smartly` — the combined flow.
"""

from .add import ADD, ADDNode, case_table
from .cache import ResultCache
from .store import CacheStore, StoreError, atomic_write_bytes, atomic_write_text
from .inference import Contradiction, InferenceEngine, InferenceResult, infer
from .redundancy import SatRedundancy
from .restructure import CaseTree, MuxtreeRestructure, eq_aig_cost, mux_aig_cost
from .smartly import Smartly, SmartlyOptions, run_smartly
from .subgraph import SubGraph, extract_subgraph

__all__ = [
    "ADD",
    "ADDNode",
    "CacheStore",
    "CaseTree",
    "Contradiction",
    "InferenceEngine",
    "InferenceResult",
    "MuxtreeRestructure",
    "ResultCache",
    "SatRedundancy",
    "Smartly",
    "SmartlyOptions",
    "StoreError",
    "SubGraph",
    "atomic_write_bytes",
    "atomic_write_text",
    "case_table",
    "eq_aig_cost",
    "extract_subgraph",
    "infer",
    "mux_aig_cost",
    "run_smartly",
]
