"""Content-addressed on-disk store for :class:`~repro.core.cache.ResultCache`.

:meth:`ResultCache.export` snapshots are pure data — ``(kind, digest,
extra)`` tuples mapping to plain outcomes, :class:`~repro.flow.session.
RunReport` records and optimized :class:`~repro.ir.module.Module` clones —
so they pickle cheaply and mean the same thing in any process.  Until now
they still died with the process: every CI run and every user session
re-proved structural work (``suite_job`` replays, ``hier_netlist`` swaps,
``cec``/``resolve``/``sat`` verdicts) that an earlier run had already
paid for.  :class:`CacheStore` makes the snapshots durable:

* **one file per generation** — each :meth:`CacheStore.save` writes the
  caller's delta as a single immutable generation file.  A session
  contributes one generation at close (see :meth:`~repro.flow.session.
  Session.flush_store`), a serve daemon one per explicit ``flush``;
* **content-addressed names** — the file is named by the BLAKE2b digest
  of its bytes (``gen-<digest>.rcache``), so identical deltas dedupe to
  one file, names never collide across machines, and a reader can detect
  torn or tampered content by re-hashing;
* **atomic writes** — payloads land via ``tempfile`` + :func:`os.replace`
  in the store directory, so a crash mid-write leaves at worst an
  orphaned temp file (reaped by :meth:`CacheStore.gc`), never a
  half-written generation that a later load would misparse;
* **versioned header** — every generation opens with a one-line header
  carrying the store format version and the keying-scheme fingerprint
  (:data:`repro.ir.struct_hash.SCHEME_FINGERPRINT`).  Signatures are only
  comparable between identical canonicalization schemes, so generations
  written under a different scheme are skipped as *incompatible* — not
  errors, just cache misses;
* **corrupt tolerance** — a truncated, garbled or digest-mismatched file
  is counted (``corrupt_skipped``) and skipped; :meth:`CacheStore.load`
  never raises because one generation rotted on disk.

Multiple processes may share one store directory: generations are
immutable once named, :func:`os.replace` is atomic on POSIX and Windows
within a filesystem, and concurrent saves of distinct deltas simply land
as distinct generations.  :meth:`CacheStore.gc` bounds the directory by
keeping the newest ``keep_generations`` files.

The module-level helpers :func:`atomic_write_text` / :func:`atomic_write_
bytes` expose the same crash-safe write discipline for any artifact the
tools emit (CLI ``--output`` netlists, report JSON, benchmark payloads) —
an interrupted write must never leave a corrupt file under the target
name.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..ir.struct_hash import SCHEME_FINGERPRINT

#: bump on any change to the generation-file layout (header or payload)
STORE_FORMAT = 1

#: header magic: identifies a generation file independent of its name
_MAGIC = "smartly-rcache"

#: generation filename shape: ``gen-<32 hex chars>.rcache``
_GEN_PREFIX = "gen-"
_GEN_SUFFIX = ".rcache"

#: prefix of in-flight temp files (reaped by :meth:`CacheStore.gc`)
_TMP_PREFIX = ".tmp-gen-"

#: default :meth:`CacheStore.gc` retention
DEFAULT_KEEP_GENERATIONS = 32

#: pickle protocol 4 is readable by every supported interpreter (3.4+),
#: so stores travel between the CI matrix's oldest and newest pythons
_PICKLE_PROTOCOL = 4


def _atomic_write(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tempfile + ``os.replace``).

    The temp file lives in the target's directory so the final rename
    never crosses a filesystem boundary (cross-device renames are copies,
    which are not atomic).
    """
    path = Path(path)
    parent = path.parent if str(path.parent) else Path(".")
    parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=_TMP_PREFIX, suffix=".tmp", dir=str(parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically write ``data`` under ``path`` (never a partial file)."""
    _atomic_write(path, data)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomically write ``text`` under ``path`` (never a partial file).

    The CLI routes every ``--output`` artifact (netlists, AIGER, report
    JSON) through this instead of ``open(path, "w")``: a crash mid-write
    used to leave a truncated artifact under the real name, which a
    downstream consumer would then misparse.
    """
    _atomic_write(path, text.encode(encoding))


class StoreError(Exception):
    """A store operation failed in a way the caller must see (bad
    directory, unwritable path) — *never* raised for a single corrupt
    generation, which is skipped and counted instead."""


class CacheStore:
    """A directory of immutable, content-addressed cache generations.

    ``counters`` tracks lifetime traffic: ``saved_files`` /
    ``saved_entries`` / ``dedup_saves`` (a delta whose generation already
    existed), ``loaded_files`` / ``loaded_entries``, ``corrupt_skipped``
    (truncated, garbled or digest-mismatched generations),
    ``incompatible_skipped`` (generations written under another store
    format or keying scheme) and ``gc_removed``.  Owners surface them as
    the ``store_*`` entries of :attr:`~repro.flow.session.RunReport.
    cache_stats`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        scheme: str = SCHEME_FINGERPRINT,
    ):
        self.path = Path(path)
        self.scheme = scheme
        self.counters: Dict[str, int] = {}
        if self.path.exists() and not self.path.is_dir():
            raise StoreError(f"store path {self.path} is not a directory")

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _header(self) -> bytes:
        return f"{_MAGIC} {STORE_FORMAT} {self.scheme}\n".encode("utf-8")

    # -- enumeration -----------------------------------------------------------

    def generations(self) -> List[Path]:
        """Generation files, oldest first (mtime, then name for ties).

        The order only affects which side of a key collision wins on
        load — and values are pure functions of their keys, so any
        deterministic order is correct.
        """
        if not self.path.is_dir():
            return []
        files = [
            entry for entry in self.path.iterdir()
            if entry.name.startswith(_GEN_PREFIX)
            and entry.name.endswith(_GEN_SUFFIX)
            and entry.is_file()
        ]

        def sort_key(entry: Path) -> Tuple[float, str]:
            try:
                return (entry.stat().st_mtime, entry.name)
            except OSError:
                return (0.0, entry.name)

        return sorted(files, key=sort_key)

    def newest_generation(self) -> Optional[Path]:
        """The most recently written generation file, or ``None`` for an
        empty store.  The chaos harness's ``store-corrupt-generation``
        fault garbles exactly this file to prove a later load degrades
        instead of raising."""
        gens = self.generations()
        return gens[-1] if gens else None

    # -- save ------------------------------------------------------------------

    def save(self, entries: Mapping[Tuple, Any]) -> Optional[Path]:
        """Persist one snapshot delta as a new generation; returns its
        path (``None`` for an empty delta — no generation is written).

        The generation is addressed by the BLAKE2b digest of its full
        bytes (header + pickled payload), so saving a byte-identical
        delta twice — two sessions that learned exactly the same entries
        — lands on the existing file (``dedup_saves``) instead of
        duplicating it.
        """
        if not entries:
            return None
        payload = self._header() + pickle.dumps(
            dict(entries), protocol=_PICKLE_PROTOCOL
        )
        digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
        target = self.path / f"{_GEN_PREFIX}{digest}{_GEN_SUFFIX}"
        if target.exists():
            self._bump("dedup_saves")
            return target
        try:
            _atomic_write(target, payload)
        except OSError as exc:
            raise StoreError(f"cannot write generation {target}: {exc}")
        self._bump("saved_files")
        self._bump("saved_entries", len(entries))
        return target

    # -- load ------------------------------------------------------------------

    def _load_one(self, gen: Path) -> Optional[Dict[Tuple, Any]]:
        """One generation's entries, or ``None`` when it must be skipped
        (the relevant counter is bumped; nothing propagates)."""
        try:
            raw = gen.read_bytes()
        except OSError:
            self._bump("corrupt_skipped")
            return None
        # content addressing doubles as an integrity check: the name IS
        # the digest of the bytes, so torn disk state (or a renamed
        # foreign file) shows up as a mismatch before unpickling
        digest = hashlib.blake2b(raw, digest_size=16).hexdigest()
        if gen.name != f"{_GEN_PREFIX}{digest}{_GEN_SUFFIX}":
            self._bump("corrupt_skipped")
            return None
        newline = raw.find(b"\n")
        if newline < 0:
            self._bump("corrupt_skipped")
            return None
        try:
            magic, fmt, scheme = raw[:newline].decode("utf-8").split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            self._bump("corrupt_skipped")
            return None
        if magic != _MAGIC:
            self._bump("corrupt_skipped")
            return None
        if fmt != str(STORE_FORMAT) or scheme != self.scheme:
            # a valid generation from another store format or keying
            # scheme: unreadable to us, but not rot — skip quietly
            self._bump("incompatible_skipped")
            return None
        try:
            entries = pickle.loads(raw[newline + 1:])
        except Exception:
            # pickle raises a zoo (UnpicklingError, EOFError, Attribute/
            # ImportError for renamed classes, ValueError...); every one
            # of them means "this generation is unusable", never "crash
            # the session that tried to warm-start"
            self._bump("corrupt_skipped")
            return None
        if not isinstance(entries, dict):
            self._bump("corrupt_skipped")
            return None
        return entries

    def load(self) -> Dict[Tuple, Any]:
        """Union of every readable generation (first-loaded key wins).

        Corrupt or incompatible generations are counted and skipped —
        a store that rotted on disk degrades to a smaller warm-start,
        never an exception.
        """
        merged: Dict[Tuple, Any] = {}
        for gen in self.generations():
            entries = self._load_one(gen)
            if entries is None:
                continue
            self._bump("loaded_files")
            self._bump("loaded_entries", len(entries))
            for key, value in entries.items():
                if key not in merged:
                    merged[key] = value
        return merged

    # -- gc --------------------------------------------------------------------

    def gc(self, keep_generations: int = DEFAULT_KEEP_GENERATIONS) -> int:
        """Drop the oldest generations beyond ``keep_generations`` (and
        any orphaned temp files from crashed writers); returns the number
        of files removed.  ``keep_generations=0`` empties the store."""
        if keep_generations < 0:
            raise ValueError("keep_generations must be >= 0")
        removed = 0
        gens = self.generations()
        excess = len(gens) - keep_generations
        for gen in gens[:max(0, excess)]:
            try:
                gen.unlink()
                removed += 1
            except OSError:
                pass  # another process may have gc'd it first
        if self.path.is_dir():
            for leftover in self.path.iterdir():
                if leftover.name.startswith(_TMP_PREFIX):
                    try:
                        leftover.unlink()
                        removed += 1
                    except OSError:
                        pass
        if removed:
            self._bump("gc_removed", removed)
        return removed

    def __repr__(self) -> str:
        return f"CacheStore({str(self.path)!r}, scheme={self.scheme!r})"


__all__ = [
    "CacheStore",
    "DEFAULT_KEEP_GENERATIONS",
    "STORE_FORMAT",
    "StoreError",
    "atomic_write_bytes",
    "atomic_write_text",
]
