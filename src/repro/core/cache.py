"""Persistent sub-graph result cache: content-signature memoization.

The SAT oracle (:mod:`repro.sat.oracle`) memoizes *solver verdicts* keyed by
sub-graph content signatures.  The other two rungs of the redundancy pass's
decision ladder — the Table-I inference rules and exhaustive simulation —
were recomputed from scratch whenever a dirty region was re-traversed, even
though their answers are pure functions of exactly the same key.

:class:`ResultCache` closes that gap.  Two keying schemes exist, selected
per instance:

* **structural** (``structural=True``, the default): the canonical
  name-free signature of :func:`repro.ir.struct_hash.struct_signature` —
  equal for renamed, cloned or independently built isomorphic sub-graphs,
  so entries are shared across modules, suite jobs and (via
  :meth:`export`/:meth:`merge`) worker processes.  Per-cell version
  bumps still invalidate exactly as before: the signature encodes each
  cell's current connections directly, and the identity→signature memo
  (:class:`~repro.ir.struct_hash.StructKeyMemo`) re-canonicalises
  whenever a version moves;
* **identity** (``structural=False``, the reference path): the historic
  key — the ordered ``(cell name, version)`` tuple of the sub-graph's
  cells (:func:`repro.sat.oracle.signature_of`) plus its free-input
  list, target and known facts in canonical bits.  Keys never collide
  across modules or clones because non-constant
  :class:`~repro.ir.signals.SigBit` objects hash by wire *identity* —
  and for the same reason never *hit* across them either.

Either way the key embeds everything inference and simulation consume —
that is precisely the scheme that makes the oracle's verdict cache safe
across pass generations (see :meth:`repro.sat.oracle.SatOracle.begin_pass`),
and the same argument applies verbatim here.

Beyond the per-sub-graph rungs, structural caches carry whole-artifact
kinds keyed by module- or miter-level signatures: ``suite_job``
(name-stripped :class:`~repro.flow.session.RunReport` replays — see
:func:`repro.flow.session._run_suite_job` and
:meth:`~repro.flow.session.Session.run_hierarchy`), ``hier_netlist``
(optimized module clones that isomorphic-instance replay swaps into
sibling slots) and ``cec`` (hard SAT equivalence verdicts keyed by the
miter AIG's structural digest — see :func:`repro.equiv.cec.
check_equivalence`).  All of them ride :meth:`export`/:meth:`merge`
like any other entry, so warm-started workers and follow-up sessions
replay proofs and netlists they never computed.

One cache instance is intended to live as long as its owner: the
:class:`~repro.core.smartly.Smartly` pass keeps one across optimization
rounds and runs, and :class:`~repro.flow.session.Session` injects a single
session-wide instance into every flow it builds so entries persist across
rounds, runs *and* modules of the same design.  Entries are bounded with
oldest-half eviction, like the oracle's verdict cache — netlist mutation
permanently orphans keys embedding old cell versions (identity mode) or
unreachable structures (structural mode), so the population must not grow
with session lifetime.
"""

from __future__ import annotations

import threading
from typing import Any, Container, Dict, Iterable, Mapping, Optional, Tuple

from ..ir.struct_hash import StructKeyMemo
from ..sat.oracle import signature_of

_MISS = object()


class ResultCache:
    """Bounded memo for sub-graph-keyed analysis outcomes.

    ``counters`` tracks per-kind traffic (``{kind}_hits`` / ``{kind}_misses``
    plus ``evictions`` — counted per evicted *entry* — and ``merged``);
    owners snapshot it around a pass invocation and report the delta as
    pass statistics (the ``rcache_*`` entries of
    :class:`~repro.flow.session.RunReport` pass stats), and sessions
    surface the lifetime totals as :attr:`~repro.flow.session.RunReport.
    cache_stats`.
    """

    def __init__(self, max_entries: int = 200_000, structural: bool = True):
        self.max_entries = max_entries
        self.structural = structural
        self._entries: Dict[Tuple, Any] = {}
        self.counters: Dict[str, int] = {}
        self._struct_memo = StructKeyMemo() if structural else None
        #: guards mutation sweeps and snapshot iteration: thread-suite
        #: workers merge deltas into the shared session cache while the
        #: owner may be exporting a snapshot for the next job (or the
        #: serve daemon's next request) — iterating ``_entries`` unlocked
        #: raced those inserts with ``RuntimeError: dictionary changed
        #: size during iteration``.  ``lookup`` stays lock-free: a plain
        #: ``dict.get`` is atomic under the GIL and is the hot path.
        self._lock = threading.Lock()

    @property
    def struct_memo(self) -> Optional[StructKeyMemo]:
        """The labeling memo (None in identity mode).  Owners hand it to
        their :class:`~repro.sat.oracle.SatOracle` so one canonicalization
        per sub-graph state serves resolve keys, rung keys and verdict
        keys alike."""
        return self._struct_memo

    def __len__(self) -> int:
        return len(self._entries)

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    @staticmethod
    def subgraph_key(kind: str, subgraph: Any, extra: Tuple = ()) -> Tuple:
        """The identity memo key of one analysis over one sub-graph.

        ``kind`` separates analyses ("infer", "sim", ...); ``extra``
        carries analysis parameters that change the answer (budgets,
        thresholds) — structural identity comes from the sub-graph itself.
        This is the reference scheme; :meth:`key_for` selects between it
        and the canonical structural key per the cache's mode.
        """
        return (
            kind,
            signature_of(subgraph.cells),
            tuple(subgraph.inputs),
            subgraph.target,
            frozenset(subgraph.known.items()),
            extra,
        )

    def key_for(
        self,
        kind: str,
        subgraph: Any,
        extra: Tuple = (),
        sigmap: Any = None,
    ) -> Tuple:
        """The memo key of one analysis, per this cache's keying mode.

        Structural caches key by the canonical name-free signature
        (``sigmap`` resolves raw connection bits exactly like the
        analyses do); identity caches fall back to :meth:`subgraph_key`.
        """
        if self._struct_memo is None:
            return self.subgraph_key(kind, subgraph, extra)
        signature = self._struct_memo.signature(
            subgraph.cells, subgraph.target, subgraph.known,
            inputs=subgraph.inputs, sigmap=sigmap,
        )
        return (kind, signature, extra)

    def lookup(self, key: Tuple) -> Tuple[bool, Any]:
        """``(hit, value)``; counts a ``{kind}_hits``/``_misses`` event."""
        value = self._entries.get(key, _MISS)
        kind = key[0]
        if value is _MISS:
            self._bump(f"{kind}_misses")
            return False, None
        self._bump(f"{kind}_hits")
        return True, value

    def _evict_to_half(self) -> None:
        """Sweep the oldest entries until the population is back at half
        the cap (mutation orphans stale keys, so oldest-first eviction is
        the right policy and plain-dict insertion order makes it free).
        ``evictions`` counts dropped *entries*, not sweeps.  Caller holds
        the lock."""
        drop = len(self._entries) - self.max_entries // 2
        if drop <= 0:
            return
        stale_keys = list(self._entries)[:drop]
        for stale in stale_keys:
            self._entries.pop(stale, None)
        self._bump("evictions", len(stale_keys))

    def store(self, key: Tuple, value: Any) -> None:
        """Memoize, sweeping down to half the cap when full (see
        :meth:`_evict_to_half`)."""
        with self._lock:
            if len(self._entries) >= self.max_entries:
                self._evict_to_half()
            self._entries[key] = value

    # -- snapshot / warm-start -------------------------------------------------

    def export(self, exclude: Optional[Container[Tuple]] = None) -> Dict[Tuple, Any]:
        """Snapshot the signature-keyed entries for another process.

        Structural keys are pure data (``(kind, digest, extra)`` tuples)
        and the memoized values are plain outcomes — no live IR objects —
        so the snapshot pickles cheaply and stays meaningful in any
        process.  Identity-keyed caches export nothing: their keys embed
        wire-identity bits that are only meaningful to this process.
        ``exclude`` drops keys already known to the receiver (workers use
        it to return just their delta).
        """
        if self._struct_memo is None:
            return {}
        # snapshot the items under the lock: concurrent thread-suite
        # workers store()/merge() into the shared session cache, and an
        # unlocked iteration raced their inserts (RuntimeError:
        # dictionary changed size during iteration)
        with self._lock:
            items = list(self._entries.items())
        if not exclude:
            return dict(items)
        return {key: value for key, value in items if key not in exclude}

    def merge(self, entries: Mapping[Tuple, Any]) -> int:
        """Adopt a snapshot's entries (existing keys win; returns #added).

        Values are pure functions of their keys, so whichever side
        computed an entry first, the content is identical — keeping the
        existing entry just preserves this cache's insertion-age order.
        The ``max_entries`` cap holds afterwards: an over-full merge
        (repeated warm-start deltas, a large on-disk snapshot) sweeps
        oldest-first back to half the cap exactly like :meth:`store`,
        instead of growing the population unboundedly.
        """
        added = 0
        with self._lock:
            for key, value in entries.items():
                if key not in self._entries:
                    self._entries[key] = value
                    added += 1
            if len(self._entries) > self.max_entries:
                self._evict_to_half()
        if added:
            self._bump("merged", added)
        return added


__all__ = ["ResultCache"]
