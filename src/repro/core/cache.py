"""Persistent sub-graph result cache: content-signature memoization.

The SAT oracle (:mod:`repro.sat.oracle`) memoizes *solver verdicts* keyed by
sub-graph content signatures.  The other two rungs of the redundancy pass's
decision ladder — the Table-I inference rules and exhaustive simulation —
were recomputed from scratch whenever a dirty region was re-traversed, even
though their answers are pure functions of exactly the same key.

:class:`ResultCache` closes that gap: analysis outcomes are memoized by

* the sub-graph's **content signature** — the ordered ``(cell name,
  version)`` tuple of its cells (:func:`repro.sat.oracle.signature_of`), so
  any rewire of any participating cell changes the key;
* its **free-input list** and **target**, expressed in canonical bits, so
  alias connections that re-canonicalise a boundary bit (without rewiring
  any cell) also change the key;
* the **known facts** restricted to the sub-graph, canonical as well.

That is precisely the scheme that makes the oracle's verdict cache safe
across pass generations (see :meth:`repro.sat.oracle.SatOracle.begin_pass`),
and the same argument applies verbatim here: inference and simulation
consume nothing but the sub-graph cells and the canonical forms embedded in
the key.  Keys never collide across modules, runs or clones because
non-constant :class:`~repro.ir.signals.SigBit` objects hash by wire
*identity* — two modules (or a module and its clone) can never produce
equal keys.

One cache instance is intended to live as long as its owner: the
:class:`~repro.core.smartly.Smartly` pass keeps one across optimization
rounds and runs, and :class:`~repro.flow.session.Session` injects a single
session-wide instance into every flow it builds so entries persist across
rounds, runs *and* modules of the same design.  Entries are bounded with
oldest-half eviction, like the oracle's verdict cache — netlist mutation
permanently orphans keys embedding old cell versions, so the population
must not grow with session lifetime.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..sat.oracle import signature_of

_MISS = object()


class ResultCache:
    """Bounded memo for sub-graph-keyed analysis outcomes.

    ``counters`` tracks per-kind traffic (``{kind}_hits`` / ``{kind}_misses``
    plus ``evictions``); owners snapshot it around a pass invocation and
    report the delta as pass statistics (the ``rcache_*`` entries of
    :class:`~repro.flow.session.RunReport` pass stats).
    """

    def __init__(self, max_entries: int = 200_000):
        self.max_entries = max_entries
        self._entries: Dict[Tuple, Any] = {}
        self.counters: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    @staticmethod
    def subgraph_key(kind: str, subgraph: Any, extra: Tuple = ()) -> Tuple:
        """The canonical memo key of one analysis over one sub-graph.

        ``kind`` separates analyses ("infer", "sim", ...); ``extra``
        carries analysis parameters that change the answer (budgets,
        thresholds) — structural identity comes from the sub-graph itself.
        """
        return (
            kind,
            signature_of(subgraph.cells),
            tuple(subgraph.inputs),
            subgraph.target,
            frozenset(subgraph.known.items()),
            extra,
        )

    def lookup(self, key: Tuple) -> Tuple[bool, Any]:
        """``(hit, value)``; counts a ``{kind}_hits``/``_misses`` event."""
        value = self._entries.get(key, _MISS)
        kind = key[0]
        if value is _MISS:
            self._bump(f"{kind}_misses")
            return False, None
        self._bump(f"{kind}_hits")
        return True, value

    def store(self, key: Tuple, value: Any) -> None:
        """Memoize, dropping the oldest half at the size cap (mutation
        orphans old-version keys, so oldest-first eviction is the right
        policy and plain-dict insertion order makes it free)."""
        if len(self._entries) >= self.max_entries:
            for stale in list(self._entries)[: self.max_entries // 2]:
                del self._entries[stale]
            self._bump("evictions")
        self._entries[key] = value


__all__ = ["ResultCache"]
