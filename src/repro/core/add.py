"""Algebraic Decision Diagram with the paper's greedy variable heuristic.

An ADD generalises a BDD to arbitrary terminal sets — here the terminals
are the data operands (``p0..pN`` and the default) of a case statement, and
the decision variables are the individual bits of the case selector.

Finding the optimal variable order is NP-complete (as for BDDs), so the
paper uses a greedy rule: *at every node, pick the selector bit that
minimises the total number of distinct terminals of the two children*
(paper §III, illustrated on Listing 2: choosing S2 first scores 4 —
left {p1,p2,p3} / right {p0} — while S0 scores 6).  Nodes are hash-consed,
so the result is a DAG and equal cofactors collapse (low == high elides the
node), exactly like reduced ordered BDDs but with a per-node variable
choice (a "free" ADD).

The number of internal nodes is the number of 2:1 muxes the rebuilt tree
needs; :meth:`ADD.depth` is its height.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ADDNode:
    """Either a terminal (``value`` set) or an internal decision node."""

    var: Optional[int] = None
    low: Optional["ADDNode"] = None
    high: Optional["ADDNode"] = None
    value: Optional[Hashable] = None

    @property
    def is_terminal(self) -> bool:
        return self.var is None

    def __repr__(self) -> str:
        if self.is_terminal:
            return f"Terminal({self.value!r})"
        return f"Node(v{self.var}, {self.low!r}, {self.high!r})"


class ADD:
    """A hash-consed ADD built from an exhaustive output table.

    ``table[i]`` is the (hashable) terminal for the selector assignment
    whose bit *j* equals bit *j* of *i*; ``num_vars`` is the selector
    width.  Build cost is O(2^w · w) per level, fine for the case-selector
    widths (≤ ~12) this library restructures.
    """

    def __init__(self, num_vars: int, table: Sequence[Hashable]):
        if len(table) != 1 << num_vars:
            raise ValueError(
                f"table needs {1 << num_vars} entries, got {len(table)}"
            )
        self.num_vars = num_vars
        self._terminals: Dict[Hashable, ADDNode] = {}
        self._nodes: Dict[Tuple[int, int, int], ADDNode] = {}
        self.root = self._build(tuple(range(num_vars)), tuple(table))

    # -- construction -------------------------------------------------------

    def _terminal(self, value: Hashable) -> ADDNode:
        node = self._terminals.get(value)
        if node is None:
            node = ADDNode(value=value)
            self._terminals[value] = node
        return node

    def _cons(self, var: int, low: ADDNode, high: ADDNode) -> ADDNode:
        if low is high:
            return low
        key = (var, id(low), id(high))
        node = self._nodes.get(key)
        if node is None:
            node = ADDNode(var=var, low=low, high=high)
            self._nodes[key] = node
        return node

    @staticmethod
    def _cofactors(
        table: Tuple[Hashable, ...], position: int
    ) -> Tuple[Tuple[Hashable, ...], Tuple[Hashable, ...]]:
        """Split on the variable at bit ``position`` of the table index."""
        low: List[Hashable] = []
        high: List[Hashable] = []
        stride = 1 << position
        for base in range(0, len(table), stride * 2):
            low.extend(table[base:base + stride])
            high.extend(table[base + stride:base + stride * 2])
        return tuple(low), tuple(high)

    def _build(
        self,
        vars_left: Tuple[int, ...],
        table: Tuple[Hashable, ...],
        memo: Optional[Dict] = None,
    ) -> ADDNode:
        if memo is None:
            memo = {}
        key = (vars_left, table)
        cached = memo.get(key)
        if cached is not None:
            return cached
        distinct = set(table)
        if len(distinct) == 1:
            node = self._terminal(table[0])
            memo[key] = node
            return node
        # the paper's heuristic: minimise |terminals(low)| + |terminals(high)|
        best_pos = 0
        best_score = None
        for pos in range(len(vars_left)):
            low, high = self._cofactors(table, pos)
            score = len(set(low)) + len(set(high))
            if best_score is None or score < best_score:
                best_score = score
                best_pos = pos
        low_table, high_table = self._cofactors(table, best_pos)
        var = vars_left[best_pos]
        rest = vars_left[:best_pos] + vars_left[best_pos + 1:]
        node = self._cons(
            var,
            self._build(rest, low_table, memo),
            self._build(rest, high_table, memo),
        )
        memo[key] = node
        return node

    # -- queries ----------------------------------------------------------------

    @property
    def num_internal_nodes(self) -> int:
        """Distinct decision nodes = 2:1 muxes needed by the rebuild."""
        seen: set = set()
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen or node.is_terminal:
                continue
            seen.add(id(node))
            count += 1
            stack.append(node.low)
            stack.append(node.high)
        return count

    @property
    def num_terminals(self) -> int:
        seen: set = set()
        stack = [self.root]
        terminals = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node.is_terminal:
                terminals.add(node.value)
            else:
                stack.append(node.low)
                stack.append(node.high)
        return len(terminals)

    def depth(self) -> int:
        """Longest root-to-terminal path (mux levels of the rebuilt tree)."""
        memo: Dict[int, int] = {}

        def walk(node: ADDNode) -> int:
            if node.is_terminal:
                return 0
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            value = 1 + max(walk(node.low), walk(node.high))
            memo[id(node)] = value
            return value

        return walk(self.root)

    def evaluate(self, assignment: int) -> Hashable:
        """The terminal selected when selector bit j = bit j of assignment."""
        node = self.root
        while not node.is_terminal:
            node = node.high if (assignment >> node.var) & 1 else node.low
        return node.value

    def __repr__(self) -> str:
        return (
            f"ADD({self.num_vars} vars, {self.num_internal_nodes} nodes, "
            f"{self.num_terminals} terminals)"
        )


def case_table(
    num_vars: int,
    rows: Sequence[Tuple[Dict[int, bool], Hashable]],
    default: Hashable,
) -> List[Hashable]:
    """Exhaustive first-match-wins table for a priority case statement.

    Each row is ``(cube, value)`` where the cube maps selector bit index ->
    required value (missing bits are don't-care, like ``casez``).
    """
    table: List[Hashable] = []
    for assignment in range(1 << num_vars):
        chosen = default
        for cube, value in rows:
            if all(((assignment >> bit) & 1) == int(want) for bit, want in cube.items()):
                chosen = value
                break
        table.append(chosen)
    return table
