"""Muxtree restructuring (paper §III, Algorithm 1) — ``smartly_rebuild``.

The pass finds muxtrees produced by ``case`` statements: chains/trees of
``mux``/``pmux`` cells whose controls are ``eq``-against-constant (or
``logic_not`` / plain-bit / ``not``) comparisons of a *single* shared
selector signal (``OnlyEq`` + ``SingleCtrl`` of Algorithm 1).  Each such
tree is summarised as a priority list of (selector cube -> data operand)
rows, converted into an exhaustive table over the selector bits, and
rebuilt as an :class:`~repro.core.add.ADD` whose internal nodes become 2:1
muxes controlled by the selector bits *directly* — disconnecting the eq
gates entirely (Figure 5 -> Figure 7: 3 eq + 3 mux become 3 mux).

The rebuild is gated by the paper's cost model (``Check``):

* gain from removed muxes (old mux AIG cost - ADD node AIG cost, both
  weighted by data width),
* plus the AIG cost of every eq/not gate whose fanout lies entirely inside
  the tree (``CountRemoved`` — gates that remain shared with other logic
  contribute nothing),
* rebuilt only when the estimated gain is positive and the new height does
  not exceed ``max_height_factor`` times the selector width.

Dead cells left behind are reaped by ``opt_clean`` (``RemoveUnusedCell``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.cells import CellType, input_ports
from ..ir.module import Cell, Module
from ..ir.signals import SigBit, SigSpec, State
from ..ir.walker import NetIndex
from ..opt.pass_base import DirtySet, Pass, PassResult, register_pass
from ..opt.opt_muxtree import (
    LazyEdgeMap,
    compute_internal_edge,
    dirty_tree_roots,
    mux_of_spec,
    seeding_edge_map,
)
from .add import ADD, ADDNode, case_table

#: a cube over selector bits: bit -> required value
Cube = Dict[SigBit, bool]

#: sentinel returned by pattern recognition for structurally-false compares
NEVER_MATCHES = "never"


@dataclass
class CaseTree:
    """A muxtree recognised as a single-selector case structure."""

    root: Cell
    width: int
    #: priority-ordered rows: (cube, data operand)
    rows: List[Tuple[Cube, SigSpec]] = field(default_factory=list)
    #: mux/pmux cells belonging to the tree
    mux_cells: List[Cell] = field(default_factory=list)
    #: control-cone cells (eq / logic_not / not) keyed by name
    ctrl_cells: Dict[str, Cell] = field(default_factory=dict)
    #: selector bits in first-use order
    sel_bits: List[SigBit] = field(default_factory=list)

    @property
    def num_muxes(self) -> int:
        return len(self.mux_cells)

    @property
    def mux_weight(self) -> int:
        """Tree size in 2:1-mux equivalents (a pmux counts one per branch)."""
        return sum(
            cell.n if cell.type is CellType.PMUX else 1
            for cell in self.mux_cells
        )


# -- AIG cost estimates (mirror aigmap decompositions) --------------------------


def mux_aig_cost(width: int, branches: int = 1) -> int:
    """A 2:1 mux is 3 AND nodes per bit; a pmux is one mux per branch."""
    return 3 * width * branches


def eq_aig_cost(compare_width: int) -> int:
    """Equality against a constant: the per-bit xnors fold into plain
    inverters in the AIG, leaving only the AND-reduce tree."""
    return max(0, compare_width - 1)


def ctrl_cell_cost(cell: Cell) -> int:
    if cell.type is CellType.EQ:
        return eq_aig_cost(cell.width)
    if cell.type is CellType.LOGIC_NOT:
        return max(0, cell.width - 1)
    return 0  # plain not / direct bit


@register_pass
class MuxtreeRestructure(Pass):
    """Rebuild single-selector case muxtrees through an ADD."""

    name = "smartly_rebuild"
    incremental_capable = True
    #: eq-against-constant recognition looks through or-trees of eq cells —
    #: a few hops above a mux select; 4 covers every pattern _pattern_of /
    #: _disjunction_of can match plus a safety hop
    dirty_radius = 4

    def __init__(
        self,
        max_sel_width: int = 12,
        min_gain: int = 1,
        max_height_factor: float = 1.0,
        min_tree_muxes: int = 2,
    ):
        self.max_sel_width = max_sel_width
        self.min_gain = min_gain
        self.max_height_factor = max_height_factor
        self.min_tree_muxes = min_tree_muxes

    # -- pass entry ------------------------------------------------------------

    def execute(self, module: Module, result: PassResult) -> None:
        self._optimize(module, result, NetIndex(module), dirty=None)

    def execute_incremental(
        self, module: Module, result: PassResult, dirty: Optional[DirtySet]
    ) -> None:
        index = module.net_index()
        with index.frozen():
            self._optimize(module, result, index, dirty=dirty)

    def _optimize(
        self,
        module: Module,
        result: PassResult,
        index: NetIndex,
        dirty: Optional[DirtySet],
    ) -> None:
        self.module = module
        self.index = index
        self.sigmap = index.sigmap
        self._result = result
        if dirty is None:
            self.parent_edge = seeding_edge_map(module, index)
            self.muxes = {c.name: c for c in module.cells.values() if c.is_mux}
            roots = [
                c for c in self.muxes.values() if c.name not in self.parent_edge
            ]
        else:
            closure = dirty.closure(index, self.dirty_radius)
            if not closure:
                return
            self.parent_edge = LazyEdgeMap(
                lambda name: compute_internal_edge(module, index, name)
            )
            root_names = dirty_tree_roots(
                index, module, self.parent_edge, closure
            )
            if not root_names:
                return
            self.muxes = {c.name: c for c in module.cells.values() if c.is_mux}
            roots = [
                c
                for c in self.muxes.values()
                if c.name in root_names
                and self.parent_edge.get(c.name) is None
            ]
        # canonical bits observable at module outputs (alias-aware; the
        # index maintains this set, so no per-entry rebuild)
        self.output_bits = index.output_bits
        if dirty is None:
            self.y_of = {
                tuple(self.sigmap.map_spec(c.connections["Y"])): c.name
                for c in self.muxes.values()
            }
        else:
            self.y_of = None  # resolve through the index (mux_of_spec)
        trees: List[CaseTree] = []
        for root in roots:
            tree = self._collect_tree(root)
            if tree is not None:
                trees.append(tree)
        result.note("trees_found", len(trees))

        for tree in trees:
            self._consider_rebuild(tree, result)

    # -- OnlyEq / SingleCtrl recognition (Algorithm 1, line 2) --------------------

    def _pattern_of(self, ctrl_bit: SigBit) -> Optional[Cube]:
        """Interpret a control bit as a cube over selector bits.

        Returns None when the control is not an eq-like form; the cube is
        empty for a tautology (cannot happen via eq, kept for safety).
        The driving cell (if any) is recorded in ``self._last_ctrl_cell``.
        """
        self._last_ctrl_cell = None
        cbit = self.sigmap.map_bit(ctrl_bit)
        if cbit.is_const:
            return None
        driver = self.index.comb_driver(cbit)
        if driver is None:
            # a raw selector bit used as control: cube {bit: 1}
            return {cbit: True}
        if driver.type is CellType.EQ:
            a = self.sigmap.map_spec(driver.connections["A"])
            b = self.sigmap.map_spec(driver.connections["B"])
            if b.is_const:
                sig, pattern = a, b
            elif a.is_const:
                sig, pattern = b, a
            else:
                return None
            cube: Cube = {}
            for sbit, pbit in zip(sig, pattern):
                if pbit.state is State.Sx:
                    return None  # x in comparison: never matches cleanly
                want = pbit.state is State.S1
                if sbit.is_const:
                    if (sbit.state is State.S1) != want:
                        self._last_ctrl_cell = driver
                        return NEVER_MATCHES
                    continue
                if sbit in cube and cube[sbit] != want:
                    self._last_ctrl_cell = driver
                    return NEVER_MATCHES
                cube[sbit] = want
            self._last_ctrl_cell = driver
            return cube
        if driver.type is CellType.LOGIC_NOT:
            a = self.sigmap.map_spec(driver.connections["A"])
            cube = {}
            for sbit in a:
                if sbit.is_const:
                    if sbit.state is State.S1:
                        self._last_ctrl_cell = driver
                        return NEVER_MATCHES
                    continue
                cube[sbit] = False
            self._last_ctrl_cell = driver
            return cube
        if driver.type is CellType.NOT and driver.width == 1:
            inner = self.sigmap.map_bit(driver.connections["A"][0])
            if inner.is_const:
                return None
            if self.index.comb_driver(inner) is None:
                self._last_ctrl_cell = driver
                return {inner: False}
            return None
        return None

    def _disjunction_of(self, ctrl_bit: SigBit) -> Optional[List[Cube]]:
        """Interpret a control as a disjunction of cubes (Figure 6 trees).

        Handles plain eq-forms (one cube) and ``or``/``logic_or`` trees of
        eq-forms (several cubes, priority order preserved).  Every driver
        cell encountered is recorded in ``self._disjunction_cells``.
        Returns None when any leaf is not an eq-form, or — for genuine
        disjunctions — when the cubes do not share a single selector wire
        (the paper's ``SingleCtrl``: ``or(S, r)`` over unrelated signals is
        a *dependent control* for the SAT stage, not a case pattern).
        """
        self._disjunction_cells = {}

        def walk(bit: SigBit) -> Optional[List[Cube]]:
            cbit = self.sigmap.map_bit(bit)
            driver = self.index.comb_driver(cbit)
            if driver is not None and driver.width == 1 and driver.type in (
                CellType.OR,
                CellType.LOGIC_OR,
            ):
                left = walk(driver.connections["A"][0])
                if left is None:
                    return None
                right = walk(driver.connections["B"][0])
                if right is None:
                    return None
                self._disjunction_cells[driver.name] = driver
                return left + right
            pattern = self._pattern_of(bit)
            if pattern is None:
                return None
            if self._last_ctrl_cell is not None:
                self._disjunction_cells[self._last_ctrl_cell.name] = (
                    self._last_ctrl_cell
                )
            if pattern is NEVER_MATCHES:
                return []
            return [pattern]

        cubes = walk(ctrl_bit)
        if cubes is None or len(cubes) <= 1:
            return cubes
        selector_wires = {
            id(bit.wire) for cube in cubes for bit in cube
        }
        if len(selector_wires) > 1:
            return None  # SingleCtrl violated: not a case-style disjunction
        return cubes

    # -- tree collection -----------------------------------------------------------

    def _collect_tree(self, root: Cell) -> Optional[CaseTree]:
        tree = CaseTree(root=root, width=root.width)
        if not self._walk(root, {}, tree, is_root=True):
            return None
        if tree.mux_weight < self.min_tree_muxes:
            return None
        if not tree.sel_bits or len(tree.sel_bits) > self.max_sel_width:
            return None
        return tree

    def _child_of(self, spec: SigSpec) -> Optional[Cell]:
        """The internal mux driving exactly this data operand, if any."""
        name = mux_of_spec(self.index, self.sigmap, spec, self.y_of)
        if name is None or name not in self.module.cells:
            return None
        if self.parent_edge.get(name) is None:
            return None  # shared: treat as opaque operand
        return self.module.cells[name]

    def _note_sel_bits(self, cube: Cube, tree: CaseTree) -> None:
        for bit in cube:
            if bit not in tree.sel_bits:
                tree.sel_bits.append(bit)

    def _walk(self, cell: Cell, cube: Cube, tree: CaseTree, is_root: bool = False) -> bool:
        """Append the rows of ``cell`` (active under ``cube``) to the tree.

        All select patterns of the cell are validated *before* any tree
        mutation, so a False return leaves the tree untouched and the
        caller can fall back to an opaque operand.
        """
        if cell.type is CellType.MUX:
            cubes = self._disjunction_of(cell.connections["S"][0])
            if cubes is None:
                return False
            ctrl_cells = dict(self._disjunction_cells)
            tree.mux_cells.append(cell)
            tree.ctrl_cells.update(ctrl_cells)
            live = []
            for pattern in cubes:
                combined = self._merge_cubes(cube, pattern)
                if combined is not None:
                    live.append(combined)
            if len(live) == 1:
                # plain eq control: descend into the B operand as usual
                self._note_sel_bits(live[0], tree)
                self._emit(cell.connections["B"], live[0], tree)
            else:
                # Figure-6 disjunction: one priority row per cube; the B
                # operand is kept opaque (no path cube represents the
                # disjunction exactly, but ordered rows do)
                spec = self.sigmap.map_spec(cell.connections["B"])
                for combined in live:
                    self._note_sel_bits(combined, tree)
                    tree.rows.append((dict(combined), spec))
            self._emit(cell.connections["A"], cube, tree)
            return True
        # pmux: validate every select pattern up front
        patterns: List[Tuple[object, Optional[Cell]]] = []
        for i in range(cell.n):
            pattern = self._pattern_of(cell.connections["S"][i])
            if pattern is None:
                return False
            patterns.append((pattern, self._last_ctrl_cell))
        tree.mux_cells.append(cell)
        for i, (pattern, ctrl_cell) in enumerate(patterns):
            if ctrl_cell is not None:
                tree.ctrl_cells[ctrl_cell.name] = ctrl_cell
            if pattern is NEVER_MATCHES:
                continue
            combined = self._merge_cubes(cube, pattern)
            if combined is None:
                continue  # branch unreachable under the path cube
            self._note_sel_bits(combined, tree)
            self._emit(cell.pmux_branch(i), combined, tree)
        self._emit(cell.connections["A"], cube, tree)
        return True

    def _emit(self, spec: SigSpec, cube: Cube, tree: CaseTree) -> None:
        """Record a data operand: recurse into an internal case mux, else row."""
        child = self._child_of(spec)
        if child is not None:
            if self._walk(child, cube, tree):
                return
            # child not an eq-form mux: fall through, treat as opaque
        # canonicalise so aliased operands share one ADD terminal
        tree.rows.append((dict(cube), self.sigmap.map_spec(spec)))

    @staticmethod
    def _merge_cubes(a: Cube, b: Cube) -> Optional[Cube]:
        """Conjunction of two cubes; None when contradictory."""
        merged = dict(a)
        for bit, value in b.items():
            if merged.get(bit, value) != value:
                return None
            merged[bit] = value
        return merged

    @staticmethod
    def _cube_conflicts(a: Cube, b: Cube) -> bool:
        return any(a.get(bit, value) != value for bit, value in b.items())

    # -- decision + rebuild (Algorithm 1 lines 3-9) -------------------------------------

    def _consider_rebuild(self, tree: CaseTree, result: PassResult) -> None:
        sel_order = list(tree.sel_bits)
        positions = {bit: i for i, bit in enumerate(sel_order)}
        rows = [
            ({positions[bit]: value for bit, value in cube.items()}, spec)
            for cube, spec in tree.rows
        ]
        default_spec = rows[-1][1] if rows else None
        table = case_table(len(sel_order), rows, default=default_spec)
        add = ADD(len(sel_order), table)

        removable = self._removable_ctrl_cells(tree)
        removed_eq_gain = sum(ctrl_cell_cost(c) for c in removable)
        old_mux_cost = sum(
            mux_aig_cost(c.width, c.n if c.type is CellType.PMUX else 1)
            for c in tree.mux_cells
        )
        new_mux_cost = mux_aig_cost(tree.width) * add.num_internal_nodes
        gain = old_mux_cost + removed_eq_gain - new_mux_cost
        height = add.depth()

        result.stats["trees_considered"] = result.stats.get("trees_considered", 0) + 1
        if gain < self.min_gain:
            result.stats["trees_rejected_cost"] = (
                result.stats.get("trees_rejected_cost", 0) + 1
            )
            return
        if height > max(1, int(self.max_height_factor * len(sel_order))):
            result.stats["trees_rejected_height"] = (
                result.stats.get("trees_rejected_height", 0) + 1
            )
            return

        self._rebuild(tree, add, sel_order)
        result.bump("trees_rebuilt")
        result.bump("muxes_removed", len(tree.mux_cells))
        result.bump("muxes_added", add.num_internal_nodes)
        result.bump("eq_gates_disconnected", len(removable))
        result.bump("estimated_gain", gain)

    def _removable_ctrl_cells(self, tree: CaseTree) -> List[Cell]:
        """Control gates whose every reader is a select port of tree muxes
        (``CountRemoved``): they die once the tree stops using them."""
        tree_mux_names = {c.name for c in tree.mux_cells}
        removable = []
        for cell in tree.ctrl_cells.values():
            out_bits = [self.sigmap.map_bit(b) for b in cell.output_bits()]
            ok = True
            for bit in out_bits:
                if bit in self.output_bits:
                    ok = False
                    break
                for reader, pname, _off in self.index.readers.get(bit, ()):
                    if reader.name not in tree_mux_names or pname != "S":
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                removable.append(cell)
        return removable

    def _rebuild(self, tree: CaseTree, add: ADD, sel_order: List[SigBit]) -> None:
        """Emit one 2:1 mux per ADD node; controls are selector bits directly."""
        memo: Dict[int, SigSpec] = {}

        def emit(node: ADDNode) -> SigSpec:
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            if node.is_terminal:
                spec = node.value
            else:
                low = emit(node.low)
                high = emit(node.high)
                mux = self.module.add_cell(
                    CellType.MUX,
                    A=low,
                    B=high,
                    S=SigSpec([sel_order[node.var]]),
                )
                spec = mux.connections["Y"]
            memo[id(node)] = spec
            return spec

        new_root_spec = emit(add.root)
        old_y = tree.root.connections["Y"]
        # the old root Y merges into the rebuilt tree's alias class; its
        # true readers seed the next dirty round (see PassResult.touch_readers)
        self._result.touch_readers(
            reader.name
            for bit in old_y
            for reader, _port, _off in self.index.readers.get(
                self.sigmap.map_bit(bit), ()
            )
        )
        self.module.remove_cell(tree.root)
        self.module.connect(old_y, new_root_spec)
