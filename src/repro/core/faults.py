"""Named injectable faults: the chaos-testing registry of the serve layer.

A service that claims to survive worker crashes, hung SAT calls and
rotted store generations has to *prove* it — on demand, determin-
istically, in CI — not wait for production to produce the failure.
This module is the single registry of every fault the codebase knows how
to inject, so the chaos suite (``tests/flow/test_faults.py``), the
survival benchmark (``benchmarks/bench_faults.py``) and ad-hoc operator
drills all speak the same names:

``worker-crash``
    The worker subprocess executing the job dies abruptly
    (``os._exit``), simulating a segfault or the OOM killer.  Only
    meaningful under ``--isolation process``; a thread-isolated server
    refuses it with a structured error instead of killing itself.
``worker-hang``
    The worker stops responding mid-job (sleeps forever), simulating a
    heavy-tailed SAT call that never returns.  The supervisor's
    watchdog must kill it at the job's wall-clock budget.
``store-corrupt-generation``
    The newest on-disk :class:`~repro.core.store.CacheStore` generation
    is garbled right after it is written, simulating torn disk state.
    A later load must count it ``corrupt_skipped`` and degrade to a
    colder cache — never raise.
``merge-error``
    Merging a finished job's cache delta back into the daemon's shared
    cache raises, simulating a poisoned snapshot.  The job's result
    must still be answered; only the delta is dropped (counted as
    ``merge_errors``).

**Activation** is two-channel:

* the ``SMARTLY_FAULTS`` environment variable — a comma-separated list
  of fault names armed for the whole process tree (worker subprocesses
  inherit it), e.g. ``SMARTLY_FAULTS=worker-crash``.  An env-armed
  fault fires on *every* pass through its site, so retries exhaust and
  the caller sees the terminal structured error;
* a test-only ``"inject": "<name>"`` request field on serve jobs,
  honored only when the server was constructed with
  ``allow_fault_injection=True`` (the CLI's ``--allow-fault-injection``).
  Request-injected worker faults fire on the *first attempt only*, so a
  retrying server demonstrably recovers.

Sites call :func:`trip` with the fault name and the request-injected
name (if any); an armed fault raises :class:`InjectedFault`, which the
site's owner converts into whatever the invariant demands (a dead
worker, a dropped delta, a garbled file).  Unknown names raise
:class:`FaultError` at validation time — a typo must not silently arm
nothing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import FrozenSet, Optional, Union

#: environment variable arming faults process-wide (comma-separated names)
ENV_VAR = "SMARTLY_FAULTS"


class FaultError(ValueError):
    """An unknown fault name was requested (typos must fail loudly)."""


class InjectedFault(RuntimeError):
    """An armed fault fired at its site; ``.fault`` names it."""

    def __init__(self, fault: str):
        super().__init__(f"injected fault: {fault}")
        self.fault = fault


@dataclass(frozen=True)
class FaultSpec:
    """One registered fault: where it fires and what surviving it means."""

    name: str
    #: which subsystem hosts the injection site
    site: str  # "worker" | "store" | "merge"
    description: str
    #: the survival invariant the chaos suite asserts when this fires
    invariant: str


REGISTRY = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "worker-crash",
            site="worker",
            description="the worker subprocess os._exit()s mid-job "
                        "(segfault / OOM-kill stand-in)",
            invariant="daemon answers a retryable structured error (or "
                      "retries onto a replacement worker), keeps its warm "
                      "cache, and serves every later job byte-identically",
        ),
        FaultSpec(
            "worker-hang",
            site="worker",
            description="the worker sleeps forever mid-job (heavy-tailed "
                        "SAT call stand-in)",
            invariant="the watchdog kills the worker at the job's "
                      "wall-clock budget; the timeout error is retryable "
                      "and the daemon keeps serving",
        ),
        FaultSpec(
            "store-corrupt-generation",
            site="store",
            description="the newest store generation is garbled right "
                        "after a checkpoint (torn-disk stand-in)",
            invariant="loads count the generation corrupt_skipped and "
                      "degrade to a colder cache; results stay correct",
        ),
        FaultSpec(
            "merge-error",
            site="merge",
            description="merging a job's cache delta back into the shared "
                        "cache raises (poisoned-snapshot stand-in)",
            invariant="the job's result is still answered; the delta is "
                      "dropped and counted, the daemon keeps serving",
        ),
    )
}

#: every registered fault name, sorted (the CLI/docs enumeration)
FAULT_NAMES = tuple(sorted(REGISTRY))


def validate(name: str) -> str:
    """Return ``name`` if registered; raise :class:`FaultError` otherwise."""
    if name not in REGISTRY:
        raise FaultError(
            f"unknown fault {name!r}; registered faults: "
            f"{', '.join(FAULT_NAMES)}"
        )
    return name


def env_faults(environ: Optional[dict] = None) -> FrozenSet[str]:
    """The set of fault names armed via :data:`ENV_VAR` (validated)."""
    raw = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    names = frozenset(
        part.strip() for part in raw.split(",") if part.strip()
    )
    for name in names:
        validate(name)
    return names


def is_armed(name: str, injected: Optional[str] = None) -> bool:
    """Is ``name`` armed — by the environment or by ``injected`` (the
    request's validated test-only fault field)?"""
    validate(name)
    if injected is not None and validate(injected) == name:
        return True
    return name in env_faults()


def trip(name: str, injected: Optional[str] = None) -> None:
    """Raise :class:`InjectedFault` when fault ``name`` is armed.

    Sites sprinkle this one-liner at the exact point the real failure
    would strike; disarmed it is a set lookup and costs nothing.
    """
    if is_armed(name, injected):
        raise InjectedFault(name)


def corrupt_file(path: Union[str, Path]) -> Path:
    """Garble ``path`` in place (flip bytes mid-file) — the
    ``store-corrupt-generation`` payload.  The length is preserved so
    only content addressing / digest checks can detect the damage,
    which is exactly what the store's loader must rely on."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        data = bytearray(b"\0")
    mid = len(data) // 2
    for offset in range(mid, min(mid + 16, len(data))):
        data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return path


__all__ = [
    "ENV_VAR",
    "FAULT_NAMES",
    "FaultError",
    "FaultSpec",
    "InjectedFault",
    "REGISTRY",
    "corrupt_file",
    "env_faults",
    "is_armed",
    "trip",
    "validate",
]
