"""The combined smaRTLy optimization flow.

The paper evaluates three configurations (Table III):

* **SAT**      — SAT-based redundancy elimination only (``smartly_sat``),
* **Rebuild**  — muxtree restructuring only (``smartly_rebuild``),
* **Full**     — both, which compose: restructuring lowers tree heights and
  simplifies control ports, shrinking the sub-graphs the SAT stage must
  reason about, so Full typically beats the sum of its parts.

``run_smartly`` wraps the passes with the same generic cleanup
(``opt_expr`` / ``opt_merge`` / ``opt_clean``) used around the Yosys
baseline, so area comparisons isolate the muxtree strategy itself.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

from ..ir.module import Module
from ..opt.opt_clean import OptClean
from ..opt.opt_expr import OptExpr
from ..opt.opt_merge import OptMerge
from ..opt.pass_base import (
    DirtySet,
    Pass,
    PassManager,
    PassResult,
    register_pass,
)
from ..sat.oracle import SatOracle
from .cache import ResultCache
from .redundancy import SatRedundancy
from .restructure import MuxtreeRestructure


@dataclass
class SmartlyOptions:
    """Tuning knobs collected in one place (paper §II/§III parameters)."""

    #: enable the SAT-based redundancy elimination stage
    sat: bool = True
    #: enable the ADD-based muxtree restructuring stage
    rebuild: bool = True
    #: sub-graph radius k (gates) around each control port
    k: int = 4
    #: sub-graph radius for data-port queries (inference only)
    data_k: int = 2
    #: exhaustive simulation when free inputs <= sim_threshold
    sim_threshold: int = 8
    #: SAT solving when free inputs <= sat_threshold (else forgo, paper §II)
    sat_threshold: int = 64
    #: per-query CDCL conflict budget
    max_conflicts: int = 2000
    #: raw neighbourhood cap before Theorem II.1 reduction
    max_gates: int = 500
    #: answer SAT queries through the persistent incremental oracle
    #: (False = historic fresh-solver-per-query reference path)
    use_oracle: bool = True
    #: memoize inference/simulation outcomes in a persistent
    #: :class:`~repro.core.cache.ResultCache` keyed by sub-graph content
    #: signatures (False = recompute every outcome, the reference path)
    use_result_cache: bool = True
    #: key the result cache and the oracle's decided verdicts by canonical
    #: name-independent structural signatures
    #: (:func:`repro.ir.struct_hash.struct_signature`), so isomorphic
    #: sub-graphs from renamed modules, clones or other processes share
    #: entries (False = the historic identity ``(name, version)`` keys)
    structural_keys: bool = True
    #: largest case-selector width restructuring will tabulate
    max_sel_width: int = 12
    #: minimum estimated AIG gain before a tree is rebuilt
    min_gain: int = 1
    #: maximum optimisation rounds (restructure + SAT interleave)
    max_rounds: int = 4


@register_pass
class Smartly(Pass):
    """One optimization round: restructure, then SAT-prune, then clean."""

    name = "smartly"
    incremental_capable = True

    def __init__(self, options: Optional[SmartlyOptions] = None, **overrides):
        base = options if options is not None else SmartlyOptions()
        if overrides:
            known = {f.name for f in fields(SmartlyOptions)}
            for key in overrides:
                if key not in known:
                    raise TypeError(f"unknown smaRTLy option {key!r}")
            # never mutate the caller's options object: the same
            # SmartlyOptions instance must be reusable across runs
            base = replace(base, **overrides)
        self.options = base
        #: persistent per-module SAT oracle, shared by every optimization
        #: round so counters (and clause reuse within a round) accumulate
        self._oracle: Optional[SatOracle] = None
        #: persistent inference/simulation result cache shared by every
        #: round (and, when a Session injects one, across runs and modules)
        self._result_cache: Optional[ResultCache] = None

    def attach_result_cache(self, cache: ResultCache) -> None:
        """Share an externally owned result cache (Session injection point).

        Identity keys embed wire-identity bits and structural keys are
        canonical, so either way one cache instance can serve any number
        of modules without collisions; injecting the owning
        :class:`~repro.flow.session.Session`'s instance makes outcomes
        persist across runs and across the design's modules (and, with
        structural keys, lets isomorphic sub-graphs share them).
        """
        self._result_cache = cache

    def execute(self, module: Module, result: PassResult) -> None:
        self._execute(module, result, dirty=None, incremental=False)

    def execute_incremental(
        self, module: Module, result: PassResult, dirty: Optional[DirtySet]
    ) -> None:
        self._execute(module, result, dirty=dirty, incremental=True)

    def _execute(
        self,
        module: Module,
        result: PassResult,
        dirty: Optional[DirtySet],
        incremental: bool,
    ) -> None:
        opts = self.options
        passes = []
        if opts.rebuild:
            # restructuring first: it simplifies the control ports the SAT
            # stage will reason about (paper §IV-A's composition argument)
            passes.append(
                MuxtreeRestructure(
                    max_sel_width=opts.max_sel_width, min_gain=opts.min_gain
                )
            )
        if opts.sat:
            if opts.use_result_cache and self._result_cache is None:
                self._result_cache = ResultCache(
                    structural=opts.structural_keys
                )
            if opts.use_oracle and (
                self._oracle is None or self._oracle.module is not module
            ):
                cache = self._result_cache if opts.use_result_cache else None
                self._oracle = SatOracle(
                    module,
                    structural_keys=opts.structural_keys,
                    # share the cache's labeling memo: one canonicalization
                    # per sub-graph state serves rcache and verdict keys
                    struct_memo=(
                        cache.struct_memo if cache is not None else None
                    ),
                )
            passes.append(
                SatRedundancy(
                    k=opts.k,
                    data_k=opts.data_k,
                    sim_threshold=opts.sim_threshold,
                    sat_threshold=opts.sat_threshold,
                    max_conflicts=opts.max_conflicts,
                    max_gates=opts.max_gates,
                    use_oracle=opts.use_oracle,
                    oracle=self._oracle if opts.use_oracle else None,
                    use_result_cache=opts.use_result_cache,
                    result_cache=(
                        self._result_cache if opts.use_result_cache else None
                    ),
                    structural_keys=opts.structural_keys,
                )
            )
        else:
            # smaRTLy *replaces* opt_muxtree; without the SAT stage (which
            # subsumes it) the baseline identical-signal pruning must still
            # run, exactly like the paper's Rebuild-only configuration
            from ..opt.opt_muxtree import OptMuxtree

            passes.append(OptMuxtree())
        seed = dirty
        for pass_ in passes:
            sub = pass_.run(module, dirty=seed, incremental=incremental)
            result.changed = result.changed or sub.changed
            result.touched_cells |= sub.touched_cells
            result.touched_bits |= sub.touched_bits
            result.touched_fanin_bits |= sub.touched_fanin_bits
            for key, value in sub.stats.items():
                full = f"{sub.pass_name}.{key}"
                result.stats[full] = result.stats.get(full, 0) + value
            if incremental and seed is not None:
                # a later stage must also see what the earlier stage edited
                seed = seed.union(DirtySet(
                    sub.touched_cells, sub.touched_bits,
                    sub.touched_fanin_bits,
                ))


def run_smartly(
    module: Module,
    options: Optional[SmartlyOptions] = None,
    verbose: bool = False,
    **overrides,
) -> PassManager:
    """Run the full smaRTLy flow (cleanup + selected stages) to a fixpoint.

    .. deprecated::
        Legacy entry point, kept as a thin shim.  New code should use
        :class:`repro.api.Session` with the ``smartly`` preset (or a
        custom :class:`repro.api.FlowSpec`), which adds baseline caching,
        structured events and JSON-serializable reports.
    """
    smartly = Smartly(options, **overrides)
    manager = PassManager(
        [OptExpr(), OptMerge(), smartly, OptClean()], verbose=verbose
    )
    manager.run(module, fixpoint=True, max_rounds=smartly.options.max_rounds)
    return manager
