"""Inference-rule engine (paper §II, Table I) — circuit-level implication.

Table I lists the forward/backward rules for ``or`` cells; this engine
generalises them to every combinational cell type:

* **forward**: ternary evaluation of each cell under the currently known
  values (covers rows 1–3 of Table I and their analogues);
* **backward**: per-type implication rules, e.g. ``a|b = 0  =>  a = b = 0``
  and ``a|b = 1, a = 0  =>  b = 1`` (rows 4–6).

Propagation runs a worklist to fixpoint.  Deriving two different values for
one bit means the path condition is unsatisfiable; the engine reports that
as ``contradiction`` (the traversal then knows the branch is never active).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.cells import CellType, input_ports
from ..ir.module import Cell
from ..ir.signals import SigBit, State
from ..ir.walker import NetIndex
from ..sim.eval import eval_cell_ternary
from .subgraph import SubGraph


class Contradiction(Exception):
    """The known values are mutually inconsistent (dead path)."""


@dataclass
class InferenceResult:
    """Fixpoint of the implication engine."""

    values: Dict[SigBit, bool]
    contradiction: bool = False
    iterations: int = 0

    def value_of(self, bit: SigBit) -> Optional[bool]:
        return self.values.get(bit)


class InferenceEngine:
    """Implication propagation over the cells of one sub-graph."""

    def __init__(self, subgraph: SubGraph, index: NetIndex):
        self.subgraph = subgraph
        self.index = index
        self.sigmap = index.sigmap
        # local bit -> cells maps (restricted to the sub-graph)
        self.driver: Dict[SigBit, Cell] = {}
        self.readers: Dict[SigBit, List[Cell]] = {}
        for cell in subgraph.cells:
            for bit in cell.output_bits():
                self.driver[self.sigmap.map_bit(bit)] = cell
            for bit in cell.input_bits():
                cbit = self.sigmap.map_bit(bit)
                if not cbit.is_const:
                    self.readers.setdefault(cbit, []).append(cell)
        self.values: Dict[SigBit, bool] = {}
        self._queue: List[Cell] = []
        self._queued: Set[str] = set()

    # -- assignment --------------------------------------------------------------

    def _get(self, bit: SigBit) -> Optional[bool]:
        cbit = self.sigmap.map_bit(bit)
        if cbit.is_const:
            if cbit.state is State.S1:
                return True
            if cbit.state is State.S0:
                return False
            return None
        return self.values.get(cbit)

    def _state(self, bit: SigBit) -> State:
        value = self._get(bit)
        if value is None:
            return State.Sx
        return State.S1 if value else State.S0

    def _set(self, bit: SigBit, value: bool) -> None:
        cbit = self.sigmap.map_bit(bit)
        if cbit.is_const:
            if cbit.state is State.Sx:
                return
            if (cbit.state is State.S1) != value:
                raise Contradiction(f"constant {cbit!r} forced to {value}")
            return
        existing = self.values.get(cbit)
        if existing is not None:
            if existing != value:
                raise Contradiction(f"{cbit!r} forced to both 0 and 1")
            return
        self.values[cbit] = value
        self._enqueue_neighbours(cbit)

    def _enqueue_neighbours(self, cbit: SigBit) -> None:
        driver = self.driver.get(cbit)
        if driver is not None and driver.name not in self._queued:
            self._queued.add(driver.name)
            self._queue.append(driver)
        for reader in self.readers.get(cbit, ()):  # noqa: B020
            if reader.name not in self._queued:
                self._queued.add(reader.name)
                self._queue.append(reader)

    # -- main loop ------------------------------------------------------------------

    def run(self, initial: Dict[SigBit, bool]) -> InferenceResult:
        iterations = 0
        try:
            for bit, value in initial.items():
                self._set(bit, value)
            # seed: process every cell once
            for cell in self.subgraph.cells:
                if cell.name not in self._queued:
                    self._queued.add(cell.name)
                    self._queue.append(cell)
            while self._queue:
                cell = self._queue.pop()
                self._queued.discard(cell.name)
                iterations += 1
                self._forward(cell)
                self._backward(cell)
        except Contradiction:
            return InferenceResult(dict(self.values), contradiction=True,
                                   iterations=iterations)
        return InferenceResult(dict(self.values), iterations=iterations)

    # -- forward: generic ternary evaluation ----------------------------------------

    def _forward(self, cell: Cell) -> None:
        inputs = {
            pname: [self._state(bit) for bit in cell.connections[pname]]
            for pname in input_ports(cell.type)
        }
        outputs = eval_cell_ternary(cell, inputs)
        for pname, states in outputs.items():
            for bit, state in zip(cell.connections[pname], states):
                if state is not State.Sx:
                    self._set(bit, state is State.S1)

    # -- backward: per-type implication rules ------------------------------------------

    def _backward(self, cell: Cell) -> None:
        t = cell.type
        conn = cell.connections
        if t is CellType.NOT:
            for abit, ybit in zip(conn["A"], conn["Y"]):
                y = self._get(ybit)
                if y is not None:
                    self._set(abit, not y)
        elif t in (CellType.AND, CellType.NAND):
            flip = t is CellType.NAND
            for abit, bbit, ybit in zip(conn["A"], conn["B"], conn["Y"]):
                y = self._get(ybit)
                if y is None:
                    continue
                if flip:
                    y = not y
                a, b = self._get(abit), self._get(bbit)
                if y:
                    self._set(abit, True)
                    self._set(bbit, True)
                else:
                    if a is True:
                        self._set(bbit, False)
                    if b is True:
                        self._set(abit, False)
        elif t in (CellType.OR, CellType.NOR):
            flip = t is CellType.NOR
            for abit, bbit, ybit in zip(conn["A"], conn["B"], conn["Y"]):
                y = self._get(ybit)
                if y is None:
                    continue
                if flip:
                    y = not y
                a, b = self._get(abit), self._get(bbit)
                if not y:
                    # Table I row 4: a|b = false  =>  a = b = false
                    self._set(abit, False)
                    self._set(bbit, False)
                else:
                    # Table I rows 5/6: a|b = true with one side false
                    if a is False:
                        self._set(bbit, True)
                    if b is False:
                        self._set(abit, True)
        elif t in (CellType.XOR, CellType.XNOR):
            flip = t is CellType.XNOR
            for abit, bbit, ybit in zip(conn["A"], conn["B"], conn["Y"]):
                y = self._get(ybit)
                if y is None:
                    continue
                if flip:
                    y = not y
                a, b = self._get(abit), self._get(bbit)
                if a is not None:
                    self._set(bbit, a != y)
                elif b is not None:
                    self._set(abit, b != y)
        elif t is CellType.MUX:
            self._backward_mux(cell)
        elif t in (CellType.EQ, CellType.NE):
            self._backward_eq(cell, negated=t is CellType.NE)
        elif t is CellType.REDUCE_AND:
            self._backward_reduce(conn["A"], conn["Y"][0], all_value=True)
        elif t in (CellType.REDUCE_OR, CellType.REDUCE_BOOL):
            self._backward_reduce(conn["A"], conn["Y"][0], all_value=False)
        elif t is CellType.LOGIC_NOT:
            y = self._get(conn["Y"][0])
            if y is not None:
                self._backward_any_zero(conn["A"], is_zero=y)
        elif t is CellType.REDUCE_XOR:
            y = self._get(conn["Y"][0])
            if y is None:
                return
            unknown = [b for b in conn["A"] if self._get(b) is None]
            if len(unknown) == 1:
                parity = False
                for bit in conn["A"]:
                    value = self._get(bit)
                    if value:
                        parity = not parity
                self._set(unknown[0], parity != y)
        elif t in (CellType.LOGIC_AND, CellType.LOGIC_OR):
            y = self._get(conn["Y"][0])
            if y is None:
                return
            if t is CellType.LOGIC_AND and y:
                self._backward_any_zero(conn["A"], is_zero=False)
                self._backward_any_zero(conn["B"], is_zero=False)
            if t is CellType.LOGIC_OR and not y:
                self._backward_any_zero(conn["A"], is_zero=True)
                self._backward_any_zero(conn["B"], is_zero=True)
        # arithmetic/compare/shift/pmux: forward-only (sound, just weaker)

    def _backward_mux(self, cell: Cell) -> None:
        conn = cell.connections
        s = self._get(conn["S"][0])
        for abit, bbit, ybit in zip(conn["A"], conn["B"], conn["Y"]):
            y = self._get(ybit)
            if y is None:
                continue
            a, b = self._get(abit), self._get(bbit)
            if s is True:
                self._set(bbit, y)
            elif s is False:
                self._set(abit, y)
            else:
                # select unknown: a differing known operand fixes it
                if a is not None and a != y:
                    self._set(conn["S"][0], True)
                    self._set(bbit, y)
                elif b is not None and b != y:
                    self._set(conn["S"][0], False)
                    self._set(abit, y)

    def _backward_eq(self, cell: Cell, negated: bool) -> None:
        conn = cell.connections
        y = self._get(conn["Y"][0])
        if y is None:
            return
        if negated:
            y = not y
        pairs = list(zip(conn["A"], conn["B"]))
        if y:
            # equal: copy known bits across
            for abit, bbit in pairs:
                a, b = self._get(abit), self._get(bbit)
                if a is not None:
                    self._set(bbit, a)
                elif b is not None:
                    self._set(abit, b)
        else:
            # not equal: if every pair but one is pinned equal, that pair differs
            open_pairs: List[Tuple[SigBit, SigBit]] = []
            for abit, bbit in pairs:
                if self.sigmap.map_bit(abit) == self.sigmap.map_bit(bbit):
                    continue  # structurally equal
                a, b = self._get(abit), self._get(bbit)
                if a is not None and b is not None:
                    if a != b:
                        return  # already satisfied: no more information
                    continue
                open_pairs.append((abit, bbit))
            if not open_pairs:
                raise Contradiction("eq forced false on equal vectors")
            if len(open_pairs) == 1:
                abit, bbit = open_pairs[0]
                a, b = self._get(abit), self._get(bbit)
                if a is not None:
                    self._set(bbit, not a)
                elif b is not None:
                    self._set(abit, not b)

    def _backward_reduce(self, a_bits, y_bit: SigBit, all_value: bool) -> None:
        """reduce_and (all_value=True) / reduce_or (False) backward rules."""
        y = self._get(y_bit)
        if y is None:
            return
        if y == all_value:
            # and-reduce true / or-reduce false pins every bit
            for bit in a_bits:
                self._set(bit, all_value)
        else:
            unknown = [b for b in a_bits if self._get(b) is None]
            decided = [b for b in a_bits if self._get(b) == (not all_value)]
            if not decided and len(unknown) == 1:
                self._set(unknown[0], not all_value)

    def _backward_any_zero(self, bits, is_zero: bool) -> None:
        """Constrain a vector to be all-zero (is_zero) or nonzero."""
        if is_zero:
            for bit in bits:
                self._set(bit, False)
        else:
            unknown = [b for b in bits if self._get(b) is None]
            ones = [b for b in bits if self._get(b) is True]
            if not ones and len(unknown) == 1:
                self._set(unknown[0], True)


def infer(
    subgraph: SubGraph, index: NetIndex, initial: Dict[SigBit, bool]
) -> InferenceResult:
    """Run the implication engine over a sub-graph from the given facts."""
    return InferenceEngine(subgraph, index).run(initial)
