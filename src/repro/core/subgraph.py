"""Sub-graph extraction for SAT-based redundancy elimination (paper §II).

Around the control port of a multiplexer under inspection, smaRTLy collects
all combinational gates within an (undirected) distance ``k``.  The raw
neighbourhood is then *reduced* using the paper's Theorems II.1/II.2: a
signal S can only affect signal T when S is an ancestor of T, T is an
ancestor of S, or the two share a common ancestor.  For the redundancy
query this partitions the neighbourhood into the target's *interaction
group* — the fanin cones of the target and of the known path signals —
and everything else, which is dismissed (the paper reports ~80% of gates
removed, "greatly accelerating the inference of the SAT solver").
Sequential cells are never crossed, keeping the sub-graph a DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir.cells import CellType, input_ports, output_ports
from ..ir.module import Cell
from ..ir.signals import SigBit
from ..ir.walker import NetIndex


@dataclass
class SubGraph:
    """A bounded, reduced neighbourhood of one target control bit."""

    target: SigBit
    #: cells kept after support-group reduction, in deterministic order
    cells: List[Cell]
    #: free source bits of the reduced sub-graph (inputs to decide over)
    inputs: List[SigBit]
    #: path facts restricted to bits that live inside the sub-graph
    known: Dict[SigBit, bool]
    #: sizes before/after the Theorem II.1 reduction (for Figure-4 stats)
    gates_before: int = 0
    gates_after: int = 0

    @property
    def cell_names(self) -> Set[str]:
        return {cell.name for cell in self.cells}

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)


def extract_subgraph(
    index: NetIndex,
    target: SigBit,
    known: Dict[SigBit, bool],
    k: int = 4,
    max_gates: int = 2000,
) -> SubGraph:
    """Collect and reduce the distance-``k`` neighbourhood of ``target``.

    ``known`` holds the path facts (canonical bit -> value).  ``max_gates``
    caps the raw neighbourhood before reduction so pathological fanout hubs
    cannot blow up the analysis.
    """
    sigmap = index.sigmap
    target = sigmap.map_bit(target)

    # 1. undirected BFS over cells, up to k cell hops from the target bit
    cells: Dict[str, Cell] = {}
    frontier: List[SigBit] = [target]
    seen_bits: Set[SigBit] = {target}
    for _depth in range(k):
        next_frontier: List[SigBit] = []
        for bit in frontier:
            neighbours: List[Cell] = []
            driver = index.comb_driver(bit)
            if driver is not None:
                neighbours.append(driver)
            for reader, _port, _off in index.readers.get(bit, ()):  # noqa: B020
                if reader.is_combinational:
                    neighbours.append(reader)
            for cell in neighbours:
                if cell.name in cells:
                    continue
                if len(cells) >= max_gates:
                    break
                cells[cell.name] = cell
                for other in cell.input_bits() + cell.output_bits():
                    cbit = sigmap.map_bit(other)
                    if not cbit.is_const and cbit not in seen_bits:
                        seen_bits.add(cbit)
                        next_frontier.append(cbit)
            if len(cells) >= max_gates:
                next_frontier = []
                break
        frontier = next_frontier
        if not frontier:
            break

    gates_before = len(cells)

    # 2. Theorem II.1/II.2 reduction via support groups
    kept = _reduce_by_support(index, cells, target, known)

    # 3. free inputs = sources of the kept sub-graph minus known bits
    kept_names = {cell.name for cell in kept}
    input_bits: List[SigBit] = []
    seen_inputs: Set[SigBit] = set()
    relevant_known: Dict[SigBit, bool] = {}

    def classify(bit: SigBit) -> None:
        cbit = sigmap.map_bit(bit)
        if cbit.is_const or cbit in seen_inputs:
            return
        driver = index.comb_driver(cbit)
        if driver is not None and driver.name in kept_names:
            return  # internal signal
        seen_inputs.add(cbit)
        if cbit in known:
            relevant_known[cbit] = known[cbit]
        else:
            input_bits.append(cbit)

    for cell in kept:
        for bit in cell.input_bits():
            classify(bit)
    classify(target)
    # facts about internal signals also constrain the sub-graph
    for bit, value in known.items():
        cbit = sigmap.map_bit(bit)
        if cbit in seen_bits and cbit not in seen_inputs:
            driver = index.comb_driver(cbit)
            if driver is not None and driver.name in kept_names:
                relevant_known[cbit] = value

    return SubGraph(
        target=target,
        cells=kept,
        inputs=input_bits,
        known=relevant_known,
        gates_before=gates_before,
        gates_after=len(kept),
    )


def _reduce_by_support(
    index: NetIndex,
    cells: Dict[str, Cell],
    target: SigBit,
    known: Dict[SigBit, bool],
) -> List[Cell]:
    """Dismiss gates that cannot interact with the target (Theorem II.1).

    A gate constrains the SAT/simulation query only when its output is an
    *ancestor* of the target, or an ancestor of a known signal computed
    inside the neighbourhood (a known internal signal propagates
    information backwards through its fanin cone and forwards into the
    target's cone — the "common ancestor" case of Theorem II.1).  Every
    other gate — descendants of the target, or cousins whose outputs feed
    neither the target nor a known signal — can take any value without
    affecting the query, so it is dismissed.  This realises the paper's
    group partition: the kept set is exactly the target's interaction
    group, and dismissing the rest is what "greatly accelerates the
    inference of the SAT solver".

    The kept cells are returned in topological order (fanin before fanout)
    so simulation and inference can evaluate them in a single sweep.
    """
    sigmap = index.sigmap

    # roots of the cones that matter: the target plus known internal bits
    roots: List[SigBit] = [sigmap.map_bit(target)]
    for bit in known:
        cbit = sigmap.map_bit(bit)
        driver = index.comb_driver(cbit)
        if driver is not None and driver.name in cells:
            roots.append(cbit)

    kept_names: Set[str] = set()
    worklist: List[SigBit] = list(roots)
    visited: Set[SigBit] = set(worklist)
    while worklist:
        bit = worklist.pop()
        driver = index.comb_driver(bit)
        if driver is None or driver.name not in cells:
            continue
        if driver.name not in kept_names:
            kept_names.add(driver.name)
            for fbit in (sigmap.map_bit(b) for b in driver.input_bits()):
                if not fbit.is_const and fbit not in visited:
                    visited.add(fbit)
                    worklist.append(fbit)

    # topological order over the kept cells
    order: List[Cell] = []
    state: Dict[str, int] = {}

    def visit(cell: Cell) -> None:
        stack: List[Tuple[Cell, Iterable[SigBit]]] = [
            (cell, iter(cell.input_bits()))
        ]
        state[cell.name] = 0
        while stack:
            current, it = stack[-1]
            advanced = False
            for bit in it:
                driver = index.comb_driver(sigmap.map_bit(bit))
                if driver is None or driver.name not in kept_names:
                    continue
                if state.get(driver.name) is None:
                    state[driver.name] = 0
                    stack.append((driver, iter(driver.input_bits())))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                if state[current.name] == 0:
                    state[current.name] = 1
                    order.append(current)

    # deterministic root order: kept_names is a set, and string hashing is
    # randomized per interpreter run — iterating it raw would make the topo
    # order (and with it CNF variable numbering) differ run to run
    for name in sorted(kept_names):
        if name not in state:
            visit(cells[name])
    return order
