"""SAT-based redundancy elimination (paper §II) — the ``smartly_sat`` pass.

The pass extends the baseline muxtree traversal: when the value of a control
(or data) bit is not decided by *identical* path signals, smaRTLy builds the
distance-``k`` sub-graph around it, reduces the sub-graph with the
Theorem II.1 support grouping, and escalates through three deciders:

1. the Table-I **inference rules** (cheap implication propagation),
2. **exhaustive simulation** when the reduced sub-graph has at most
   ``sim_threshold`` free inputs (bit-parallel over all 2^n vectors),
3. the **CDCL SAT solver** when it has at most ``sat_threshold`` inputs:
   the control S is fixed iff ``SAT(S=1)`` or ``SAT(S=0)`` is unsatisfiable
   under the path assumptions.

Above ``sat_threshold`` free inputs the query is forgone (the paper's
safeguard against the optimizer becoming the synthesis bottleneck).

A contradiction (both polarities unsatisfiable, or inconsistent facts)
means the path into this mux can never be active; the branch is then pruned
to an arbitrary operand, which is sound because the operand is never
observed.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..ir.module import Module
from ..ir.signals import SigBit, State
from ..ir.walker import NetIndex
from ..opt.pass_base import DirtySet, PassResult, register_pass
from ..opt.opt_muxtree import OptMuxtree
from ..sat.oracle import SatOracle
from ..sat.solver import Solver
from ..sat.tseitin import CircuitEncoder
from ..sim.eval import eval_cell_masks
from .cache import ResultCache
from .inference import infer
from .subgraph import SubGraph, extract_subgraph

_FactsKey = Tuple[SigBit, FrozenSet[Tuple[SigBit, bool]]]


@register_pass
class SatRedundancy(OptMuxtree):
    """Muxtree pruning with logic inferencing over sub-graphs + SAT.

    SAT queries go through a persistent :class:`~repro.sat.oracle.SatOracle`
    (``use_oracle=True``, the default): sub-graph CNF is encoded once per
    distinct sub-graph, repeated queries hit the verdict cache, and learned
    clauses carry over between queries.  ``use_oracle=False`` keeps the
    historic fresh-``Solver``-per-query path as the reference
    implementation the oracle is differentially tested against.  An
    ``oracle`` instance may be injected (the :class:`~repro.core.smartly.
    Smartly` wrapper does, so counters and contexts persist across
    optimization rounds on the same module); otherwise one is created per
    module on first use.  Oracle counters are reported as ``oracle_*``
    entries in the pass stats, alongside ``sat_wallclock_us`` (total time
    spent inside SAT decisions, either path).
    """

    name = "smartly_sat"

    def __init__(
        self,
        k: int = 4,
        data_k: int = 2,
        sim_threshold: int = 8,
        sat_threshold: int = 64,
        max_conflicts: int = 2000,
        max_gates: int = 500,
        data_inference: bool = True,
        use_oracle: bool = True,
        oracle: Optional[SatOracle] = None,
        use_result_cache: bool = True,
        result_cache: Optional[ResultCache] = None,
        structural_keys: bool = True,
    ):
        self.k = k
        self.data_k = data_k
        self.sim_threshold = sim_threshold
        self.sat_threshold = sat_threshold
        self.max_conflicts = max_conflicts
        self.max_gates = max_gates
        self.data_inference = data_inference
        self.use_oracle = use_oracle
        self.use_result_cache = use_result_cache
        #: key caches by canonical structural signatures (cross-module
        #: sharing) instead of identity signatures; governs the fallback
        #: cache/oracle built below — injected instances keep their own mode
        self.structural_keys = structural_keys
        self._oracle = oracle
        #: persistent memo for inference/simulation outcomes, keyed by
        #: sub-graph content signatures; injectable so an owner (the
        #: Smartly wrapper, or a whole Session) can share one instance
        #: across rounds, runs and modules
        self._result_cache = result_cache
        self._data_cache: Dict[_FactsKey, Optional[bool]] = {}
        self._sat_time = 0.0
        self._generation_open = False
        #: a cell edit can change the verdict of any control whose
        #: distance-k sub-graph contains it, i.e. of muxes up to k+1 hops
        #: away — the incremental engine's closure must reach that far
        self.dirty_radius = max(k, data_k) + 1

    def attach_result_cache(self, cache: ResultCache) -> None:
        """Share an externally owned result cache (Session injection point).

        Identity keys embed wire-identity bits and structural keys are
        canonical, so either way one cache instance serves any number of
        modules without collisions; the injected cache's own keying mode
        governs, which is how one session keeps every flow consistent.
        """
        self._result_cache = cache

    def execute(self, module: Module, result: PassResult) -> None:
        self._with_oracle(
            module, result, lambda: OptMuxtree.execute(self, module, result)
        )

    def execute_incremental(
        self, module: Module, result: PassResult, dirty: Optional[DirtySet]
    ) -> None:
        self._with_oracle(
            module,
            result,
            lambda: OptMuxtree.execute_incremental(self, module, result, dirty),
        )

    def _with_oracle(self, module: Module, result: PassResult, body) -> None:
        self._data_cache.clear()
        self._sat_time = 0.0
        self._generation_open = False
        oracle_base: Optional[Dict[str, int]] = None
        if self.use_result_cache:
            if self._result_cache is None:
                self._result_cache = ResultCache(
                    structural=self.structural_keys
                )
            rcache_base = dict(self._result_cache.counters)
        else:
            self._result_cache = None
            rcache_base = None
        if self.use_oracle:
            if self._oracle is None or self._oracle.module is not module:
                cache = self._result_cache
                self._oracle = SatOracle(
                    module,
                    structural_keys=self.structural_keys,
                    # one canonicalization per sub-graph state serves the
                    # resolve/rung keys and the verdict keys alike
                    struct_memo=(
                        cache.struct_memo if cache is not None else None
                    ),
                )
            oracle_base = self._oracle.stats.as_dict()
        else:
            self._oracle = None
        body()
        if self._result_cache is not None and rcache_base is not None:
            for key, value in self._result_cache.counters.items():
                delta = value - rcache_base.get(key, 0)
                if delta:
                    stat = f"rcache_{key}"
                    result.stats[stat] = result.stats.get(stat, 0) + delta
        if self._oracle is not None and oracle_base is not None:
            for key, value in self._oracle.stats.delta(oracle_base).items():
                if value:
                    # plain assignment: counters must not flag the module
                    # as changed (result.bump would)
                    stat = f"oracle_{key}"
                    result.stats[stat] = result.stats.get(stat, 0) + value
        if self._sat_time:
            result.stats["sat_wallclock_us"] = result.stats.get(
                "sat_wallclock_us", 0
            ) + int(self._sat_time * 1e6)

    # -- hook overrides -----------------------------------------------------------

    def _resolve_ctrl_value(self, bit, facts):
        direct = self._bit_value(bit, facts)
        if direct is not None:
            return direct
        if not facts:
            # no path knowledge yet: only constants could decide the control,
            # and opt_expr already folds constant cones
            return None
        cbit = self.sigmap.map_bit(bit)
        if cbit.is_const:
            return None  # x constant: undecidable by design
        return self._deep_resolve(cbit, facts, self.k, allow_solvers=True)

    def _resolve_data_value(self, bit, facts):
        direct = self._bit_value(bit, facts)
        if direct is not None:
            return direct
        if not self.data_inference or not facts:
            return None
        cbit = self.sigmap.map_bit(bit)
        if cbit.is_const:
            return None
        if self.index.comb_driver(cbit) is None:
            # a free source bit can only be decided by a direct fact
            # (handled above); skip the expensive sub-graph machinery
            return None
        key = (cbit, frozenset(facts.items()))
        if key in self._data_cache:
            return self._data_cache[key]
        value = self._deep_resolve(cbit, facts, self.data_k, allow_solvers=False)
        self._data_cache[key] = value
        return value

    # -- the inference / simulation / SAT ladder ---------------------------------------

    def _deep_resolve(
        self,
        target: SigBit,
        facts: Dict[SigBit, bool],
        k: int,
        allow_solvers: bool,
    ) -> Optional[bool]:
        subgraph = extract_subgraph(
            self.index, target, facts, k=k, max_gates=self.max_gates
        )
        cache = self._result_cache
        if cache is None or not cache.structural:
            # reference path: run the ladder directly
            value, _storable = self._resolve_ladder(
                subgraph, facts, allow_solvers, self.result.note
            )
            return value

        # structural path: whole resolutions memoize on the reduced
        # sub-graph — the target's and the fact bits' fanin cones, i.e.
        # exactly the content every ladder rung is a pure function of —
        # so a hit skips all three rungs (and their per-rung lookups) in
        # one step, and exported entries let warm-started suite workers
        # skip them too.
        key = cache.key_for(
            "resolve", subgraph,
            extra=(
                allow_solvers, self.sim_threshold, self.sat_threshold,
                self.max_conflicts, bool(facts),
            ),
            sigmap=self.sigmap,
        )
        hit, outcome = cache.lookup(key)
        if hit:
            value, notes = outcome
            for name, amount in notes:
                self.result.note(name, amount)
            return value
        notes: List[Tuple[str, int]] = []

        def note(name: str, amount: int = 1) -> None:
            notes.append((name, amount))
            self.result.note(name, amount)

        value, storable = self._resolve_ladder(
            subgraph, facts, allow_solvers, note
        )
        if storable:
            cache.store(key, (value, tuple(notes)))
        return value

    def _resolve_ladder(
        self,
        subgraph: SubGraph,
        facts: Dict[SigBit, bool],
        allow_solvers: bool,
        note: Callable[..., None],
    ) -> Tuple[Optional[bool], bool]:
        """The inference → simulation → SAT ladder over one sub-graph.

        Returns ``(value, storable)``; ``storable`` is False only for
        budget-exhausted SAT outcomes, which depend on the CNF variable
        order the solver saw and therefore must not be replayed for
        isomorphic sub-graphs.  Counters go through ``note`` so the
        structural resolve memo can record them for replay.
        """
        # observation counters use note(): queries posed do not modify the
        # netlist, and marking them as changes kept the fixpoint loop from
        # ever detecting convergence (every round re-ran to max_rounds)
        note("subgraph_gates_before", subgraph.gates_before)
        note("subgraph_gates_after", subgraph.gates_after)

        # 1. inference rules (Table I); the outcome is a pure function of
        # the sub-graph, so it memoizes in the content-signature cache
        contradiction, value = self._infer_outcome(subgraph)
        if contradiction:
            if facts:
                note("dead_paths")
                return False, True  # path never active: either branch sound
            return None, True
        if value is not None:
            note("ctrl_inferred" if allow_solvers else "data_inferred")
            return value, True
        if not allow_solvers:
            return None, True

        # 2. exhaustive simulation for small input counts (memoized too)
        if subgraph.num_inputs <= self.sim_threshold:
            note("sim_queries")
            outcome = self._sim_outcome(subgraph)
            if outcome == "dead":
                decided: Optional[bool] = None
                if facts:
                    note("dead_paths")
                    decided = False
            else:
                decided = outcome
            if decided is not None:
                note("ctrl_sim_decided")
            return decided, True

        # 3. SAT for medium input counts
        if subgraph.num_inputs <= self.sat_threshold:
            note("sat_queries")
            decided = self._sat_decide(subgraph, facts, note)
            if decided is not None:
                note("ctrl_sat_decided")
            return decided, decided is not None

        note("skipped_large")
        return None, True

    # -- memoized analysis outcomes -------------------------------------------------------

    def _infer_outcome(self, subgraph: SubGraph) -> Tuple[bool, Optional[bool]]:
        """``(contradiction, forced value)`` of the inference engine, memoized
        by the sub-graph's content signature (see :class:`ResultCache`)."""
        cache = self._result_cache
        key = None
        if cache is not None:
            key = cache.key_for("infer", subgraph, sigmap=self.sigmap)
            hit, outcome = cache.lookup(key)
            if hit:
                return outcome
        inference = infer(subgraph, self.index, subgraph.known)
        outcome = (
            inference.contradiction,
            None if inference.contradiction
            else inference.value_of(subgraph.target),
        )
        if key is not None:
            cache.store(key, outcome)
        return outcome

    def _sim_outcome(self, subgraph: SubGraph):
        """Exhaustive-simulation outcome (``"dead"`` | True | False | None),
        memoized like :meth:`_infer_outcome`."""
        cache = self._result_cache
        key = None
        if cache is not None:
            key = cache.key_for("sim", subgraph, sigmap=self.sigmap)
            hit, outcome = cache.lookup(key)
            if hit:
                return outcome
        outcome = self._simulate(subgraph)
        if key is not None:
            cache.store(key, outcome)
        return outcome

    # -- exhaustive simulation ------------------------------------------------------------

    def _simulate(self, subgraph: SubGraph):
        n = subgraph.num_inputs
        nvec = 1 << n
        mask = (1 << nvec) - 1  # one mask bit per simulated vector
        values: Dict[SigBit, int] = {}
        for i, bit in enumerate(subgraph.inputs):
            period = 1 << i
            pattern = 0
            block = (1 << period) - 1
            for start in range(period, nvec, 2 * period):
                pattern |= block << start
            values[bit] = pattern
        for bit, val in subgraph.known.items():
            values.setdefault(bit, mask if val else 0)

        sigmap = self.sigmap

        def bit_mask(bit: SigBit) -> int:
            cbit = sigmap.map_bit(bit)
            if cbit.is_const:
                return mask if cbit.state is State.S1 else 0
            return values.get(cbit, 0)

        from ..ir.cells import input_ports

        # internal known bits are *not* pinned: their computed masks feed the
        # path-consistency selector below (source knowns stay pinned because
        # nothing in the sub-graph drives them)
        for cell in subgraph.cells:  # already topologically ordered
            inputs = {
                p: [bit_mask(b) for b in cell.connections[p]]
                for p in input_ports(cell.type)
            }
            outputs = eval_cell_masks(cell, inputs, mask)
            for pname, masks in outputs.items():
                for bit, m in zip(cell.connections[pname], masks):
                    values[sigmap.map_bit(bit)] = m

        # restrict to vectors where the internal known facts hold
        selector = mask
        for bit, val in subgraph.known.items():
            computed = values.get(bit)
            if computed is None:
                continue
            selector &= computed if val else (~computed & mask)
        if selector == 0:
            return "dead"  # the path assumptions themselves are unsatisfiable
        target_mask = bit_mask(subgraph.target)
        if target_mask & selector == 0:
            return False
        if (~target_mask & mask) & selector == 0:
            return True
        return None

    # -- SAT decision --------------------------------------------------------------------------

    def _sat_decide(
        self,
        subgraph: SubGraph,
        facts: Dict[SigBit, bool],
        note: Callable[..., None],
    ) -> Optional[bool]:
        start = time.perf_counter()
        try:
            if self._oracle is not None:
                # decided two-polarity outcomes are semantic properties of
                # the structure, so with structural keys they memoize in
                # the (exportable) result cache — this is what lets
                # warm-started suite workers skip the SAT rung entirely
                cache = self._result_cache
                key = None
                if cache is not None and cache.structural:
                    key = cache.key_for(
                        "sat", subgraph, extra=(self.max_conflicts,),
                        sigmap=self.sigmap,
                    )
                    hit, outcome = cache.lookup(key)
                    if hit:
                        value, dead = outcome
                        if dead and facts:
                            note("dead_paths")
                        return value
                if not self._generation_open:
                    # the sigmap snapshot only exists once the base-class
                    # execute() has run, so the generation opens lazily
                    self._oracle.begin_pass(self.sigmap)
                    self._generation_open = True
                decision = self._oracle.decide(
                    subgraph, max_conflicts=self.max_conflicts
                )
                if decision.dead and facts:
                    note("dead_paths")
                if key is not None and decision.value is not None:
                    # budget-exhausted (None) outcomes stay uncached here:
                    # they are solver-path-dependent, not structural facts
                    cache.store(key, (decision.value, decision.dead))
                return decision.value
            return self._sat_decide_fresh(subgraph, facts, note)
        finally:
            self._sat_time += time.perf_counter() - start

    def _sat_decide_fresh(
        self,
        subgraph: SubGraph,
        facts: Dict[SigBit, bool],
        note: Callable[..., None],
    ) -> Optional[bool]:
        """Reference implementation: fresh solver + re-encoding per query.

        Kept as the ground truth the oracle path is differentially tested
        against (``tests/sat/test_oracle.py``) and benchmarked against
        (``benchmarks/bench_oracle.py``).
        """
        solver = Solver()
        encoder = CircuitEncoder(solver, self.sigmap)
        for cell in subgraph.cells:
            encoder.encode_cell(cell)
        assumptions = [
            encoder.lit(bit) if val else -encoder.lit(bit)
            for bit, val in subgraph.known.items()
        ]
        target_lit = encoder.lit(subgraph.target)

        can_be_true = solver.solve(
            assumptions + [target_lit], max_conflicts=self.max_conflicts
        )
        if can_be_true is False:
            # check for a dead path (both polarities impossible)
            can_be_false = solver.solve(
                assumptions + [-target_lit], max_conflicts=self.max_conflicts
            )
            if can_be_false is False and facts:
                note("dead_paths")
            return False
        can_be_false = solver.solve(
            assumptions + [-target_lit], max_conflicts=self.max_conflicts
        )
        if can_be_false is False:
            return True
        return None
