"""Text renderers for the paper's tables (measured vs published).

Each renderer consumes ``results[case][flow] -> record`` where the record
only needs ``original_area`` / ``optimized_area`` attributes — both the
legacy :class:`~repro.flow.pipeline.FlowResult` and the Session API's
:class:`~repro.flow.session.RunReport` (and a whole
:class:`~repro.flow.session.SuiteReport`, which is such a mapping) work.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..workloads.iwls import PAPER_TABLE2, PaperRow
from .pipeline import FlowResult


def _pct(value: float) -> str:
    return f"{100.0 * value:6.2f}%"


def render_table2(
    results: Mapping[str, Mapping[str, FlowResult]],
    paper: Optional[Mapping[str, PaperRow]] = None,
) -> str:
    """Table II: Original / Yosys / smaRTLy areas + reduction vs Yosys.

    ``results[case][optimizer]`` holds the flow measurements; optimizers
    ``yosys`` and ``smartly`` are required per case.
    """
    if paper is None:
        paper = PAPER_TABLE2
    lines = []
    header = (
        f"{'Case':<16}{'Original':>10}{'Yosys':>10}{'smaRTLy':>10}"
        f"{'Ratio':>9}{'Paper':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    total_orig = total_yosys = total_smartly = 0
    ratios: List[float] = []
    for case, per_opt in results.items():
        yosys = per_opt["yosys"]
        smartly = per_opt["smartly"]
        original = yosys.original_area
        ratio = (
            (yosys.optimized_area - smartly.optimized_area) / yosys.optimized_area
            if yosys.optimized_area
            else 0.0
        )
        ratios.append(ratio)
        total_orig += original
        total_yosys += yosys.optimized_area
        total_smartly += smartly.optimized_area
        paper_ratio = f"{paper[case].ratio_pct:8.2f}%" if case in paper else "     n/a"
        lines.append(
            f"{case:<16}{original:>10}{yosys.optimized_area:>10}"
            f"{smartly.optimized_area:>10}{_pct(ratio):>9}{paper_ratio:>9}"
        )
    count = max(1, len(results))
    avg_ratio = sum(ratios) / count
    paper_avg = 8.95
    lines.append("-" * len(header))
    lines.append(
        f"{'Average':<16}{total_orig // count:>10}{total_yosys // count:>10}"
        f"{total_smartly // count:>10}{_pct(avg_ratio):>9}{paper_avg:>8.2f}%"
    )
    return "\n".join(lines)


def render_table3(
    results: Mapping[str, Mapping[str, FlowResult]],
    paper: Optional[Mapping[str, PaperRow]] = None,
) -> str:
    """Table III: SAT-only / Rebuild-only / Full reductions vs Yosys."""
    if paper is None:
        paper = PAPER_TABLE2
    lines = []
    header = (
        f"{'Case':<16}{'SAT':>9}{'Rebuild':>9}{'Full':>9}"
        f"{'  |':>4}{'pSAT':>8}{'pReb':>8}{'pFull':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    sums = {"sat": 0.0, "rebuild": 0.0, "full": 0.0}
    for case, per_opt in results.items():
        yosys_area = per_opt["yosys"].optimized_area or 1
        reductions = {}
        for key, opt_name in (
            ("sat", "smartly-sat"),
            ("rebuild", "smartly-rebuild"),
            ("full", "smartly"),
        ):
            reductions[key] = (
                yosys_area - per_opt[opt_name].optimized_area
            ) / yosys_area
            sums[key] += reductions[key]
        row = paper.get(case)
        paper_cols = (
            f"{row.sat_pct:7.2f}%{row.rebuild_pct:7.2f}%{row.ratio_pct:7.2f}%"
            if row
            else "    n/a" * 3
        )
        lines.append(
            f"{case:<16}{_pct(reductions['sat']):>9}"
            f"{_pct(reductions['rebuild']):>9}{_pct(reductions['full']):>9}"
            f"{'  |':>4}{paper_cols}"
        )
    count = max(1, len(results))
    lines.append("-" * len(header))
    lines.append(
        f"{'Average':<16}{_pct(sums['sat'] / count):>9}"
        f"{_pct(sums['rebuild'] / count):>9}{_pct(sums['full'] / count):>9}"
        f"{'  |':>4}{3.57:7.2f}%{4.39:7.2f}%{8.95:7.2f}%"
    )
    return "\n".join(lines)


def render_industrial(results: Mapping[str, Mapping[str, FlowResult]]) -> str:
    """§IV-B summary: per-point and aggregate extra reduction vs Yosys."""
    lines = []
    header = (
        f"{'Point':<18}{'Original':>10}{'Yosys':>10}{'smaRTLy':>10}{'Extra':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    ratios: List[float] = []
    for case, per_opt in results.items():
        yosys = per_opt["yosys"]
        smartly = per_opt["smartly"]
        extra = (
            (yosys.optimized_area - smartly.optimized_area) / yosys.optimized_area
            if yosys.optimized_area
            else 0.0
        )
        ratios.append(extra)
        lines.append(
            f"{case:<18}{yosys.original_area:>10}{yosys.optimized_area:>10}"
            f"{smartly.optimized_area:>10}{_pct(extra):>9}"
        )
    lines.append("-" * len(header))
    avg = sum(ratios) / max(1, len(ratios))
    lines.append(
        f"{'Average':<18}{'':>10}{'':>10}{'':>10}{_pct(avg):>9}"
        f"   (paper: 47.20%)"
    )
    return "\n".join(lines)
