"""Design-space-exploration sweep runner (the xeda ``flow_runner`` idiom).

A *sweep* expands a ``(flow × k × sim_threshold × workload)`` grid into
one parallel :meth:`~repro.flow.session.Session.run_suite` call — so all
grid points share each workload's single cached baseline AIG, the
PR 5 warm-start snapshot, and (via ``store_path``) the PR 7 on-disk
cache — and renders the outcome as a comparative JSON + Markdown report:
optimized area per grid point, the best flow per workload, and totals.

Grid semantics: the smaRTLy-family presets (``smartly``,
``smartly-sat``, ``smartly-rebuild``) get one grid point per
``(k, sim_threshold)`` pair, labelled ``smartly[k=6,sim=0]``; flows the
knobs cannot affect (``none``, ``yosys``, plain flow scripts) contribute
exactly one point each.  Every point is a renamed
:class:`~repro.flow.spec.FlowSpec` preset, so results stay keyed by a
stable, human-readable label.

``PRESET_WORKLOADS`` names five deterministic IWLS workload models
(:func:`repro.workloads.build_case`) used by the CLI default grid, the
committed Yosys-JSON fixture corpus, and the native-vs-ingested area
parity acceptance test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..workloads import CASE_NAMES, build_case
from .session import RunReport, Session, SuiteReport
from .spec import FlowSpec, PRESETS, resolve_flow

#: preset names whose pipelines contain a tunable smaRTLy stage
SMARTLY_PRESETS = ("smartly-sat", "smartly-rebuild", "smartly")

#: the five deterministic preset workloads (first five Table-2 cases)
PRESET_WORKLOAD_NAMES: Tuple[str, ...] = tuple(CASE_NAMES[:5])


def preset_workloads(
    names: Optional[Sequence[str]] = None, width: int = 8
) -> Dict[str, Callable[[], Any]]:
    """Named deterministic workload factories for sweeps and fixtures."""
    selected = tuple(names) if names is not None else PRESET_WORKLOAD_NAMES
    unknown = [name for name in selected if name not in CASE_NAMES]
    if unknown:
        raise ValueError(
            f"unknown workloads {unknown}; choose from {list(CASE_NAMES)}"
        )
    return {name: partial(build_case, name, width=width) for name in selected}


PRESET_WORKLOADS: Dict[str, Callable[[], Any]] = preset_workloads()


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a labelled flow variant plus the knobs it encodes."""

    label: str
    flow: str
    spec: FlowSpec
    k: Optional[int] = None
    sim_threshold: Optional[int] = None

    def params(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"flow": self.flow}
        if self.k is not None:
            payload["k"] = self.k
        if self.sim_threshold is not None:
            payload["sim_threshold"] = self.sim_threshold
        return payload


def expand_grid(
    flows: Sequence[Union[str, FlowSpec]],
    ks: Sequence[int] = (),
    sim_thresholds: Sequence[int] = (),
) -> List[SweepPoint]:
    """Expand flow names × knob values into labelled :class:`SweepPoint`\\ s.

    Duplicate labels (e.g. the same preset listed twice) are rejected up
    front — suite results are keyed by label.
    """
    points: List[SweepPoint] = []
    for flow in flows:
        name = flow if isinstance(flow, str) else flow.label
        if isinstance(flow, str) and flow in SMARTLY_PRESETS and (
            ks or sim_thresholds
        ):
            for k in ks or (None,):
                for threshold in sim_thresholds or (None,):
                    overrides: Dict[str, Any] = {}
                    tags: List[str] = []
                    if k is not None:
                        overrides["k"] = k
                        tags.append(f"k={k}")
                    if threshold is not None:
                        overrides["sim_threshold"] = threshold
                        tags.append(f"sim={threshold}")
                    base = FlowSpec.preset(flow, **overrides)
                    label = f"{flow}[{','.join(tags)}]"
                    points.append(SweepPoint(
                        label=label,
                        flow=flow,
                        spec=FlowSpec(
                            base.steps,
                            fixpoint=base.fixpoint,
                            max_rounds=base.max_rounds,
                            name=label,
                        ),
                        k=k,
                        sim_threshold=threshold,
                    ))
        else:
            # knob-free flows (none/yosys/scripts/specs): one point each
            spec = resolve_flow(flow)
            points.append(SweepPoint(label=spec.label, flow=name, spec=spec))
    labels = [point.label for point in points]
    duplicates = sorted({label for label in labels if labels.count(label) > 1})
    if duplicates:
        raise ValueError(f"duplicate grid labels {duplicates}")
    return points


@dataclass(frozen=True)
class SweepReport:
    """Results of one sweep: the grid, per-(workload × point) reports, and
    comparative aggregates (best point per workload, per-point totals)."""

    points: List[SweepPoint]
    suite: SuiteReport
    runtime_s: float = 0.0

    @property
    def workloads(self) -> List[str]:
        return list(self.suite.results)

    def report(self, workload: str, label: str) -> RunReport:
        return self.suite.results[workload][label]

    def best_labels(self) -> Dict[str, str]:
        """Per workload: the grid label with the smallest optimized area
        (ties break toward the earlier grid point)."""
        best: Dict[str, str] = {}
        for workload, per_label in self.suite.results.items():
            best[workload] = min(
                (point.label for point in self.points),
                key=lambda label: per_label[label].optimized_area,
            )
        return best

    def totals(self) -> Dict[str, Dict[str, Any]]:
        """Per grid label: summed areas and reduction over all workloads."""
        out: Dict[str, Dict[str, Any]] = {}
        for point in self.points:
            original = sum(
                per[point.label].original_area
                for per in self.suite.results.values()
            )
            optimized = sum(
                per[point.label].optimized_area
                for per in self.suite.results.values()
            )
            out[point.label] = {
                "original_area": original,
                "optimized_area": optimized,
                "reduction": 1.0 - optimized / original if original else 0.0,
                "runtime_s": sum(
                    per[point.label].runtime_s
                    for per in self.suite.results.values()
                ),
            }
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "grid": [
                {"label": point.label, **point.params(),
                 "script": str(point.spec)}
                for point in self.points
            ],
            "workloads": self.workloads,
            "results": {
                workload: {
                    label: report.to_dict()
                    for label, report in per_label.items()
                }
                for workload, per_label in self.suite.results.items()
            },
            "totals": self.totals(),
            "best": self.best_labels(),
            "runtime_s": self.runtime_s,
            "cache_stats": dict(self.suite.cache_stats),
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    def to_markdown(self) -> str:
        """The comparative report: one row per workload, one column per
        grid point (optimized area, best point bolded), plus totals."""
        labels = [point.label for point in self.points]
        best = self.best_labels()
        lines = ["# Design-space sweep", ""]
        lines.append(
            f"{len(self.workloads)} workload(s) x {len(labels)} grid "
            f"point(s), {self.runtime_s:.2f}s wall-clock"
        )
        lines.append("")
        lines.append("| workload | original | " + " | ".join(labels) + " |")
        lines.append("|---" * (len(labels) + 2) + "|")
        for workload in self.workloads:
            per = self.suite.results[workload]
            original = max(r.original_area for r in per.values())
            cells = []
            for label in labels:
                report = per[label]
                cell = f"{report.optimized_area}"
                if label == best[workload]:
                    cell = f"**{cell}**"
                cells.append(cell)
            lines.append(
                f"| {workload} | {original} | " + " | ".join(cells) + " |"
            )
        totals = self.totals()
        total_cells = [
            f"{totals[label]['optimized_area']} "
            f"({100 * totals[label]['reduction']:.1f}%)"
            for label in labels
        ]
        total_original = sum(
            max(r.original_area for r in per.values())
            for per in self.suite.results.values()
        )
        lines.append(
            f"| **total** | {total_original} | " + " | ".join(total_cells) + " |"
        )
        lines.append("")
        lines.append("Best grid point per workload:")
        for workload in self.workloads:
            lines.append(f"- {workload}: `{best[workload]}`")
        return "\n".join(lines) + "\n"


def run_sweep(
    workloads: Union[Mapping[str, Any], Sequence[str], None] = None,
    flows: Sequence[Union[str, FlowSpec]] = ("yosys", "smartly"),
    ks: Sequence[int] = (),
    sim_thresholds: Sequence[int] = (),
    *,
    width: int = 8,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    check: bool = False,
    warm_start: bool = True,
    store_path: Optional[str] = None,
    session: Optional[Session] = None,
) -> SweepReport:
    """Run the full DSE grid as one shared-baseline parallel suite.

    ``workloads`` is a ``{name: module-or-factory}`` mapping (the
    :meth:`~repro.flow.session.Session.run_suite` contract), a sequence
    of preset workload names, or None for :data:`PRESET_WORKLOADS`.
    When ``session`` is given it is reused (and left open — its caches
    keep the sweep's results); otherwise a private session is created,
    optionally backed by the persistent ``store_path`` cache store.
    """
    if workloads is None:
        cases: Mapping[str, Any] = preset_workloads(width=width)
    elif isinstance(workloads, Mapping):
        cases = workloads
    else:
        cases = preset_workloads(workloads, width=width)
    if not cases:
        raise ValueError("no workloads selected")

    points = expand_grid(flows, ks, sim_thresholds)
    owned = session is None
    active = session if session is not None else Session(store_path=store_path)
    try:
        suite = active.run_suite(
            cases,
            [point.spec for point in points],
            max_workers=max_workers,
            check=check,
            executor=executor,
            warm_start=warm_start,
        )
    finally:
        if owned:
            active.close()  # persists the store delta even on failure
    return SweepReport(points=points, suite=suite, runtime_s=suite.runtime_s)


__all__ = [
    "PRESET_WORKLOADS",
    "PRESET_WORKLOAD_NAMES",
    "SMARTLY_PRESETS",
    "SweepPoint",
    "SweepReport",
    "expand_grid",
    "preset_workloads",
    "run_sweep",
]
