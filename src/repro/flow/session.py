"""The Session API: run declarative flows over a design, get reports.

A :class:`Session` owns a :class:`~repro.ir.design.Design` (not a lone
module), runs :class:`~repro.flow.spec.FlowSpec` pipelines over all its
modules or a selected one, caches the pre-optimization AIG baseline per
module, and emits structured progress on a shared
:class:`~repro.events.EventBus`.  Every run returns a JSON-serializable
:class:`RunReport`; suites of (case × flow) jobs run in parallel through
:meth:`Session.run_suite` and come back as a :class:`SuiteReport` that the
table renderers in :mod:`repro.flow.reports` consume directly.

Quickstart::

    from repro.api import Session

    session = Session.from_verilog(open("design.v").read())
    report = session.run("opt_expr; smartly k=6; opt_clean", check=True)
    print(report.to_json())
"""

from __future__ import annotations

import json
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import asdict, dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from ..aig.aigmap import aig_map
from ..aig.stats import AigStats, aig_stats
from ..core.smartly import SmartlyOptions
from ..equiv.cec import check_equivalence
from ..events import EventBus, Observer
from ..ir.design import Design
from ..ir.module import Module
from ..opt.pass_base import PassManager
from .spec import FlowSpec, resolve_flow

#: a suite case: a ready module or a zero-argument factory producing one
CaseSource = Union[Module, Callable[[], Module]]


def _aggregate_oracle_stats(pass_stats: Mapping[str, int]) -> Dict[str, int]:
    """Collapse ``<pass path>.oracle_<counter>`` entries by counter name."""
    totals: Dict[str, int] = {}
    for key, value in pass_stats.items():
        tail = key.rsplit(".", 1)[-1]
        if tail.startswith("oracle_"):
            name = tail[len("oracle_"):]
            totals[name] = totals.get(name, 0) + value
    return totals


class EquivalenceError(AssertionError):
    """An optimized module is not equivalent to its pre-flow snapshot."""


@dataclass(frozen=True)
class PassRecord:
    """One pass invocation inside a flow run (JSON-serializable)."""

    pass_name: str
    round: int
    changed: bool
    stats: Dict[str, int]
    runtime_s: float


@dataclass(frozen=True)
class RunReport:
    """Everything measured about one (module, flow) run.

    Replaces the ad-hoc dict / :class:`~repro.flow.pipeline.FlowResult`
    plumbing: the report is a frozen, JSON-serializable record carrying
    per-pass statistics, areas, runtimes and the equivalence status.
    """

    case_name: str
    flow: str
    flow_script: str
    original_area: int
    optimized_area: int
    stats: AigStats
    passes: List[PassRecord] = field(default_factory=list)
    pass_stats: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    runtime_s: float = 0.0
    equivalence_checked: bool = False
    #: aggregated SAT-oracle counters (queries, cache_hits, conflicts, ...)
    #: from every ``oracle_*`` pass stat; empty when no oracle-backed pass
    #: ran (see :class:`repro.sat.oracle.OracleStats`)
    oracle_stats: Dict[str, int] = field(default_factory=dict)
    #: which pass engine ran the flow: ``"incremental"`` (dirty-set
    #: worklists over the shared live NetIndex) or ``"eager"`` (historic
    #: whole-module sweeps; the differential-testing escape hatch)
    engine: str = "incremental"
    #: False when the fixpoint loop exhausted ``max_rounds`` while passes
    #: were still changing the module — the result is valid but NOT a
    #: fixpoint, which used to be silently indistinguishable
    converged: bool = True
    #: dirty-set engine counters (full_rounds, incremental_rounds,
    #: dirty_seed_cells, dirty_seed_bits)
    dirty_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def optimizer(self) -> str:
        """Legacy alias: the flow's label."""
        return self.flow

    @property
    def reduction_vs_original(self) -> float:
        if self.original_area == 0:
            return 0.0
        return 1.0 - self.optimized_area / self.original_area

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)


@dataclass(frozen=True)
class SuiteReport(Mapping):
    """Results of a suite run: ``report[case][flow_label] -> RunReport``.

    Implements the mapping protocol the table renderers expect, so
    ``render_table2(suite_report)`` works unchanged.
    """

    results: Dict[str, Dict[str, RunReport]]
    runtime_s: float = 0.0

    def __getitem__(self, case: str) -> Dict[str, RunReport]:
        return self.results[case]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def reports(self) -> Iterator[RunReport]:
        for per_flow in self.results.values():
            yield from per_flow.values()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runtime_s": self.runtime_s,
            "results": {
                case: {flow: report.to_dict() for flow, report in per.items()}
                for case, per in self.results.items()
            },
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)


class Session:
    """Owns a design, a tuning-options object, and an event channel.

    The session caches each module's pre-optimization AIG baseline the
    first time it is needed (``aig_map`` never mutates the module, so the
    baseline is computed directly on the working copy — no clone).
    Flows then mutate the session's modules in place, Yosys-style; use
    :func:`repro.flow.pipeline.run_flow` or clone before constructing the
    session if the caller's module must stay pristine.

    ``options`` seeds the *presets* (``smartly``/``smartly-sat``/…), which
    take their tuning from one :class:`SmartlyOptions` object.  Explicit
    flow scripts and :class:`FlowSpec` objects are authoritative as
    written — a script's ``smartly`` statement uses the paper defaults
    plus whatever ``key=value`` options the statement itself carries.
    """

    def __init__(
        self,
        design: Optional[Union[Design, Module]] = None,
        *,
        options: Optional[SmartlyOptions] = None,
        events: Optional[EventBus] = None,
        engine: str = "incremental",
    ):
        if engine not in ("incremental", "eager"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'incremental' or 'eager'"
            )
        if design is None:
            design = Design()
        elif isinstance(design, Module):
            design = Design(design)
        self.design = design
        self.options = options
        self.engine = engine
        self.events = events if events is not None else EventBus()
        self._baselines: Dict[str, int] = {}

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_verilog(cls, source: str, top: Optional[str] = None,
                     **kwargs: Any) -> "Session":
        """Compile Verilog source text into a fresh session."""
        from ..frontend import compile_verilog

        return cls(compile_verilog(source, top=top), **kwargs)

    # -- observation -----------------------------------------------------------

    def subscribe(self, observer: Observer) -> Observer:
        """Attach a structured-event observer (see :mod:`repro.events`)."""
        return self.events.subscribe(observer)

    # -- baselines -------------------------------------------------------------

    def baseline_area(self, module: Optional[str] = None) -> int:
        """Pre-optimization AIG area, cached per module name."""
        mod = self._module(module)
        if mod.name not in self._baselines:
            self._baselines[mod.name] = aig_map(mod).num_ands
        return self._baselines[mod.name]

    # -- running flows ---------------------------------------------------------

    def _module(self, name: Optional[str]) -> Module:
        if name is None:
            return self.design.top
        if name not in self.design:
            raise KeyError(f"no module named {name!r}")
        return self.design[name]

    def run(
        self,
        flow: Union[str, FlowSpec] = "smartly",
        *,
        module: Optional[str] = None,
        check: bool = False,
        engine: Optional[str] = None,
    ) -> RunReport:
        """Run one flow over one module (the top by default).

        ``flow`` is a preset name (``none``/``yosys``/``smartly-sat``/
        ``smartly-rebuild``/``smartly``), a flow-script string, or a
        :class:`FlowSpec`.  With ``check=True`` the optimized module is
        SAT-proven equivalent to its pre-flow state (raises
        :class:`EquivalenceError` otherwise).  ``engine`` overrides the
        session engine for this run (``"incremental"`` or ``"eager"``).
        """
        engine = engine if engine is not None else self.engine
        if engine not in ("incremental", "eager"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'incremental' or 'eager'"
            )
        spec = resolve_flow(flow, options=self.options)
        mod = self._module(module)
        original_area = self.baseline_area(mod.name)
        golden = mod.clone() if (check and spec.steps) else None
        self.events.emit("flow_started", case=mod.name, flow=spec.label)
        manager = PassManager(
            spec.build(),
            events=self.events,
            name=spec.label,
            incremental=(engine == "incremental"),
        )
        start = time.perf_counter()
        manager.run(mod, fixpoint=spec.fixpoint, max_rounds=spec.max_rounds)
        runtime = time.perf_counter() - start
        stats = aig_stats(aig_map(mod))
        checked = False
        if golden is not None:
            result = check_equivalence(golden, mod)
            if not result.equivalent:
                raise EquivalenceError(
                    f"{spec.label} broke {mod.name!r}: "
                    f"counterexample {result.counterexample}"
                )
            checked = True
        self.events.emit(
            "flow_finished",
            case=mod.name,
            flow=spec.label,
            original_area=original_area,
            optimized_area=stats.num_ands,
            runtime_s=runtime,
        )
        pass_stats = manager.total_stats()
        return RunReport(
            case_name=mod.name,
            flow=spec.label,
            flow_script=str(spec),
            original_area=original_area,
            optimized_area=stats.num_ands,
            stats=stats,
            passes=[
                PassRecord(
                    pass_name=res.pass_name,
                    round=idx // max(1, len(spec.steps)),
                    changed=res.changed,
                    stats=dict(res.stats),
                    runtime_s=res.runtime_s,
                )
                for idx, res in enumerate(manager.history)
            ],
            pass_stats=pass_stats,
            rounds=manager.rounds_run,
            runtime_s=runtime,
            equivalence_checked=checked,
            oracle_stats=_aggregate_oracle_stats(pass_stats),
            engine=engine,
            converged=manager.converged,
            dirty_stats=dict(manager.dirty_stats),
        )

    def run_all(
        self,
        flow: Union[str, FlowSpec] = "smartly",
        *,
        check: bool = False,
    ) -> Dict[str, RunReport]:
        """Run one flow over every module in the design."""
        return {
            name: self.run(flow, module=name, check=check)
            for name in list(self.design.modules)
        }

    # -- suites ----------------------------------------------------------------

    def run_suite(
        self,
        cases: Mapping[str, CaseSource],
        flows: Sequence[Union[str, FlowSpec]] = ("smartly",),
        *,
        max_workers: Optional[int] = None,
        check: bool = False,
        executor: str = "thread",
    ) -> SuiteReport:
        """Run every (case × flow) job, in parallel, with structured progress.

        ``cases`` maps case names to modules **or** zero-argument factories
        (factories are invoked once per flow inside the worker, so expensive
        circuit construction also parallelizes); :func:`suite_cases` builds
        such a mapping from names + a builder.  Module values are cloned
        per job; the inputs are never mutated.  Progress is emitted as
        ``suite_started`` / ``case_started`` / ``case_finished`` /
        ``suite_finished`` events on the session's bus rather than printed.

        ``executor`` selects the worker pool:

        * ``"thread"`` — shared-memory workers.  Simple, but CPython's GIL
          means pure-Python optimization work barely overlaps; treat
          ``max_workers`` as job scheduling, not a speedup knob.
        * ``"process"`` — a ``ProcessPoolExecutor``.  Modules and specs are
          pickled into worker processes and the JSON-serializable
          :class:`RunReport` is pickled back, so CPU-bound suites scale
          with cores.  Factories must be picklable (module-level functions
          or :func:`functools.partial` — what :func:`suite_cases` builds);
          per-pass events from inside workers are not forwarded, only the
          ``case_started``/``case_finished`` milestones.
        """
        specs = [resolve_flow(flow, options=self.options) for flow in flows]
        labels = [spec.label for spec in specs]
        duplicates = {label for label in labels if labels.count(label) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate flow labels {sorted(duplicates)}: results are "
                f"keyed by label, so each flow needs a distinct name "
                f"(FlowSpec(..., name=...))"
            )
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; choose 'thread' or 'process'"
            )
        jobs = [
            (case_name, source, spec)
            for case_name, source in cases.items()
            for spec in specs
        ]
        self.events.emit(
            "suite_started",
            cases=list(cases),
            flows=[spec.label for spec in specs],
            jobs=len(jobs),
            max_workers=max_workers,
            executor=executor,
        )
        start = time.perf_counter()

        def run_one(case_name: str, source: CaseSource,
                    spec: FlowSpec) -> RunReport:
            module = source() if callable(source) else source.clone()
            self.events.emit("case_started", case=case_name, flow=spec.label)
            sub = Session(module, options=self.options, events=self.events,
                          engine=self.engine)
            report = sub.run(spec, check=check)
            self.events.emit(
                "case_finished",
                case=case_name,
                flow=spec.label,
                original_area=report.original_area,
                optimized_area=report.optimized_area,
                runtime_s=report.runtime_s,
            )
            return report

        results: Dict[str, Dict[str, RunReport]] = {name: {} for name in cases}
        if executor == "process":
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(
                        _suite_process_job, case_name, source, spec,
                        self.options, check, self.engine,
                    ): (case_name, spec.label)
                    for case_name, source, spec in jobs
                }
                for future in as_completed(futures):
                    case_name, flow_label = futures[future]
                    report = future.result()
                    results[case_name][flow_label] = report
                    # workers cannot stream events across the process
                    # boundary, so started/finished are emitted together at
                    # completion — adjacent pairs, never a misleading
                    # all-started-at-submit burst
                    self.events.emit(
                        "case_started", case=case_name, flow=flow_label
                    )
                    self.events.emit(
                        "case_finished",
                        case=case_name,
                        flow=flow_label,
                        original_area=report.original_area,
                        optimized_area=report.optimized_area,
                        runtime_s=report.runtime_s,
                    )
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(run_one, *job): (job[0], job[2].label)
                    for job in jobs
                }
                for future in as_completed(futures):
                    case_name, flow_label = futures[future]
                    results[case_name][flow_label] = future.result()
        runtime = time.perf_counter() - start
        self.events.emit("suite_finished", jobs=len(jobs), runtime_s=runtime)
        return SuiteReport(results=results, runtime_s=runtime)

    def __repr__(self) -> str:
        return f"Session({self.design!r})"


def _suite_process_job(
    case_name: str,
    source: CaseSource,
    spec: FlowSpec,
    options: Optional[SmartlyOptions],
    check: bool,
    engine: str,
) -> RunReport:
    """Top-level worker for ``executor="process"`` (must be picklable).

    A pickled Module *is* already a private copy, so no extra clone is
    needed; factories build fresh modules inside the worker.
    """
    module = source() if callable(source) else source
    session = Session(module, options=options, engine=engine)
    return session.run(spec, check=check)


def suite_cases(
    names: Sequence[str], build: Callable[[str], Module]
) -> Dict[str, Callable[[], Module]]:
    """Build a :meth:`Session.run_suite` case mapping from names + builder.

    Each factory calls ``build(name)`` inside the worker, so construction
    parallelizes and no late-binding lambda pitfalls leak to callers.
    ``functools.partial`` (not a lambda) keeps the factories picklable for
    ``run_suite(..., executor="process")``::

        Session().run_suite(suite_cases(CASE_NAMES, build_case), flows)
    """
    import functools

    return {name: functools.partial(build, name) for name in names}


__all__ = [
    "CaseSource",
    "EquivalenceError",
    "PassRecord",
    "RunReport",
    "Session",
    "SuiteReport",
    "suite_cases",
]
