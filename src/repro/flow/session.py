"""The Session API: run declarative flows over a design, get reports.

A :class:`Session` owns a :class:`~repro.ir.design.Design` (not a lone
module), runs :class:`~repro.flow.spec.FlowSpec` pipelines over all its
modules or a selected one, caches the pre-optimization AIG baseline per
module, and emits structured progress on a shared
:class:`~repro.events.EventBus`.  Every run returns a JSON-serializable
:class:`RunReport`; suites of (case × flow) jobs run in parallel through
:meth:`Session.run_suite` and come back as a :class:`SuiteReport` that the
table renderers in :mod:`repro.flow.reports` consume directly.

Quickstart::

    from pathlib import Path

    from repro.api import Session

    session = Session.from_verilog(Path("design.v").read_text())
    report = session.run("opt_expr; smartly k=6; opt_clean", check=True)
    print(report.to_json())
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..aig.aigmap import aig_map
from ..aig.stats import AigStats, aig_stats
from ..core.cache import ResultCache
from ..core.smartly import SmartlyOptions
from ..core.store import DEFAULT_KEEP_GENERATIONS, CacheStore
from ..equiv.cec import check_equivalence
from ..events import EventBus, Observer
from ..ir import design as design_mod
from ..ir import module as ir_module
from ..ir.cells import output_ports
from ..ir.design import Design, DesignEdit
from ..ir.module import Module, ModuleEdit
from ..ir.struct_hash import module_signature
from ..opt.pass_base import (
    DirtySet,
    Pass,
    PassManager,
    PassResult,
    _touch_recorder,
)
from .spec import FlowSpec, resolve_flow

#: a suite case: a ready module or a zero-argument factory producing one
CaseSource = Union[Module, Callable[[], Module]]


def _aggregate_oracle_stats(pass_stats: Mapping[str, int]) -> Dict[str, int]:
    """Collapse ``<pass path>.oracle_<counter>`` entries by counter name."""
    totals: Dict[str, int] = {}
    for key, value in pass_stats.items():
        tail = key.rsplit(".", 1)[-1]
        if tail.startswith("oracle_"):
            name = tail[len("oracle_"):]
            totals[name] = totals.get(name, 0) + value
    return totals


def _pending_recorder(result: PassResult) -> Callable[[ModuleEdit], None]:
    """Conservative touch recorder for *between-run* user edits.

    The pass framework's recorder deliberately keeps removed-cell outputs
    and alias sides out of the fanout-walked frontier because the running
    pass reports the affected readers exactly
    (:meth:`~repro.opt.pass_base.PassResult.touch_readers`).  Between
    runs there is no pass to do that, so a user edit like ``remove_cell``
    + ``connect`` (a manual bypass) would under-dirty the removed net's
    readers and a seeded re-run would miss opportunities a full run
    finds.  This variant adds those output-side bits to the frontier —
    over-dirtying a few sibling readers on rare, small edit sets instead
    of under-dirtying correctness away.
    """
    base = _touch_recorder(result)

    def record(edit: ModuleEdit) -> None:
        base(edit)
        if edit.kind == ir_module.CELL_REMOVED and edit.ports:
            outs = set(output_ports(edit.cell.type))
            for pname, spec in edit.ports.items():
                if pname in outs:
                    for bit in spec:
                        if not bit.is_const:
                            result.touched_bits.add(bit)
        elif edit.kind == ir_module.CONNECTED:
            for spec in (edit.lhs, edit.rhs):
                for bit in spec:
                    if not bit.is_const:
                        result.touched_bits.add(bit)
        elif edit.kind in (ir_module.INSTANCE_ADDED, ir_module.INSTANCE_REMOVED):
            # a (dis)appearing boundary changes what is observable: dirty
            # every parent-side binding bit so cones feeding (or fed by)
            # the instance are re-examined
            for bit in edit.instance.binding_bits():
                result.touched_bits.add(bit)

    return record


class EquivalenceError(AssertionError):
    """An optimized module is not equivalent to its pre-flow snapshot."""


@dataclass(frozen=True)
class PassRecord:
    """One pass invocation inside a flow run (JSON-serializable)."""

    pass_name: str
    round: int
    changed: bool
    stats: Dict[str, int]
    runtime_s: float


@dataclass(frozen=True)
class RunReport:
    """Everything measured about one (module, flow) run.

    Replaces the ad-hoc dict / :class:`~repro.flow.pipeline.FlowResult`
    plumbing: the report is a frozen, JSON-serializable record carrying
    per-pass statistics, areas, runtimes and the equivalence status.
    """

    case_name: str
    flow: str
    flow_script: str
    original_area: int
    optimized_area: int
    stats: AigStats
    passes: List[PassRecord] = field(default_factory=list)
    pass_stats: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    runtime_s: float = 0.0
    equivalence_checked: bool = False
    #: aggregated SAT-oracle counters (queries, cache_hits, conflicts, ...)
    #: from every ``oracle_*`` pass stat; empty when no oracle-backed pass
    #: ran (see :class:`repro.sat.oracle.OracleStats`)
    oracle_stats: Dict[str, int] = field(default_factory=dict)
    #: which pass engine ran the flow: ``"incremental"`` (dirty-set
    #: worklists over the shared live NetIndex) or ``"eager"`` (historic
    #: whole-module sweeps; the differential-testing escape hatch)
    engine: str = "incremental"
    #: False when the fixpoint loop exhausted ``max_rounds`` while passes
    #: were still changing the module — the result is valid but NOT a
    #: fixpoint, which used to be silently indistinguishable
    converged: bool = True
    #: dirty-set engine counters (full_rounds, incremental_rounds,
    #: dirty_seed_cells, dirty_seed_bits, seeded_runs, modules_skipped)
    dirty_stats: Dict[str, int] = field(default_factory=dict)
    #: what the design-scope incremental engine did with this run:
    #: ``"none"`` (ordinary full run), ``"seeded"`` (the first round was
    #: seeded with only the edits made since this flow last converged on
    #: the module), or ``"skipped"`` (the module's content revision was
    #: unchanged, so every pass was skipped and the previous result
    #: returned)
    design_cache: str = "none"
    #: session-lifetime cache totals at the end of this run (not per-run
    #: deltas — those are the ``rcache_*``/``oracle_*`` pass stats): the
    #: session :class:`~repro.core.cache.ResultCache` counters (per-kind
    #: hits/misses, per-entry eviction counts, warm-start merges) plus
    #: its population as ``entries``, and the accumulated SAT-oracle
    #: counters of every run so far as ``oracle_*`` entries
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def optimizer(self) -> str:
        """Legacy alias: the flow's label."""
        return self.flow

    @property
    def reduction_vs_original(self) -> float:
        if self.original_area == 0:
            return 0.0
        return 1.0 - self.optimized_area / self.original_area

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)


@dataclass(frozen=True)
class SuiteReport(Mapping):
    """Results of a suite run: ``report[case][flow_label] -> RunReport``.

    Implements the mapping protocol the table renderers expect, so
    ``render_table2(suite_report)`` works unchanged.
    """

    results: Dict[str, Dict[str, RunReport]]
    runtime_s: float = 0.0
    #: suite-level cache totals: the per-kind hit/miss/eviction/merge
    #: counters summed over every job's (private, snapshot-seeded) cache,
    #: plus ``entries`` — the owning session's cache population after all
    #: worker deltas merged back (see :meth:`Session.run_suite`)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, case: str) -> Dict[str, RunReport]:
        return self.results[case]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def reports(self) -> Iterator[RunReport]:
        for per_flow in self.results.values():
            yield from per_flow.values()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runtime_s": self.runtime_s,
            "cache_stats": dict(self.cache_stats),
            "results": {
                case: {flow: report.to_dict() for flow, report in per.items()}
                for case, per in self.results.items()
            },
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)


@dataclass(frozen=True)
class HierarchyReport:
    """Results of :meth:`Session.run_hierarchy` (JSON-serializable).

    ``reports`` maps every module reachable from ``top`` to its
    :class:`RunReport`; modules replayed from an isomorphic representative
    carry ``design_cache="replayed"`` and appear in ``replayed`` with the
    name of the module whose optimized netlist they received.  Weighted
    totals multiply each module's area by its dynamic instance count, so
    ``total_area`` is directly comparable to optimizing the flattened
    design.
    """

    top: str
    flow: str
    #: bottom-up elaboration order the modules were optimized in
    order: Tuple[str, ...]
    reports: Dict[str, RunReport]
    #: replayed module -> representative whose optimized netlist it got
    replayed: Dict[str, str]
    #: replay candidates that fell back to a full run, with the reason
    #: (``"ports"``/``"children"``/``"cec"`` — see ``run_hierarchy``)
    replay_fallbacks: Dict[str, str]
    #: module -> dynamic instance count under ``top`` (the top counts 1)
    instance_counts: Dict[str, int]
    #: sum of count * pre-optimization area over reachable modules
    original_total_area: int
    #: sum of count * optimized area over reachable modules
    total_area: int
    runtime_s: float = 0.0

    @property
    def reduction_vs_original(self) -> float:
        if self.original_total_area == 0:
            return 0.0
        return 1.0 - self.total_area / self.original_total_area

    def to_dict(self) -> Dict[str, Any]:
        return {
            "top": self.top,
            "flow": self.flow,
            "order": list(self.order),
            "reports": {
                name: report.to_dict()
                for name, report in self.reports.items()
            },
            "replayed": dict(self.replayed),
            "replay_fallbacks": dict(self.replay_fallbacks),
            "instance_counts": dict(self.instance_counts),
            "original_total_area": self.original_total_area,
            "total_area": self.total_area,
            "runtime_s": self.runtime_s,
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)


@dataclass
class _FlowState:
    """Per-(module, flow) design-incremental state: the pass objects whose
    internal caches (oracle contexts, merge tables, result-cache handles)
    match the module, the design revision at which the flow last converged,
    and the report it produced."""

    passes: List[Pass]
    revision: int
    report: RunReport


@dataclass
class _PendingEdits:
    """Edits made to one module since its last run (any flow), accumulated
    from the design edit channel while no flow is running on it.

    ``start_revision`` anchors the window: a stored :class:`_FlowState`
    whose revision equals it is exactly one edit-set behind the module, so
    its pass state plus this dirty set seed a correct incremental re-run.
    ``compactions`` snapshots the live index's union-find compaction
    counter: the window holds *raw* bits resolved through the sigmap only
    at seed time, and a compaction in between may have dropped the alias
    entries dead window bits still need — seeding across one is refused.
    """

    start_revision: int
    edits: PassResult
    recorder: Callable
    compactions: int = 0


class Session:
    """Owns a design, a tuning-options object, and an event channel.

    The session caches each module's pre-optimization AIG baseline the
    first time it is needed (``aig_map`` never mutates the module, so the
    baseline is computed directly on the working copy — no clone).
    Flows then mutate the session's modules in place, Yosys-style; use
    :func:`repro.flow.pipeline.run_flow` or clone before constructing the
    session if the caller's module must stay pristine.

    ``options`` seeds the *presets* (``smartly``/``smartly-sat``/…), which
    take their tuning from one :class:`SmartlyOptions` object.  Explicit
    flow scripts and :class:`FlowSpec` objects are authoritative as
    written — a script's ``smartly`` statement uses the paper defaults
    plus whatever ``key=value`` options the statement itself carries.

    **Design-scope incrementality** (``engine="incremental"``, the
    default): the session subscribes to its design's edit channel and
    keeps, per (module, flow), the pass objects and the content revision
    at which the flow last converged.  A later :meth:`run` of the same
    flow then

    * **skips** the module outright when its revision is unchanged
      (``RunReport.design_cache == "skipped"``) — the flow converged on
      byte-identical content before, so re-running it is a proven no-op;
    * **seeds** the pass engine with just the edits made in between when
      the revision moved (``design_cache == "seeded"``), reusing the
      module's live :class:`~repro.ir.walker.NetIndex` and every pass's
      persistent state, so only logic reachable from the edits is
      re-analyzed;
    * falls back to an ordinary full run otherwise (``"none"``).

    A session-wide :class:`~repro.core.cache.ResultCache` is injected into
    every incremental flow, so inference/simulation outcomes memoize
    across rounds, runs and modules (``rcache_*`` pass stats).  Eager runs
    bypass all of this — they are the differential-testing reference.

    **Persistence** (``store_path=``): the cache additionally survives the
    process.  At open, every readable generation of the
    :class:`~repro.core.store.CacheStore` at that directory is merged
    into the session cache, so :meth:`run_suite` jobs, :meth:`
    run_hierarchy` classes and sub-graph resolutions computed by earlier
    sessions — or other machines sharing the directory — replay instead
    of recomputing.  At :meth:`close` (or an explicit
    :meth:`flush_store`) the delta this session learned is written back
    as one new atomic, content-addressed generation and old generations
    beyond ``store_keep_generations`` are garbage-collected.  Identity-
    keyed sessions (``SmartlyOptions(structural_keys=False)``) keep the
    store inert: their keys embed live wire objects that mean nothing in
    another process.
    """

    def __init__(
        self,
        design: Optional[Union[Design, Module]] = None,
        *,
        options: Optional[SmartlyOptions] = None,
        events: Optional[EventBus] = None,
        engine: str = "incremental",
        store_path: Optional[Union[str, "Path"]] = None,
        store_keep_generations: Optional[int] = None,
    ):
        if engine not in ("incremental", "eager"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'incremental' or 'eager'"
            )
        if design is None:
            design = Design()
        elif isinstance(design, Module):
            design = Design(design)
        self.design = design
        self.options = options
        self.engine = engine
        self.events = events if events is not None else EventBus()
        self._baselines: Dict[str, int] = {}
        #: (module name, FlowSpec) -> _FlowState for design-incrementality
        self._flow_states: Dict[Tuple[str, FlowSpec], _FlowState] = {}
        #: module name -> edits accumulated since its last run
        self._pending: Dict[str, _PendingEdits] = {}
        #: module currently being optimized (its own flow's edits are
        #: tracked by the PassManager, not the design channel)
        self._running: Optional[str] = None
        #: session-wide sub-graph result cache shared by every
        #: incremental flow on every module of the design; keyed by
        #: canonical structural signatures unless the options opt out,
        #: so isomorphic sub-graphs hit across modules and suite jobs
        self._result_cache = ResultCache(
            structural=options.structural_keys if options is not None
            else True
        )
        #: optional on-disk persistence (see :mod:`repro.core.store`):
        #: the store's generations warm-start this session's cache at
        #: open, and :meth:`close`/:meth:`flush_store` persist the delta
        #: this session learned as one new generation.  Identity-keyed
        #: caches export nothing meaningful across processes, so the
        #: store is inert for them (``store_incompatible_mode`` counts
        #: the refusal).
        self._store: Optional[CacheStore] = None
        self._store_keep = (
            store_keep_generations if store_keep_generations is not None
            else DEFAULT_KEEP_GENERATIONS
        )
        #: keys already persisted (or loaded): flush_store exports only
        #: what lies beyond them, so each flush is one delta generation
        self._store_known: set = set()
        if store_path is not None:
            self._store = CacheStore(store_path)
            if self._result_cache.structural:
                loaded = self._store.load()
                if loaded:
                    self._result_cache.merge(loaded)
                self._store_known = set(loaded)
            else:
                self._store._bump("incompatible_mode")
        #: SAT-oracle counters accumulated over every run so far; the
        #: session-lifetime side of :attr:`RunReport.cache_stats` (the
        #: oracles themselves live on per-(module, flow) pass objects)
        self._oracle_totals: Dict[str, int] = {}
        #: set by :meth:`close`; a closed session no longer observes the
        #: design, so it must not skip, seed, or record flow states —
        #: an unobserved edit window would otherwise fabricate empty seeds
        self._closed = False
        self.design.add_listener(self._on_design_edit)

    # -- design-edit tracking --------------------------------------------------

    def _on_design_edit(self, edit: DesignEdit) -> None:
        if edit.kind == design_mod.MODULE_EDITED:
            if edit.module == self._running:
                return
            entry = self._pending.get(edit.module)
            if entry is not None:
                entry.recorder(edit.edit)
        elif edit.kind == design_mod.CHILD_EDITED:
            # a transitive child changed content: the parent's own netlist
            # is untouched, but everything observable at its instantiation
            # sites may mean something new, so the binding bits of every
            # instance of the edited child seed the parent's next re-run
            if edit.module == self._running:
                return
            entry = self._pending.get(edit.module)
            parent = self.design.modules.get(edit.module)
            if entry is not None and parent is not None:
                for inst in parent.instances.values():
                    if inst.module_name == edit.child:
                        for bit in inst.binding_bits():
                            entry.edits.touched_bits.add(bit)
        elif edit.kind in (design_mod.MODULE_ADDED, design_mod.MODULE_REMOVED):
            # membership changes reset everything known about the name
            self._pending.pop(edit.module, None)
            for key in [k for k in self._flow_states if k[0] == edit.module]:
                del self._flow_states[key]
            if edit.kind == design_mod.MODULE_REMOVED:
                self._baselines.pop(edit.module, None)

    def _restart_pending(self, name: str) -> None:
        """Open a fresh edit-accumulation window for ``name`` (post-run)."""
        edits = PassResult("design-edits")
        module = self.design.modules.get(name)
        # snapshot the live index's compaction counter without *creating*
        # an index: eager-only sessions never consume their windows, and
        # forcing a live index on them would tax every later edit.  The
        # -1 sentinel can never equal a real counter, so a window opened
        # before any index existed simply refuses to seed (harmless: a
        # consumable window implies a prior incremental run, which built
        # the index).
        index = module._net_index if module is not None else None
        self._pending[name] = _PendingEdits(
            self.design.revision(name),
            edits,
            _pending_recorder(edits),
            compactions=index.compactions if index is not None else -1,
        )

    def close(self) -> None:
        """Detach from the design's edit channel and drop cached state.

        Sessions subscribe to their design on construction; a long-lived
        :class:`~repro.ir.design.Design` that outlives many sessions would
        otherwise keep every discarded session reachable as a listener and
        pay its bookkeeping on every edit.  Call this (or use the session
        as a context manager) when constructing sessions per run over a
        shared design.  A closed session can still run flows, but every
        run is a full run — with the design no longer observed, skip/seed
        decisions would rest on edit windows that can never see an edit.
        A session opened with ``store_path=`` also persists its cache
        delta as one new store generation (see :meth:`flush_store`).
        Idempotent.
        """
        self.flush_store()
        try:
            self.design.remove_listener(self._on_design_edit)
        except ValueError:
            pass  # already closed
        self._closed = True
        self._flow_states.clear()
        self._pending.clear()

    def flush_store(self) -> int:
        """Persist the cache entries learned since the last flush (or
        since open) as one new generation of the session's on-disk
        :class:`~repro.core.store.CacheStore`; returns the number of
        entries written (0 without ``store_path=`` or when nothing new
        was learned).  Long-lived owners — the serve daemon, a CI driver
        between suites — call this to checkpoint without closing;
        :meth:`close` calls it automatically.  Each flush also
        garbage-collects the store down to the session's
        ``store_keep_generations``.
        """
        if self._store is None or not self._result_cache.structural:
            return 0
        delta = self._result_cache.export(exclude=self._store_known)
        if not delta:
            return 0
        self._store.save(delta)
        self._store_known |= set(delta)
        self._store.gc(keep_generations=self._store_keep)
        return len(delta)

    def export_cache(self, exclude=None) -> Dict[Tuple, Any]:
        """Snapshot this session's structural-cache entries (pure data,
        picklable; empty for identity-keyed sessions).  ``exclude`` drops
        keys the receiver already holds, so workers return just their
        delta.  The public face of the warm-start plumbing
        :meth:`run_suite`, the serve daemon and its process-isolated
        workers ride (see :meth:`~repro.core.cache.ResultCache.export`).
        """
        return self._result_cache.export(exclude=exclude)

    def merge_cache(self, entries: Mapping[Tuple, Any]) -> int:
        """Adopt another session's :meth:`export_cache` snapshot
        (existing keys win; returns the number of entries added) — how
        serve workers and suite jobs warm-start from a shared cache."""
        return self._result_cache.merge(entries)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_verilog(cls, source: str, top: Optional[str] = None,
                     **kwargs: Any) -> "Session":
        """Compile Verilog source text into a fresh session."""
        from ..frontend import compile_verilog

        return cls(compile_verilog(source, top=top), **kwargs)

    # -- observation -----------------------------------------------------------

    def subscribe(self, observer: Observer) -> Observer:
        """Attach a structured-event observer (see :mod:`repro.events`)."""
        return self.events.subscribe(observer)

    # -- cache totals ----------------------------------------------------------

    def _cache_totals(self) -> Dict[str, int]:
        """Session-lifetime cache counters (see :attr:`RunReport.cache_stats`)."""
        totals = dict(self._result_cache.counters)
        totals["entries"] = len(self._result_cache)
        for key, value in self._oracle_totals.items():
            totals[f"oracle_{key}"] = value
        if self._store is not None:
            for key, value in self._store.counters.items():
                totals[f"store_{key}"] = value
        return totals

    # -- baselines -------------------------------------------------------------

    def baseline_area(self, module: Optional[str] = None) -> int:
        """Pre-optimization AIG area, cached per module name."""
        mod = self._module(module)
        if mod.name not in self._baselines:
            self._baselines[mod.name] = aig_map(mod).num_ands
        return self._baselines[mod.name]

    # -- running flows ---------------------------------------------------------

    def _module(self, name: Optional[str]) -> Module:
        if name is None:
            return self.design.top
        if name not in self.design:
            raise KeyError(f"no module named {name!r}")
        return self.design[name]

    def run(
        self,
        flow: Union[str, FlowSpec] = "smartly",
        *,
        module: Optional[str] = None,
        check: bool = False,
        engine: Optional[str] = None,
    ) -> RunReport:
        """Run one flow over one module (the top by default).

        ``flow`` is a preset name (``none``/``yosys``/``smartly-sat``/
        ``smartly-rebuild``/``smartly``), a flow-script string, or a
        :class:`FlowSpec`.  With ``check=True`` the optimized module is
        SAT-proven equivalent to its pre-flow state (raises
        :class:`EquivalenceError` otherwise).  ``engine`` overrides the
        session engine for this run (``"incremental"`` or ``"eager"``).

        Incremental runs participate in design-scope incrementality (see
        the class docstring): a re-run of a flow that already converged on
        this module is skipped when the module's content is unchanged and
        seeded with just the in-between edits when it is not —
        :attr:`RunReport.design_cache` records which happened.  A skipped
        run with ``check=True`` reports ``equivalence_checked=True``
        without solving: zero passes ran, so the module *is* its own
        pre-flow state.
        """
        engine = engine if engine is not None else self.engine
        if engine not in ("incremental", "eager"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'incremental' or 'eager'"
            )
        spec = resolve_flow(flow, options=self.options)
        mod = self._module(module)
        original_area = self.baseline_area(mod.name)
        incremental = engine == "incremental"
        # design-scope bookkeeping requires an attached design listener
        track = incremental and not self._closed
        state_key = (mod.name, spec)
        state = self._flow_states.get(state_key) if track else None
        revision = self.design.revision(mod.name)
        if state is not None and state.revision == revision:
            return self._skipped_report(mod, spec, state, check)
        seed: Optional[DirtySet] = None
        design_cache = "none"
        passes = state.passes if state is not None else spec.build()
        if state is not None:
            pending = self._pending.get(mod.name)
            if (
                pending is not None
                and pending.start_revision == state.revision
                and pending.compactions == mod.net_index().compactions
            ):
                # the stored pass state is exactly one edit-window behind
                # the module: seed the first round with those edits instead
                # of a full sweep
                seed = DirtySet(
                    set(pending.edits.touched_cells),
                    set(pending.edits.touched_bits),
                    set(pending.edits.touched_fanin_bits),
                )
                design_cache = "seeded"
        if incremental:
            for pass_ in passes:
                attach = getattr(pass_, "attach_result_cache", None)
                if attach is not None:
                    attach(self._result_cache)
        golden = mod.clone() if (check and spec.steps) else None
        self.events.emit("flow_started", case=mod.name, flow=spec.label)
        manager = PassManager(
            passes,
            events=self.events,
            name=spec.label,
            incremental=incremental,
        )
        start = time.perf_counter()
        self._running = mod.name
        try:
            changed = manager.run(
                mod, fixpoint=spec.fixpoint, max_rounds=spec.max_rounds,
                seed=seed,
            )
        finally:
            # even on failure the module's content moved: reopen the edit
            # window at the new revision and drop the now-stale state (the
            # success path re-stores it below), so no later run can seed
            # from an edit set that missed this run's edits
            self._running = None
            # restart the window after ANY run on an open session — the
            # run's own edits were excluded from it (self._running), so an
            # eager run would otherwise leave a window that silently
            # missed this run's mutations; closed sessions keep no windows
            if not self._closed:
                self._restart_pending(mod.name)
                self._flow_states.pop(state_key, None)
        runtime = time.perf_counter() - start
        stats = aig_stats(aig_map(mod))
        checked = False
        if golden is not None:
            result = check_equivalence(
                golden, mod,
                cache=self._result_cache if incremental else None,
            )
            if not result.equivalent:
                raise EquivalenceError(
                    f"{spec.label} broke {mod.name!r}: "
                    f"counterexample {result.counterexample}"
                )
            checked = True
        self.events.emit(
            "flow_finished",
            case=mod.name,
            flow=spec.label,
            original_area=original_area,
            optimized_area=stats.num_ands,
            runtime_s=runtime,
        )
        pass_stats = manager.total_stats()
        oracle_stats = _aggregate_oracle_stats(pass_stats)
        for key, value in oracle_stats.items():
            self._oracle_totals[key] = self._oracle_totals.get(key, 0) + value
        report = RunReport(
            case_name=mod.name,
            flow=spec.label,
            flow_script=str(spec),
            original_area=original_area,
            optimized_area=stats.num_ands,
            stats=stats,
            passes=[
                PassRecord(
                    pass_name=res.pass_name,
                    round=idx // max(1, len(spec.steps)),
                    changed=res.changed,
                    stats=dict(res.stats),
                    runtime_s=res.runtime_s,
                )
                for idx, res in enumerate(manager.history)
            ],
            pass_stats=pass_stats,
            rounds=manager.rounds_run,
            runtime_s=runtime,
            equivalence_checked=checked,
            oracle_stats=oracle_stats,
            engine=engine,
            converged=manager.converged,
            dirty_stats=dict(manager.dirty_stats),
            design_cache=design_cache,
            cache_stats=self._cache_totals(),
        )
        # record the state this run left behind — only when the module is
        # provably at a fixpoint of this pipeline: a converged fixpoint
        # run, or a single-shot run that changed nothing (manager.converged
        # is vacuously True for non-fixpoint runs, so a changing
        # single-shot pipeline must NOT anchor skips — re-running it would
        # keep changing the module).  Unconverged runs cannot anchor, and
        # eager runs deliberately stay outside the bookkeeping (but still
        # invalidate stale states via the revision they bumped).
        at_fixpoint = manager.converged and (spec.fixpoint or not changed)
        if track and at_fixpoint and spec.steps:
            self._flow_states[state_key] = _FlowState(
                passes, self.design.revision(mod.name), report
            )
        return report

    def _skipped_report(
        self,
        mod: Module,
        spec: FlowSpec,
        state: _FlowState,
        check: bool,
    ) -> RunReport:
        """A design-incremental skip: the module's content revision is
        unchanged since this flow last converged on it, so zero passes run
        and the previous result is returned (fresh runtime, empty per-run
        counters, ``design_cache="skipped"``)."""
        start = time.perf_counter()
        self.events.emit("flow_started", case=mod.name, flow=spec.label)
        self.events.emit(
            "flow_skipped",
            case=mod.name,
            flow=spec.label,
            revision=state.revision,
        )
        runtime = time.perf_counter() - start
        report = replace(
            state.report,
            passes=[],
            pass_stats={},
            oracle_stats={},
            rounds=0,
            runtime_s=runtime,
            equivalence_checked=bool(check),
            dirty_stats={"modules_skipped": 1},
            design_cache="skipped",
            cache_stats=self._cache_totals(),
        )
        self.events.emit(
            "flow_finished",
            case=mod.name,
            flow=spec.label,
            original_area=report.original_area,
            optimized_area=report.optimized_area,
            runtime_s=runtime,
        )
        return report

    def run_all(
        self,
        flow: Union[str, FlowSpec] = "smartly",
        *,
        check: bool = False,
    ) -> Dict[str, RunReport]:
        """Run one flow over every module in the design.

        Returns ``{module name: RunReport}``.  Under the incremental
        engine this is the design-scope entry point: modules whose
        content is unchanged since this flow last converged on them are
        skipped, edited ones are seeded with just the in-between edits
        (see :attr:`RunReport.design_cache`).

        Hierarchical designs are visited children-before-parents
        (bottom-up over the instance graph), so by the time a parent's
        boundary cones are optimized every child it instantiates is
        already in its final shape; instance-free designs keep plain
        insertion order.
        """
        names = list(self.design.modules)
        if any(self.design.modules[n].instances for n in names):
            names = _bottom_up_names(self.design)
        return {
            name: self.run(flow, module=name, check=check)
            for name in names
        }

    def run_hierarchy(
        self,
        flow: Union[str, FlowSpec] = "smartly",
        *,
        top: Optional[str] = None,
        check: bool = False,
        engine: Optional[str] = None,
    ) -> HierarchyReport:
        """Optimize a hierarchical design bottom-up with isomorphic-
        instance replay.

        Modules reachable from ``top`` are visited children-first.  Each
        module's *hierarchical* structural signature (its own logic plus
        the signatures of the modules it instantiates — see
        :func:`~repro.ir.struct_hash.module_signature`) keys two
        :class:`~repro.core.cache.ResultCache` entries written after a
        full run: a ``suite_job`` report and a ``hier_netlist`` optimized
        clone.  A later module in the same signature class — an
        isomorphic sibling — replays both instead of running any pass:
        its optimized netlist is a renamed clone of the representative's,
        swapped in via :meth:`Design.replace_module
        <repro.ir.design.Design.replace_module>`, and its report is the
        stored one with ``design_cache="replayed"``.  Entries survive
        :meth:`~repro.core.cache.ResultCache.export`/``merge``, so a
        warm-started session replays classes it never ran itself.

        Replay preconditions — signature equality is name-free, so the
        swap must additionally preserve what parents and the design can
        observe; each failure falls back to an ordinary full run and is
        recorded in :attr:`HierarchyReport.replay_fallbacks`:

        * ``"ports"`` — the sibling's port names/widths differ from the
          stored netlist's (parents bind by port name);
        * ``"children"`` — the sibling instantiates a different multiset
          of child module names (the swap would rewire the instance
          graph);
        * ``"cec"`` — with ``check=True`` every replay is SAT-proven
          equivalent to the module it replaces before the swap commits;
          an unproven candidate (refuted *or* undecided) is discarded.

        Identity-keyed sessions (``structural_keys=False``) never replay.
        Replayed modules do not anchor design-incremental state: the
        swap bumps the module's revision, so a later direct :meth:`run`
        does a normal full/seeded pass over the new content.
        """
        from ..ir.hierarchy import hierarchy

        engine = engine if engine is not None else self.engine
        spec = resolve_flow(flow, options=self.options)
        info = hierarchy(self.design, top=top)
        start = time.perf_counter()
        cache = self._result_cache
        flow_fp = (
            str(spec), spec.label, bool(check), engine,
            _options_fingerprint(self.options),
        )
        child_sigs: Dict[str, Any] = {}
        reports: Dict[str, RunReport] = {}
        replayed: Dict[str, str] = {}
        fallbacks: Dict[str, str] = {}
        for name in info.order:
            mod = self.design.modules[name]
            # pre-optimization hierarchical signature: equal signatures
            # mean the deterministic flow produces identical results, so
            # grouping must happen before any pass touches the module
            sig = module_signature(mod, child_signatures=child_sigs)
            child_sigs[name] = sig
            original_area = self.baseline_area(name)
            # same key layout as _run_suite_job, so hierarchy runs and
            # suite jobs share stored reports (instance-free modules
            # have identical flat and hierarchical signatures)
            job_key = ("suite_job", sig, flow_fp)
            net_key = ("hier_netlist", sig, flow_fp)
            replay = None
            if cache.structural:
                report_hit, stored_report = cache.lookup(job_key)
                netlist_hit, stored_mod = cache.lookup(net_key)
                if report_hit and netlist_hit:
                    replay = self._try_replay(
                        name, mod, stored_mod, stored_report, check,
                        fallbacks,
                    )
            if replay is not None:
                reports[name] = replay
                replayed[name] = stored_mod.name
                continue
            report = self.run(spec, module=name, check=check, engine=engine)
            reports[name] = report
            if cache.structural:
                # strip instance-local fields so the stored report is
                # name-free; the netlist keeps its wire/cell names (the
                # port-interface precondition makes them transferable)
                cache.store(
                    job_key, replace(report, case_name="", cache_stats={})
                )
                cache.store(net_key, self.design.modules[name].clone())
        runtime = time.perf_counter() - start
        counts = dict(info.instance_counts)
        original_total = sum(
            counts[n] * reports[n].original_area for n in info.order
        )
        total = sum(
            counts[n] * reports[n].optimized_area for n in info.order
        )
        return HierarchyReport(
            top=info.top,
            flow=spec.label,
            order=info.order,
            reports=reports,
            replayed=replayed,
            replay_fallbacks=fallbacks,
            instance_counts=counts,
            original_total_area=original_total,
            total_area=total,
            runtime_s=runtime,
        )

    def _try_replay(
        self,
        name: str,
        mod: Module,
        stored_mod: Module,
        stored_report: RunReport,
        check: bool,
        fallbacks: Dict[str, str],
    ) -> Optional[RunReport]:
        """Attempt to swap ``stored_mod`` (an optimized isomorphic twin)
        in for ``mod``; returns the replayed report or None (fallback
        reason recorded in ``fallbacks``)."""
        start = time.perf_counter()
        if _port_interface(mod) != _port_interface(stored_mod):
            fallbacks[name] = "ports"
            return None
        if _child_multiset(mod) != _child_multiset(stored_mod):
            fallbacks[name] = "children"
            return None
        candidate = stored_mod.clone()
        candidate.name = name
        if check:
            verdict = check_equivalence(
                mod, candidate, cache=self._result_cache
            )
            if not verdict.equivalent:
                fallbacks[name] = "cec"
                return None
        self.design.replace_module(name, candidate)
        return replace(
            stored_report,
            case_name=name,
            passes=[],
            pass_stats={},
            oracle_stats={},
            rounds=0,
            runtime_s=time.perf_counter() - start,
            equivalence_checked=bool(check),
            dirty_stats={"modules_replayed": 1},
            design_cache="replayed",
            cache_stats=self._cache_totals(),
        )

    # -- suites ----------------------------------------------------------------

    def run_suite(
        self,
        cases: Mapping[str, CaseSource],
        flows: Sequence[Union[str, FlowSpec]] = ("smartly",),
        *,
        max_workers: Optional[int] = None,
        check: bool = False,
        executor: str = "thread",
        warm_start: bool = True,
    ) -> SuiteReport:
        """Run every (case × flow) job, in parallel, with structured progress.

        ``cases`` maps case names to modules **or** zero-argument factories
        (with the thread executor a factory runs once per *case* inside a
        worker and its jobs share the built module; the process executor
        invokes it once per flow inside each worker process);
        :func:`suite_cases` builds such a mapping from names + a builder.
        Workers only ever mutate private clones; the inputs are never
        mutated.  Progress is emitted as
        ``suite_started`` / ``case_started`` / ``case_finished`` /
        ``suite_finished`` events on the session's bus rather than printed.

        ``executor`` selects the worker pool:

        * ``"thread"`` — shared-memory workers.  Simple, but CPython's GIL
          means pure-Python optimization work barely overlaps; treat
          ``max_workers`` as job scheduling, not a speedup knob.  Jobs of
          the same case share one prebuilt module and one pre-optimization
          baseline AIG: the case's factory runs once (in whichever worker
          gets there first) and every flow clones from that shared
          instance instead of rebuilding and re-measuring per job.
        * ``"process"`` — a ``ProcessPoolExecutor``.  Modules and specs are
          pickled into worker processes and the JSON-serializable
          :class:`RunReport` is pickled back, so CPU-bound suites scale
          with cores.  Factories must be picklable (module-level functions
          or :func:`functools.partial` — what :func:`suite_cases` builds);
          per-pass events from inside workers are not forwarded, only the
          ``case_started``/``case_finished`` milestones.

        ``warm_start`` (default on) seeds every job's result cache with a
        snapshot of this session's structural-signature entries
        (:meth:`~repro.core.cache.ResultCache.export`) and merges each
        job's delta back afterwards — so process workers no longer start
        cold, jobs of one suite share sub-graph outcomes with the
        sessions runs that preceded them, and a second suite benefits
        from the first.  The snapshot is taken once before any job
        starts, which keeps every job's cache traffic deterministic
        regardless of scheduling; identity-keyed sessions
        (``SmartlyOptions(structural_keys=False)``) export nothing, so
        the flag is then a no-op.  Suite-wide totals come back as
        :attr:`SuiteReport.cache_stats`.
        """
        specs = [resolve_flow(flow, options=self.options) for flow in flows]
        labels = [spec.label for spec in specs]
        duplicates = {label for label in labels if labels.count(label) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate flow labels {sorted(duplicates)}: results are "
                f"keyed by label, so each flow needs a distinct name "
                f"(FlowSpec(..., name=...))"
            )
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; choose 'thread' or 'process'"
            )
        jobs = [
            (case_name, source, spec)
            for case_name, source in cases.items()
            for spec in specs
        ]
        self.events.emit(
            "suite_started",
            cases=list(cases),
            flows=[spec.label for spec in specs],
            jobs=len(jobs),
            max_workers=max_workers,
            executor=executor,
        )
        start = time.perf_counter()
        # one snapshot before any job runs: every job sees the same seed
        # entries, so per-job hit/miss traffic (and with it report JSON)
        # is deterministic under any scheduling order; None = cold suite
        snapshot = self._result_cache.export() if warm_start else None

        case_locks = {name: threading.Lock() for name in cases}
        case_shared: Dict[str, Tuple[Module, int]] = {}
        case_jobs_left = {name: len(specs) for name in cases}

        def resolve_case(case_name: str, source: CaseSource) -> Tuple[Module, int]:
            """Build each case once and measure its baseline once; the
            per-case lock keeps duplicate work out while still letting
            different cases construct in parallel."""
            with case_locks[case_name]:
                if case_name not in case_shared:
                    built = source() if callable(source) else source
                    case_shared[case_name] = (built, aig_map(built).num_ands)
                return case_shared[case_name]

        def release_case(case_name: str) -> None:
            """Drop the shared build once the case's last job finished, so
            peak memory tracks max_workers rather than total case count."""
            with case_locks[case_name]:
                case_jobs_left[case_name] -= 1
                if case_jobs_left[case_name] <= 0:
                    case_shared.pop(case_name, None)

        def run_one(case_name: str, source: CaseSource,
                    spec: FlowSpec) -> RunReport:
            try:
                base, baseline = resolve_case(case_name, source)
                module = base.clone()
            finally:
                release_case(case_name)
            self.events.emit("case_started", case=case_name, flow=spec.label)
            with Session(module, options=self.options, events=self.events,
                         engine=self.engine) as sub:
                sub._baselines[module.name] = baseline
                if snapshot:
                    sub.merge_cache(snapshot)
                report = _run_suite_job(
                    sub, module, spec, check, self.engine,
                    memoize=snapshot is not None,
                )
                if snapshot is not None:
                    self._result_cache.merge(
                        sub.export_cache(exclude=snapshot)
                    )
            self.events.emit(
                "case_finished",
                case=case_name,
                flow=spec.label,
                original_area=report.original_area,
                optimized_area=report.optimized_area,
                runtime_s=report.runtime_s,
            )
            return report

        results: Dict[str, Dict[str, RunReport]] = {name: {} for name in cases}
        if executor == "process":
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(
                        _suite_process_job, case_name, source, spec,
                        self.options, check, self.engine, snapshot,
                    ): (case_name, spec.label)
                    for case_name, source, spec in jobs
                }
                for future in as_completed(futures):
                    case_name, flow_label = futures[future]
                    report, delta = future.result()
                    if warm_start:
                        self._result_cache.merge(delta)
                    results[case_name][flow_label] = report
                    # workers cannot stream events across the process
                    # boundary, so started/finished are emitted together at
                    # completion — adjacent pairs, never a misleading
                    # all-started-at-submit burst
                    self.events.emit(
                        "case_started", case=case_name, flow=flow_label
                    )
                    self.events.emit(
                        "case_finished",
                        case=case_name,
                        flow=flow_label,
                        original_area=report.original_area,
                        optimized_area=report.optimized_area,
                        runtime_s=report.runtime_s,
                    )
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(run_one, *job): (job[0], job[2].label)
                    for job in jobs
                }
                for future in as_completed(futures):
                    case_name, flow_label = futures[future]
                    results[case_name][flow_label] = future.result()
        runtime = time.perf_counter() - start
        self.events.emit("suite_finished", jobs=len(jobs), runtime_s=runtime)
        cache_stats: Dict[str, int] = {}
        for per_flow in results.values():
            for report in per_flow.values():
                for key, value in report.cache_stats.items():
                    if key == "entries":
                        continue  # populations are not additive across jobs
                    cache_stats[key] = cache_stats.get(key, 0) + value
        cache_stats["entries"] = len(self._result_cache)
        return SuiteReport(
            results=results, runtime_s=runtime, cache_stats=cache_stats
        )

    def __repr__(self) -> str:
        return f"Session({self.design!r})"


def _port_interface(module: Module) -> Tuple[Tuple, Tuple]:
    """Name+width I/O shape a replay must preserve (parents bind by name)."""
    ins = tuple(sorted((w.name, w.width) for w in module.inputs))
    outs = tuple(sorted((w.name, w.width) for w in module.outputs))
    return ins, outs


def _child_multiset(module: Module) -> Tuple[str, ...]:
    """Sorted child-module names a replay must preserve (the instance
    graph is observable through :meth:`Design.instantiators`)."""
    return tuple(
        sorted(inst.module_name for inst in module.instances.values())
    )


def _bottom_up_names(design: Design) -> List[str]:
    """Every module name, children before any module instantiating them.

    Unlike :func:`~repro.ir.hierarchy.hierarchy` this covers *all*
    modules (including roots unreachable from the top) and tolerates
    dangling or cyclic references — back-edges are simply not followed,
    so ``run_all`` stays total on designs ``hierarchy()`` would reject.
    Deterministic: roots and children are visited in insertion order.
    """
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 = on stack, 1 = done

    def children(name: str) -> Iterator[str]:
        for inst in design.modules[name].instances.values():
            child = inst.module_name
            if child != name and child in design.modules:
                yield child

    for root in design.modules:
        if state.get(root) == 1:
            continue
        state[root] = 0
        stack = [(root, children(root))]
        while stack:
            name, pending = stack[-1]
            for child in pending:
                if state.get(child) is None:
                    state[child] = 0
                    stack.append((child, children(child)))
                    break
            else:
                stack.pop()
                state[name] = 1
                order.append(name)
    return order


def _options_fingerprint(options: Optional[SmartlyOptions]) -> Optional[Tuple]:
    """A pure, hashable rendering of the tuning options for job keys."""
    if options is None:
        return None
    return tuple(sorted(vars(options).items()))


def _run_suite_job(
    session: "Session",
    module: Module,
    spec: FlowSpec,
    check: bool,
    engine: str,
    memoize: bool,
) -> RunReport:
    """One suite job, with whole-job structural replay.

    Suite jobs optimize a private clone and return only the report, so
    when the warm-start snapshot already holds the report of a
    *structurally identical* module run through the same flow (same
    script, check flag, engine and options), the entire job replays from
    the cache: every report field that matters — areas, AIG stats,
    equivalence status — is invariant under renaming (the stored pass
    counters describe the isomorphic twin's run, which the fresh run
    would reproduce up to name-order tie-breaks).  The key rides in the
    session :class:`~repro.core.cache.ResultCache` as a ``suite_job``
    entry, so it exports, merges and counts hits like any other
    structural entry.  Never used by :meth:`Session.run` — a direct run
    must actually mutate its module.
    """
    cache = session._result_cache
    key = None
    if memoize and cache.structural:
        key = (
            "suite_job",
            module_signature(module),
            (str(spec), spec.label, bool(check), engine,
             _options_fingerprint(session.options)),
        )
        start = time.perf_counter()
        hit, stored = cache.lookup(key)
        if hit:
            return replace(
                stored,
                case_name=module.name,
                runtime_s=time.perf_counter() - start,
                cache_stats=session._cache_totals(),
            )
    report = session.run(spec, check=check)
    if key is not None:
        # strip instance-local fields so the stored value is pure and
        # name-free (the replay fills them back in for its own module)
        cache.store(key, replace(report, case_name="", cache_stats={}))
    return report


def _suite_process_job(
    case_name: str,
    source: CaseSource,
    spec: FlowSpec,
    options: Optional[SmartlyOptions],
    check: bool,
    engine: str,
    snapshot: Optional[Dict[Tuple, Any]] = None,
) -> Tuple[RunReport, Dict[Tuple, Any]]:
    """Top-level worker for ``executor="process"`` (must be picklable).

    A pickled Module *is* already a private copy, so no extra clone is
    needed; factories build fresh modules inside the worker.  ``snapshot``
    warm-starts the worker session's result cache with the parent's
    structural-signature entries; the second return value is the worker's
    delta (entries it computed beyond the snapshot), merged back by the
    parent so the next suite starts warmer still.
    """
    module = source() if callable(source) else source
    session = Session(module, options=options, engine=engine)
    if snapshot:
        session.merge_cache(snapshot)
    report = _run_suite_job(
        session, module, spec, check, engine, memoize=snapshot is not None,
    )
    delta = (
        session.export_cache(exclude=snapshot)
        if snapshot is not None else {}
    )
    return report, delta


def suite_cases(
    names: Sequence[str], build: Callable[[str], Module]
) -> Dict[str, Callable[[], Module]]:
    """Build a :meth:`Session.run_suite` case mapping from names + builder.

    Each factory calls ``build(name)`` inside the worker, so construction
    parallelizes and no late-binding lambda pitfalls leak to callers.
    ``functools.partial`` (not a lambda) keeps the factories picklable for
    ``run_suite(..., executor="process")``::

        Session().run_suite(suite_cases(CASE_NAMES, build_case), flows)
    """
    import functools

    return {name: functools.partial(build, name) for name in names}


__all__ = [
    "CaseSource",
    "EquivalenceError",
    "HierarchyReport",
    "PassRecord",
    "RunReport",
    "Session",
    "SuiteReport",
    "suite_cases",
]
