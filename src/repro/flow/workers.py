"""Process-isolated job execution for the serve daemon.

The PR 7 serve daemon multiplexed every job onto threads *inside* the
daemon process — one job segfaulting, OOM-ing or hanging in a
heavy-tailed SAT call took the process (and the warm shared cache every
other client depends on) down with it.  This module is the isolation
substrate: a bounded pool of **worker subprocesses** supervised from the
daemon, each executing one job at a time.

* Jobs ship as pickled work orders — the JSON request, the tuning
  options, the engine, and a snapshot of the shared structural cache —
  over a private :mod:`multiprocessing` pipe; the worker streams
  ``event`` payloads back while the flow runs and finishes with the
  result payload plus its cache *delta* (entries it learned beyond the
  snapshot), which the daemon merges into the shared cache.
* A worker that dies mid-job — killed, crashed, OOM-ed — surfaces as a
  :data:`DIED` outcome, never an exception storm: the supervisor reaps
  the corpse and spawns a replacement lazily for the next job, and the
  daemon's warm cache is untouched.
* A worker that stops answering is bounded by the caller's wall-clock
  budget: :meth:`WorkerPool.run_job` polls the pipe against the
  deadline and on expiry **kills** the worker (:data:`TIMEOUT`) — the
  only way to cancel a runaway native SAT call for real.  The budget
  clock only starts once the worker has answered its startup handshake,
  so the spawn/import cost of a cold (or freshly replaced) worker never
  counts against the job.

Workers are started with the ``spawn`` context: the daemon is heavily
multi-threaded, and forking a threaded process can deadlock the child
on locks held by threads that do not exist there.  Spawned workers
re-import :mod:`repro` once and are then reused across jobs, so the
startup cost amortizes; :func:`run_job` itself is process-agnostic and
is exactly what the ``--isolation thread`` path runs in-process.

Fault-injection sites (:mod:`repro.core.faults`): ``worker-crash`` and
``worker-hang`` fire inside the worker right before the job body —
request-injected faults on the first attempt only (so retries
demonstrably recover), env-armed faults on every attempt.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import faults
from ..core.smartly import SmartlyOptions
from ..events import EventBus
from .session import Session, _run_suite_job
from .spec import resolve_flow

#: outcome kinds of one supervised job attempt
RESULT = "result"    #: the worker answered a result payload + cache delta
ERROR = "error"      #: the job body raised (bad source, bad flow, ...)
DIED = "died"        #: the worker process vanished mid-job (crash/kill/OOM)
TIMEOUT = "timeout"  #: the wall-clock budget expired; the worker was killed

#: event-payload callback (already shaped as a serve response dict)
EventSink = Callable[[Dict[str, Any]], None]

#: how long a spawned worker gets to finish importing and say ready —
#: generous because it is pure environment (interpreter + imports), and
#: charging it to a job's wall-clock budget would make tight budgets
#: kill cold workers before the job even starts
SPAWN_READY_TIMEOUT_S = 120.0


def compile_source(source: str, top: Optional[str], fmt: str):
    """Compile a job's design text: Verilog, or a Yosys JSON netlist when
    the request says ``"format": "json"`` (or the text looks like one)."""
    from ..frontend import compile_verilog, read_yosys_json

    if fmt == "auto":
        fmt = "json" if source.lstrip().startswith("{") else "verilog"
    if fmt == "json":
        return read_yosys_json(source, top=top)
    if fmt == "verilog":
        return compile_verilog(source, top=top)
    raise ValueError(f"unknown source format {fmt!r}")


def run_job(
    request: Dict[str, Any],
    *,
    options: Optional[SmartlyOptions] = None,
    engine: str = "incremental",
    snapshot: Optional[Dict[Tuple, Any]] = None,
    emit_event: Optional[EventSink] = None,
) -> Tuple[Dict[str, Any], Dict[Tuple, Any]]:
    """Execute one ``run``/``hier`` request in a private warm-started
    session; returns ``(payload, delta)``.

    This is the isolation-agnostic job body: the thread path calls it
    in-process, worker subprocesses call it behind the pipe.  ``payload``
    carries ``op``/``flow``/``replayed``/``report``; ``delta`` is the
    structural-cache entries learned beyond ``snapshot`` (what the
    daemon merges back into its shared cache).
    """
    rid = request.get("id")
    op = request["op"]
    source = request.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError("missing 'source' (Verilog or Yosys JSON text)")
    flow = request.get("flow", "smartly")
    check = bool(request.get("check", False))
    top = request.get("top")
    spec = resolve_flow(flow, options=options)
    design = compile_source(source, top, request.get("format", "auto"))
    bus = EventBus()
    if emit_event is not None and request.get("events", True):
        bus.subscribe(
            lambda event: emit_event(
                {"type": "event", "id": rid, **event.to_dict()}
            )
        )
    with Session(design, options=options, events=bus,
                 engine=engine) as session:
        if snapshot:
            session.merge_cache(snapshot)
        if op == "hier":
            report = session.run_hierarchy(spec, top=top, check=check)
            payload = report.to_dict()
            replayed = sorted(report.replayed)
            job_replayed = bool(replayed) and not report.replay_fallbacks
        else:
            module = design.top
            report = _run_suite_job(
                session, module, spec, check, engine,
                memoize=session._result_cache.structural,
            )
            payload = report.to_dict()
            # the private session makes exactly one suite_job lookup
            # (its own module's signature); a hit means the whole job
            # replayed from the shared cache without running a pass
            job_replayed = (
                session._result_cache.counters.get("suite_job_hits", 0) > 0
            )
        delta = session.export_cache(exclude=snapshot)
    return (
        {"op": op, "flow": spec.label, "replayed": job_replayed,
         "report": payload},
        delta,
    )


def _worker_main(conn) -> None:
    """Worker-subprocess loop: execute pickled work orders until EOF.

    Runs in the child.  Each order is ``{"request", "options", "engine",
    "snapshot", "fault", "attempt"}``; replies are ``("event", dict)``
    streams followed by ``("result", payload, delta)`` or ``("error",
    message)``.  The ``worker-crash`` / ``worker-hang`` fault sites live
    here — request-injected faults fire on attempt 1 only.
    """
    try:
        conn.send(("ready",))  # imports done; job budgets may start now
    except (BrokenPipeError, OSError):
        return
    while True:
        try:
            order = conn.recv()
        except (EOFError, OSError):
            return
        if order is None:  # orderly shutdown
            return
        injected = (
            order.get("fault") if order.get("attempt", 1) == 1 else None
        )
        try:
            faults.trip("worker-crash", injected)
        except faults.InjectedFault:
            conn.close()
            os._exit(139)  # the SIGSEGV exit shape a real crash leaves
        try:
            faults.trip("worker-hang", injected)
        except faults.InjectedFault:
            while True:  # a SAT call that never returns
                time.sleep(3600)
        try:
            payload, delta = run_job(
                order["request"],
                options=order.get("options"),
                engine=order.get("engine", "incremental"),
                snapshot=order.get("snapshot"),
                emit_event=lambda data: conn.send(("event", data)),
            )
            conn.send(("result", payload, delta))
        except BaseException as exc:  # the *worker* must survive any job
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                return


@dataclass
class JobOutcome:
    """What one supervised attempt produced (see the kind constants)."""

    kind: str
    payload: Optional[Dict[str, Any]] = None
    delta: Dict[Tuple, Any] = field(default_factory=dict)
    message: str = ""

    @property
    def retryable(self) -> bool:
        """Worker death and timeouts are environmental — the job itself
        may be fine on a fresh worker (timeouts only under a raised
        budget); job-body errors are deterministic and are not."""
        return self.kind in (DIED, TIMEOUT)


class _Worker:
    """One supervised subprocess + its pipe (parent side)."""

    def __init__(self, ctx):
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()  # the child holds its own copy
        self.ready = False  # flips on the startup handshake

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-stop the subprocess and release its resources."""
        try:
            self.process.kill()
        except (OSError, AttributeError):
            pass
        self.process.join(timeout=10)
        try:
            self.conn.close()
        except OSError:
            pass

    def retire(self) -> None:
        """Orderly shutdown: EOF the pipe, then reap."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():
            self.kill()


class WorkerPool:
    """A bounded pool of reusable worker subprocesses.

    ``max_workers`` bounds how many live at once; workers are spawned
    lazily, reused across jobs, and *replaced* (not resurrected) after a
    crash, kill or timeout — the next :meth:`run_job` simply spawns a
    fresh one.  ``counters`` tracks lifetime supervision traffic:
    ``workers_spawned``, ``workers_replaced`` (spawns that filled a
    death/timeout vacancy), ``worker_deaths``, ``timeouts``,
    ``jobs_completed``.

    Thread-safe: the serve daemon drives one :meth:`run_job` per job
    thread concurrently.
    """

    def __init__(self, max_workers: int = 2):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._ctx = multiprocessing.get_context("spawn")
        self._slots = threading.Semaphore(max_workers)
        self._lock = threading.Lock()
        self._idle: List[_Worker] = []
        self._active: List[_Worker] = []
        self._vacancies = 0  # deaths awaiting a replacement spawn
        self._closed = False
        self.counters: Dict[str, int] = {}

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def _acquire(self) -> _Worker:
        self._slots.acquire()
        with self._lock:
            if self._closed:
                self._slots.release()
                raise RuntimeError("WorkerPool is closed")
            while self._idle:
                worker = self._idle.pop()
                if worker.alive:
                    self._active.append(worker)
                    return worker
                worker.kill()  # died while idle; fall through to spawn
                self._vacancies += 1
            replacement = self._vacancies > 0
            if replacement:
                self._vacancies -= 1
        worker = _Worker(self._ctx)
        self._bump("workers_spawned")
        if replacement:
            self._bump("workers_replaced")
        with self._lock:
            self._active.append(worker)
        return worker

    def _release(self, worker: _Worker, *, reusable: bool) -> None:
        kill = None
        with self._lock:
            if worker in self._active:
                self._active.remove(worker)
            if reusable and worker.alive and not self._closed:
                self._idle.append(worker)
            else:
                self._vacancies += 1
                kill = worker
        if kill is not None:
            kill.kill()
        self._slots.release()

    def _await_ready(self, worker: _Worker) -> Optional[JobOutcome]:
        """Wait (outside any job budget) for a fresh worker's startup
        handshake; returns a :data:`DIED` outcome if it never answers."""
        if worker.ready:
            return None
        try:
            if worker.conn.poll(SPAWN_READY_TIMEOUT_S):
                if worker.conn.recv() == ("ready",):
                    worker.ready = True
                    return None
        except (EOFError, OSError):
            pass
        self._bump("worker_deaths")
        exitcode = worker.process.exitcode
        self._release(worker, reusable=False)
        return JobOutcome(
            DIED,
            message=f"worker failed to start (exit {exitcode})",
        )

    def run_job(
        self,
        request: Dict[str, Any],
        *,
        options: Optional[SmartlyOptions] = None,
        engine: str = "incremental",
        snapshot: Optional[Dict[Tuple, Any]] = None,
        timeout_s: Optional[float] = None,
        on_event: Optional[EventSink] = None,
        fault: Optional[str] = None,
        attempt: int = 1,
    ) -> JobOutcome:
        """Run one job attempt on a (possibly fresh) worker.

        Blocks until the worker answers, dies, or ``timeout_s`` of
        wall-clock expires — in which case the worker is killed and the
        outcome is :data:`TIMEOUT`.  The budget clock starts after the
        worker's startup handshake, so a cold spawn's import time is
        never charged to the job.  ``fault``/``attempt`` ride to the
        worker's injection sites.  Never raises for worker failure;
        every ending is a :class:`JobOutcome`.
        """
        order = {
            "request": request,
            "options": options,
            "engine": engine,
            "snapshot": snapshot,
            "fault": fault,
            "attempt": attempt,
        }
        worker = self._acquire()
        failed = self._await_ready(worker)
        if failed is not None:
            return failed
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        try:
            worker.conn.send(order)
        except (BrokenPipeError, OSError):
            self._bump("worker_deaths")
            self._release(worker, reusable=False)
            return JobOutcome(DIED, message="worker died before the job")
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._bump("timeouts")
                    self._release(worker, reusable=False)
                    return JobOutcome(
                        TIMEOUT,
                        message=f"job exceeded its {timeout_s}s budget; "
                                f"worker killed",
                    )
            try:
                # bounded poll so a sleeping deadline is honored promptly
                ready = worker.conn.poll(
                    min(remaining, 0.5) if remaining is not None else 0.5
                )
            except (BrokenPipeError, OSError):
                ready = True  # fall into recv to classify the EOF
            if not ready:
                if not worker.alive:
                    self._bump("worker_deaths")
                    self._release(worker, reusable=False)
                    return JobOutcome(
                        DIED,
                        message="worker process died mid-job "
                                f"(exit {worker.process.exitcode})",
                    )
                continue
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._bump("worker_deaths")
                exitcode = worker.process.exitcode
                self._release(worker, reusable=False)
                return JobOutcome(
                    DIED,
                    message=f"worker process died mid-job (exit {exitcode})",
                )
            kind = message[0]
            if kind == "event":
                if on_event is not None:
                    on_event(message[1])
                continue
            if kind == "result":
                self._bump("jobs_completed")
                self._release(worker, reusable=True)
                return JobOutcome(
                    RESULT, payload=message[1], delta=message[2]
                )
            self._release(worker, reusable=True)
            return JobOutcome(ERROR, message=message[1])

    def kill_active(self) -> int:
        """Hard-stop every worker currently executing a job (the drain
        deadline's cancellation path); their supervising threads see a
        :data:`DIED` outcome and unwind.  Returns the number killed."""
        with self._lock:
            victims = list(self._active)
        for worker in victims:
            worker.kill()
        return len(victims)

    def close(self) -> None:
        """Retire idle workers and kill active ones; the pool refuses
        new jobs afterwards.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            active = list(self._active)
        for worker in idle:
            worker.retire()
        for worker in active:
            worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "DIED",
    "ERROR",
    "JobOutcome",
    "RESULT",
    "TIMEOUT",
    "WorkerPool",
    "compile_source",
    "run_job",
]
