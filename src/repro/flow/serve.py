"""The serve daemon: fault-tolerant optimization-as-a-service over JSON lines.

:class:`FlowServer` is a long-lived loop that accepts flow jobs as
JSON-lines requests — over stdin (``smartly serve``) or a localhost TCP
socket (``smartly serve --port N``) — runs them against one shared warm
structural cache, and streams the session event channel back as JSON
lines, so a client watches pass-level progress of every job it submitted
while other jobs run concurrently.

The daemon is built to survive its jobs.  SAT calls in the redundancy
ladder and in verified equivalence checks have heavy-tailed runtimes,
and a service holding the only warm cache cannot afford to die with one
of them:

* **Isolation** (``isolation=``): ``"process"`` executes each job in a
  bounded pool of worker subprocesses (:class:`~repro.flow.workers.
  WorkerPool`) — a worker that segfaults, OOMs or is killed answers a
  structured ``{"type": "error", "retryable": true, ...}`` and is
  replaced, with the daemon and its warm cache intact.  ``"thread"``
  (the default) keeps the historic in-process path.
* **Budgets** — a per-job wall-clock timeout (request ``"timeout_s"``,
  else the server's ``default_timeout_s``) enforced by a watchdog that
  kills the worker.  Enforced under process isolation only: a thread
  cannot be killed, which is precisely why the worker pool exists.
* **Retry** — retryable failures (worker death; timeouts, re-run under
  a doubled budget) are retried up to ``max_retries`` times with
  exponential backoff, surfaced as ``attempts`` on the final response
  and as ``job_retried`` event lines in between.
* **Admission control** — at most ``queue_limit`` jobs may be in flight
  or queued (and at most ``per_client_limit`` per ``"client"`` key);
  overload answers ``{"type": "busy", "queue_depth": ...}`` instead of
  accepting silently.
* **Graceful degradation** — ``shutdown`` (and plain end-of-input)
  drains in-flight jobs up to ``drain_timeout_s`` (request ``"drain_s"``
  overrides); stragglers are cancelled — process workers killed — and
  reported in the final ``bye`` as ``cancelled``.
* **Fault injection** — every failure mode above is provable on demand
  through the :mod:`repro.core.faults` registry: armed via the
  ``SMARTLY_FAULTS`` env var, or per request through the test-only
  ``"inject"`` field when the server allows it
  (``allow_fault_injection=True`` / ``--allow-fault-injection``).

With ``store_path=`` the shared cache is backed by the on-disk
:class:`~repro.core.store.CacheStore`: the daemon warm-starts from every
generation previous daemons persisted, and checkpoints its own delta on
``flush`` and at shutdown — jobs the service proved once are replayed
from the ``suite_job`` cache forever after, across restarts and machines
sharing the directory.

**Request protocol** — one JSON object per line; every request may carry
an ``id`` (echoed verbatim on every related response so interleaved
streams demultiplex) and a ``client`` key (the admission-quota bucket):

``{"op": "run", "source": <verilog or yosys json>, "flow": <preset or
script>, "check": bool, "top": <name>, "events": bool,
"format": "auto"|"verilog"|"json", "timeout_s": <seconds>}``
    Compile ``source`` — Verilog text, or a Yosys ``write_json`` netlist
    when ``format`` is ``"json"`` (``"auto"``, the default, sniffs a
    leading ``{``) — and run ``flow`` (default ``"smartly"``) over the
    top module.  Streams ``accepted`` immediately, ``event`` lines while
    the job runs (suppressed with ``"events": false``), then one
    ``result`` carrying the :class:`~repro.flow.session.RunReport` dict
    plus ``replayed`` — whether the whole job was answered from the
    shared ``suite_job`` cache without running a single pass — and
    ``attempts``.

``{"op": "hier", ...}``
    Same, but :meth:`~repro.flow.session.Session.run_hierarchy` over the
    instance tree: the ``result`` carries the
    :class:`~repro.flow.session.HierarchyReport` dict.

``{"op": "ping"}`` / ``{"op": "stats"}`` / ``{"op": "flush"}``
    Liveness probe; shared-cache + supervision counter snapshot;
    checkpoint the store.  ``flush`` is non-blocking: it persists the
    delta already merged into the shared cache immediately and reports
    the ``in_flight`` job count — entries still computing land in the
    next checkpoint.

``{"op": "shutdown", "drain_s": <seconds>}``
    Drain in-flight jobs (up to the deadline), checkpoint the store,
    answer ``bye``, stop.

Malformed lines and failing jobs answer ``{"type": "error", ...}`` —
the loop itself never dies on bad input (a daemon serving many clients
must not let one of them crash the cache every other client is warm
from).  End-of-input drains and checkpoints exactly like ``shutdown``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Dict, IO, Iterable, List, Optional

from ..core import faults
from ..core.cache import ResultCache
from ..core.smartly import SmartlyOptions
from ..core.store import DEFAULT_KEEP_GENERATIONS, CacheStore
from ..events import JOB_CANCELLED, JOB_RETRIED
from .spec import FlowScriptError
from .workers import (
    DIED,
    ERROR,
    RESULT,
    TIMEOUT,
    WorkerPool,
    run_job,
)

#: response writer: one JSON-serializable dict per call, one line each
Writer = Callable[[Dict[str, Any]], None]

#: default admission bound: jobs in flight or queued before ``busy``
DEFAULT_QUEUE_LIMIT = 256

#: default worker subprocesses under ``isolation="process"``
DEFAULT_PROCESS_WORKERS = 2

#: first retry backoff; doubles per attempt
DEFAULT_RETRY_BACKOFF_S = 0.05


def _client_key(request: Dict[str, Any]) -> str:
    """The admission-quota bucket of one request (``"client"`` field)."""
    client = request.get("client")
    return str(client) if client not in (None, "") else "anon"


class FlowServer:
    """Shared state of one serve daemon: the warm cache, its optional
    on-disk store, the worker pool, and the robustness knobs every job
    runs under.

    The server object is transport-free — :meth:`serve_lines` drives it
    from any iterable of request lines and any response writer, which is
    what the tests and the two CLI transports (:func:`serve_stdin`,
    :func:`serve_socket`) do.

    ``isolation`` selects job execution: ``"thread"`` (in-process, the
    historic path) or ``"process"`` (supervised worker subprocesses —
    crash/hang/OOM survivable, budgets enforceable).  ``max_workers``
    bounds concurrent jobs in either mode.
    """

    def __init__(
        self,
        *,
        store_path: Optional[str] = None,
        options: Optional[SmartlyOptions] = None,
        engine: str = "incremental",
        max_workers: Optional[int] = None,
        keep_generations: int = DEFAULT_KEEP_GENERATIONS,
        isolation: str = "thread",
        default_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        queue_limit: Optional[int] = DEFAULT_QUEUE_LIMIT,
        per_client_limit: Optional[int] = None,
        drain_timeout_s: Optional[float] = None,
        allow_fault_injection: bool = False,
    ):
        if isolation not in ("thread", "process"):
            raise ValueError(
                f"unknown isolation {isolation!r}; choose 'thread' or "
                f"'process'"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None)")
        if per_client_limit is not None and per_client_limit < 1:
            raise ValueError("per_client_limit must be >= 1 (or None)")
        self.options = options
        self.engine = engine
        self.max_workers = max_workers
        self.isolation = isolation
        self.default_timeout_s = default_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.queue_limit = queue_limit
        self.per_client_limit = per_client_limit
        self.drain_timeout_s = drain_timeout_s
        self.allow_fault_injection = allow_fault_injection
        self._cache = ResultCache(
            structural=options.structural_keys if options is not None
            else True
        )
        self._store: Optional[CacheStore] = None
        self._keep_generations = keep_generations
        self._known: set = set()
        if store_path is not None:
            self._store = CacheStore(store_path)
            if self._cache.structural:
                loaded = self._store.load()
                if loaded:
                    self._cache.merge(loaded)
                self._known = set(loaded)
        #: serializes merges of job deltas with snapshot exports; the
        #: ResultCache is itself iteration-safe, but pairing "export then
        #: count on it" sequences keeps per-job replay flags coherent
        self._merge_lock = threading.Lock()
        self.jobs_run = 0
        self._counters: Dict[str, int] = {}
        self._counters_lock = threading.Lock()
        #: the worker pool, created lazily on the first process-isolated
        #: job so thread-mode servers never spawn a subprocess
        self._pool: Optional[WorkerPool] = None
        self._pool_lock = threading.Lock()
        #: set while the drain deadline has passed: in-flight retry loops
        #: must convert their next failure into a cancellation instead of
        #: backing off onto a replacement worker
        self._draining = threading.Event()

    # -- counters --------------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    # -- persistence -----------------------------------------------------------

    def flush(self, injected: Optional[str] = None) -> int:
        """Checkpoint the shared cache's unpersisted delta as one store
        generation (0 without a store or when nothing new was learned).
        Non-blocking: only entries already merged back by finished jobs
        are persisted — in-flight work lands in the next checkpoint.

        ``injected`` is the request's validated test-only fault name;
        the ``store-corrupt-generation`` site fires here, garbling the
        generation just written (what torn disk state would leave).
        """
        if self._store is None or not self._cache.structural:
            return 0
        delta = self._cache.export(exclude=self._known)
        if not delta:
            return 0
        path = self._store.save(delta)
        self._known |= set(delta)
        try:
            faults.trip("store-corrupt-generation", injected)
        except faults.InjectedFault:
            if path is not None:
                faults.corrupt_file(path)
                self._bump("store_corrupted")
        self._store.gc(keep_generations=self._keep_generations)
        return len(delta)

    def stats(self) -> Dict[str, Any]:
        totals: Dict[str, Any] = dict(self._cache.counters)
        totals["entries"] = len(self._cache)
        totals["jobs_run"] = self.jobs_run
        totals["isolation"] = self.isolation
        with self._counters_lock:
            totals.update(self._counters)
        if self._store is not None:
            for key, value in self._store.counters.items():
                totals[f"store_{key}"] = value
        pool = self._pool
        if pool is not None:
            for key, value in pool.counters.items():
                totals[f"pool_{key}"] = value
        return totals

    def close(self) -> None:
        """Retire the worker pool (if one was ever spawned).  The server
        stays usable — a later process-isolated job lazily builds a
        fresh pool.  Transports call this when they stop."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    # -- one job ---------------------------------------------------------------

    def _worker_pool(self) -> WorkerPool:
        with self._pool_lock:
            if self._pool is None:
                self._pool = WorkerPool(
                    self.max_workers or DEFAULT_PROCESS_WORKERS
                )
            return self._pool

    def _validated_inject(self, request: Dict[str, Any]) -> Optional[str]:
        """The request's test-only fault name, validated and authorized
        (:class:`~repro.core.faults.FaultError` otherwise)."""
        injected = request.get("inject")
        if injected is None:
            return None
        faults.validate(injected)
        if not self.allow_fault_injection:
            raise faults.FaultError(
                "fault injection is disabled on this server; start it "
                "with allow_fault_injection=True (--allow-fault-injection)"
            )
        return injected

    def _job_timeout(self, request: Dict[str, Any]) -> Optional[float]:
        raw = request.get("timeout_s")
        if raw is None:
            return self.default_timeout_s
        timeout = float(raw)
        if timeout <= 0:
            raise ValueError("'timeout_s' must be a positive number")
        return timeout

    def _merge_delta(self, delta, injected: Optional[str] = None) -> int:
        """Adopt one finished job's cache delta; the ``merge-error``
        fault site.  A failing merge never fails the job — the result is
        already computed; only the shared warmth is lost (counted as
        ``merge_errors``)."""
        try:
            faults.trip("merge-error", injected)
            with self._merge_lock:
                return self._cache.merge(delta)
        except Exception:
            self._bump("merge_errors")
            return 0

    def _execute(self, request: Dict[str, Any], emit: Writer) -> Dict[str, Any]:
        """Run one ``run``/``hier`` job under the server's isolation
        mode; returns the ``result`` (or structured ``error``) payload.
        Exceptions are the caller's to convert into ``error`` responses."""
        injected = self._validated_inject(request)
        timeout = self._job_timeout(request)
        if self.isolation == "process":
            return self._execute_process(request, emit, injected, timeout)
        return self._execute_thread(request, emit, injected)

    def _execute_thread(
        self,
        request: Dict[str, Any],
        emit: Writer,
        injected: Optional[str],
    ) -> Dict[str, Any]:
        """The in-process path: the historic thread-isolation execution
        (no preemption, so crash/hang faults are refused rather than
        honored — honoring them would kill the daemon itself)."""
        if injected is not None and faults.REGISTRY[injected].site == "worker":
            raise faults.FaultError(
                f"fault {injected!r} requires --isolation process "
                f"(a thread-isolated daemon would die with its job)"
            )
        rid = request.get("id")
        snapshot = self._cache.export()
        payload, delta = run_job(
            request, options=self.options, engine=self.engine,
            snapshot=snapshot, emit_event=emit,
        )
        self._merge_delta(delta, injected)
        with self._counters_lock:
            self.jobs_run += 1
        return {
            "type": "result", "id": rid, "attempts": 1,
            "isolation": "thread", **payload,
        }

    def _execute_process(
        self,
        request: Dict[str, Any],
        emit: Writer,
        injected: Optional[str],
        timeout: Optional[float],
    ) -> Dict[str, Any]:
        """The supervised path: ship the job to a worker subprocess,
        enforce the wall-clock budget, and retry retryable failures
        (worker death; timeouts under a doubled budget) with
        exponential backoff up to ``max_retries``."""
        rid = request.get("id")
        pool = self._worker_pool()
        attempts = 0
        max_attempts = 1 + self.max_retries
        backoff = self.retry_backoff_s
        while True:
            attempts += 1
            outcome = pool.run_job(
                request,
                options=self.options,
                engine=self.engine,
                snapshot=self._cache.export(),
                timeout_s=timeout,
                on_event=emit,
                fault=injected,
                attempt=attempts,
            )
            if outcome.kind == RESULT:
                self._merge_delta(outcome.delta, injected)
                with self._counters_lock:
                    self.jobs_run += 1
                return {
                    "type": "result", "id": rid, "attempts": attempts,
                    "isolation": "process", **outcome.payload,
                }
            if outcome.kind == ERROR:
                return {
                    "type": "error", "id": rid, "error": outcome.message,
                    "retryable": False, "attempts": attempts,
                }
            # DIED / TIMEOUT: environmental, retryable
            self._bump("worker_failures")
            if self._draining.is_set():
                return {
                    "type": "error", "id": rid,
                    "error": "cancelled: shutdown drain deadline reached",
                    "kind": "cancelled", "retryable": True,
                    "attempts": attempts,
                }
            if attempts >= max_attempts:
                return {
                    "type": "error", "id": rid, "error": outcome.message,
                    "kind": outcome.kind, "retryable": True,
                    "attempts": attempts,
                }
            if outcome.kind == TIMEOUT and timeout is not None:
                timeout *= 2  # retry under a raised budget
            self._bump("retries")
            emit({
                "type": "event", "id": rid, "kind": JOB_RETRIED,
                "attempt": attempts, "reason": outcome.kind,
                "backoff_s": backoff,
                "timeout_s": timeout,
            })
            time.sleep(backoff)
            backoff *= 2

    # -- the loop --------------------------------------------------------------

    def serve_lines(
        self,
        lines: Iterable[str],
        write: Writer,
    ) -> bool:
        """Drive the daemon over one stream of JSON-lines requests.

        Returns ``True`` when the stream ended with an explicit
        ``shutdown`` (the daemon should stop accepting transports),
        ``False`` on plain end-of-input (a socket client disconnecting —
        the daemon keeps serving).  Either way, in-flight jobs are
        drained up to the drain deadline — stragglers cancelled and
        reported — and the store is checkpointed before returning.
        """
        lock = threading.Lock()
        closed = threading.Event()

        def emit(payload: Dict[str, Any]) -> None:
            if closed.is_set():
                return  # a straggler outliving the session; drop its line
            with lock:
                write(payload)

        shutdown = False
        drain_s = self.drain_timeout_s
        state = threading.Lock()
        pending: Dict[Future, Dict[str, Any]] = {}
        inflight: Dict[str, int] = {}
        pool = ThreadPoolExecutor(max_workers=self.max_workers)

        def reap() -> int:
            """Drop completed futures (a long-lived daemon must not leak
            one per job) and return the surviving in-flight count."""
            with state:
                for future in [f for f in pending if f.done()]:
                    del pending[future]
                return len(pending)

        def submit(request: Dict[str, Any]) -> None:
            rid = request.get("id")
            client = _client_key(request)

            def job() -> None:
                try:
                    emit(self._execute(request, emit))
                except FlowScriptError as exc:
                    emit({"type": "error", "id": rid,
                          "error": f"bad flow: {exc}", "retryable": False})
                except Exception as exc:
                    emit({"type": "error", "id": rid,
                          "error": f"{type(exc).__name__}: {exc}",
                          "retryable": False})
                finally:
                    with state:
                        inflight[client] = max(
                            0, inflight.get(client, 1) - 1
                        )

            with state:
                inflight[client] = inflight.get(client, 0) + 1
            future = pool.submit(job)
            with state:
                pending[future] = {"id": rid, "client": client}

        try:
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    emit({"type": "error", "id": None,
                          "error": f"bad JSON: {exc}"})
                    continue
                if not isinstance(request, dict):
                    emit({"type": "error", "id": None,
                          "error": "request must be a JSON object"})
                    continue
                op = request.get("op")
                rid = request.get("id")
                if op in ("run", "hier"):
                    depth = reap()
                    if (
                        self.queue_limit is not None
                        and depth >= self.queue_limit
                    ):
                        self._bump("busy_rejected")
                        emit({"type": "busy", "id": rid, "reason": "queue",
                              "queue_depth": depth,
                              "limit": self.queue_limit})
                        continue
                    client = _client_key(request)
                    if self.per_client_limit is not None:
                        with state:
                            mine = inflight.get(client, 0)
                        if mine >= self.per_client_limit:
                            self._bump("busy_rejected")
                            emit({"type": "busy", "id": rid,
                                  "reason": "client", "client": client,
                                  "queue_depth": depth,
                                  "in_flight": mine,
                                  "limit": self.per_client_limit})
                            continue
                    emit({"type": "accepted", "id": rid, "op": op})
                    submit(request)
                elif op == "ping":
                    emit({"type": "pong", "id": rid})
                elif op == "stats":
                    emit({"type": "stats", "id": rid, "stats": self.stats()})
                elif op == "flush":
                    # non-blocking: persist what finished jobs already
                    # merged; in-flight work lands in the next checkpoint
                    try:
                        injected = self._validated_inject(request)
                    except faults.FaultError as exc:
                        emit({"type": "error", "id": rid,
                              "error": str(exc)})
                        continue
                    emit({"type": "flushed", "id": rid,
                          "entries": self.flush(injected),
                          "in_flight": reap()})
                elif op == "shutdown":
                    shutdown = True
                    if "drain_s" in request:
                        raw = request["drain_s"]
                        try:
                            drain_s = (
                                None if raw is None else max(0.0, float(raw))
                            )
                        except (TypeError, ValueError):
                            emit({"type": "error", "id": rid,
                                  "error": "'drain_s' must be a number "
                                           "or null"})
                            shutdown = False
                            continue
                    break
                else:
                    emit({"type": "error", "id": rid,
                          "error": f"unknown op {op!r}"})
            cancelled = self._drain(pending, state, drain_s, emit)
        finally:
            self._draining.clear()
            pool.shutdown(wait=False)
        flushed = self.flush()
        emit({
            "type": "bye",
            "jobs_run": self.jobs_run,
            "flushed_entries": flushed,
            "cache_entries": len(self._cache),
            "cancelled": cancelled,
        })
        closed.set()
        return shutdown

    def _drain(
        self,
        pending: Dict[Future, Dict[str, Any]],
        state: threading.Lock,
        drain_s: Optional[float],
        emit: Writer,
    ) -> List[Any]:
        """Wait for in-flight jobs up to the drain deadline; past it,
        cancel queued jobs, kill process-isolated stragglers, and return
        the cancelled/abandoned job ids (reported in ``bye``)."""
        with state:
            futures = dict(pending)
        if not futures:
            return []
        done, not_done = wait(list(futures), timeout=drain_s)
        if not not_done:
            return []
        self._draining.set()
        cancelled: List[Any] = []
        killable = []
        for future in list(not_done):
            rid = futures[future].get("id")
            if future.cancel():  # queued, never started: drop outright
                cancelled.append(rid)
                self._bump("cancelled")
                emit({"type": "error", "id": rid,
                      "error": "cancelled: shutdown drain deadline "
                               "reached before the job started",
                      "kind": "cancelled", "retryable": True,
                      "attempts": 0})
            else:
                killable.append(future)
        pool = self._pool
        if pool is not None and killable:
            # running process-isolated jobs: kill their workers; the
            # supervising threads observe the death, see _draining, and
            # answer their own cancellation errors
            pool.kill_active()
        if killable:
            grace = 30.0 if self.isolation == "process" else 0.5
            _done, abandoned = wait(killable, timeout=grace)
            for future in abandoned:
                # thread-isolated stragglers cannot be killed; their ids
                # are reported and any late output is dropped at close
                rid = futures[future].get("id")
                cancelled.append(rid)
                self._bump("cancelled")
                emit({"type": "event", "id": rid, "kind": JOB_CANCELLED,
                      "reason": "drain deadline; job still running "
                                "(thread isolation cannot preempt)"})
            for future in _done:
                rid = futures[future].get("id")
                if self.isolation == "process":
                    cancelled.append(rid)
        return cancelled


def _json_line(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, default=str)


def serve_stdin(
    server: FlowServer,
    in_stream: Optional[IO[str]] = None,
    out_stream: Optional[IO[str]] = None,
) -> int:
    """Serve one JSON-lines session over stdio; returns an exit status."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout

    def write(payload: Dict[str, Any]) -> None:
        print(_json_line(payload), file=out_stream, flush=True)

    try:
        server.serve_lines(in_stream, write)
    finally:
        server.close()
    return 0


def serve_socket(
    server: FlowServer,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    on_listening: Optional[Callable[[int], None]] = None,
    on_error: Optional[Callable[[BaseException], None]] = None,
) -> int:
    """Serve JSON-lines sessions over a localhost TCP socket.

    Connections are served one at a time (each gets the full shared
    cache warmth); ``port=0`` binds an ephemeral port, reported through
    ``on_listening`` before the first ``accept``.  A client ``shutdown``
    stops the daemon; a disconnect just ends that client's session — and
    a connection whose session *raises* (a transport error, a client
    speaking garbage at the socket layer) is logged through ``on_error``
    (default: a stderr line) and the accept loop keeps serving.  One bad
    connection must never stop the daemon.
    """
    import socket

    def report(exc: BaseException) -> None:
        if on_error is not None:
            on_error(exc)
        else:
            print(f"serve: connection failed: {type(exc).__name__}: {exc}",
                  file=sys.stderr, flush=True)

    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            sock.listen()
            if on_listening is not None:
                on_listening(sock.getsockname()[1])
            while True:
                conn, _addr = sock.accept()
                # initialized before the session runs: an exception mid-
                # session used to leave this unbound and the `if stopped`
                # check below killed the whole accept loop with a
                # NameError — one bad connection took the daemon down
                stopped = False
                with conn:
                    rfile = conn.makefile("r", encoding="utf-8",
                                          newline="\n")
                    wfile = conn.makefile("w", encoding="utf-8",
                                          newline="\n")

                    def write(payload: Dict[str, Any]) -> None:
                        try:
                            wfile.write(_json_line(payload) + "\n")
                            wfile.flush()
                        except (BrokenPipeError, ConnectionResetError,
                                OSError):
                            pass  # client went away; the job still merges

                    try:
                        stopped = server.serve_lines(rfile, write)
                    except Exception as exc:
                        report(exc)  # log-and-continue: daemon survives
                    finally:
                        for handle in (rfile, wfile):
                            try:
                                handle.close()
                            except OSError:
                                pass
                if stopped:
                    return 0
    finally:
        server.close()


__all__ = [
    "DEFAULT_PROCESS_WORKERS",
    "DEFAULT_QUEUE_LIMIT",
    "FlowServer",
    "Writer",
    "serve_socket",
    "serve_stdin",
]
