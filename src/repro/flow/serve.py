"""The serve daemon: optimization-as-a-service over JSON lines.

:class:`FlowServer` is a long-lived loop that accepts flow jobs as
JSON-lines requests — over stdin (``smartly serve``) or a localhost TCP
socket (``smartly serve --port N``) — multiplexes them onto the same
thread-pool executor discipline :meth:`~repro.flow.session.Session.
run_suite` uses (each job runs in a private warm-started sub-session,
deltas merge back into the shared cache), and streams the session event
channel back as JSON lines, so a client watches pass-level progress of
every job it submitted while other jobs run concurrently.

With ``store_path=`` the shared cache is backed by the on-disk
:class:`~repro.core.store.CacheStore`: the daemon warm-starts from every
generation previous daemons (or CI runs, or plain sessions) persisted,
and checkpoints its own delta on ``flush`` and at shutdown — jobs the
service proved once are replayed from the ``suite_job`` cache forever
after, across restarts and machines sharing the directory.

**Request protocol** — one JSON object per line; every request may carry
an ``id`` (echoed verbatim on every related response so interleaved
streams demultiplex):

``{"op": "run", "source": <verilog or yosys json>, "flow": <preset or
script>, "check": bool, "top": <name>, "events": bool,
"format": "auto"|"verilog"|"json"}``
    Compile ``source`` — Verilog text, or a Yosys ``write_json`` netlist
    when ``format`` is ``"json"`` (``"auto"``, the default, sniffs a
    leading ``{``) — and run ``flow`` (default ``"smartly"``) over the
    top module.  Streams ``accepted`` immediately, ``event`` lines while
    the job runs (suppressed with ``"events": false``), then one
    ``result`` carrying the :class:`~repro.flow.session.RunReport` dict
    plus ``replayed`` — whether the whole job was answered from the
    shared ``suite_job`` cache without running a single pass.

``{"op": "hier", ...}``
    Same, but :meth:`~repro.flow.session.Session.run_hierarchy` over the
    instance tree: the ``result`` carries the
    :class:`~repro.flow.session.HierarchyReport` dict.

``{"op": "ping"}`` / ``{"op": "stats"}`` / ``{"op": "flush"}``
    Liveness probe; shared-cache counter snapshot; checkpoint the store
    (one new generation) without shutting down.

``{"op": "shutdown"}``
    Drain in-flight jobs, checkpoint the store, answer ``bye``, stop.

Malformed lines and failing jobs answer ``{"type": "error", ...}`` —
the loop itself never dies on bad input (a daemon serving many clients
must not let one of them crash the cache every other client is warm
from).  End-of-input drains and checkpoints exactly like ``shutdown``.
"""

from __future__ import annotations

import json
import sys
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, IO, Iterable, List, Optional

from ..core.cache import ResultCache
from ..core.smartly import SmartlyOptions
from ..core.store import DEFAULT_KEEP_GENERATIONS, CacheStore
from ..events import EventBus
from .session import Session, _run_suite_job
from .spec import FlowScriptError, resolve_flow

#: response writer: one JSON-serializable dict per call, one line each
Writer = Callable[[Dict[str, Any]], None]


def _compile_source(source: str, top: Optional[str], fmt: str):
    """Compile a job's design text: Verilog, or a Yosys JSON netlist when
    the request says ``"format": "json"`` (or the text looks like one)."""
    from ..frontend import compile_verilog, read_yosys_json

    if fmt == "auto":
        fmt = "json" if source.lstrip().startswith("{") else "verilog"
    if fmt == "json":
        return read_yosys_json(source, top=top)
    if fmt == "verilog":
        return compile_verilog(source, top=top)
    raise ValueError(f"unknown source format {fmt!r}")


class FlowServer:
    """Shared state of one serve daemon: the warm cache, its optional
    on-disk store, and the tuning options every job runs under.

    The server object is transport-free — :meth:`serve_lines` drives it
    from any iterable of request lines and any response writer, which is
    what the tests and the two CLI transports (:func:`serve_stdin`,
    :func:`serve_socket`) do.
    """

    def __init__(
        self,
        *,
        store_path: Optional[str] = None,
        options: Optional[SmartlyOptions] = None,
        engine: str = "incremental",
        max_workers: Optional[int] = None,
        keep_generations: int = DEFAULT_KEEP_GENERATIONS,
    ):
        self.options = options
        self.engine = engine
        self.max_workers = max_workers
        self._cache = ResultCache(
            structural=options.structural_keys if options is not None
            else True
        )
        self._store: Optional[CacheStore] = None
        self._keep_generations = keep_generations
        self._known: set = set()
        if store_path is not None:
            self._store = CacheStore(store_path)
            if self._cache.structural:
                loaded = self._store.load()
                if loaded:
                    self._cache.merge(loaded)
                self._known = set(loaded)
        #: serializes merges of job deltas with snapshot exports; the
        #: ResultCache is itself iteration-safe, but pairing "export then
        #: count on it" sequences keeps per-job replay flags coherent
        self._merge_lock = threading.Lock()
        self.jobs_run = 0

    # -- persistence -----------------------------------------------------------

    def flush(self) -> int:
        """Checkpoint the shared cache's unpersisted delta as one store
        generation (0 without a store or when nothing new was learned)."""
        if self._store is None or not self._cache.structural:
            return 0
        delta = self._cache.export(exclude=self._known)
        if not delta:
            return 0
        self._store.save(delta)
        self._known |= set(delta)
        self._store.gc(keep_generations=self._keep_generations)
        return len(delta)

    def stats(self) -> Dict[str, int]:
        totals = dict(self._cache.counters)
        totals["entries"] = len(self._cache)
        totals["jobs_run"] = self.jobs_run
        if self._store is not None:
            for key, value in self._store.counters.items():
                totals[f"store_{key}"] = value
        return totals

    # -- one job ---------------------------------------------------------------

    def _execute(self, request: Dict[str, Any], emit: Writer) -> Dict[str, Any]:
        """Run one ``run``/``hier`` job in a private warm-started
        sub-session; returns the ``result`` payload (exceptions are the
        caller's to convert into ``error`` responses)."""
        rid = request.get("id")
        op = request["op"]
        source = request.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ValueError("missing 'source' (Verilog or Yosys JSON text)")
        flow = request.get("flow", "smartly")
        check = bool(request.get("check", False))
        top = request.get("top")
        spec = resolve_flow(flow, options=self.options)
        design = _compile_source(source, top, request.get("format", "auto"))
        bus = EventBus()
        if request.get("events", True):
            bus.subscribe(
                lambda event: emit(
                    {"type": "event", "id": rid, **event.to_dict()}
                )
            )
        snapshot = self._cache.export()
        with Session(design, options=self.options, events=bus,
                     engine=self.engine) as session:
            if snapshot:
                session._result_cache.merge(snapshot)
            if op == "hier":
                report = session.run_hierarchy(spec, top=top, check=check)
                payload = report.to_dict()
                replayed = sorted(report.replayed)
                job_replayed = bool(replayed) and not report.replay_fallbacks
            else:
                module = design.top
                report = _run_suite_job(
                    session, module, spec, check, self.engine,
                    memoize=self._cache.structural,
                )
                payload = report.to_dict()
                # the private session makes exactly one suite_job lookup
                # (its own module's signature); a hit means the whole job
                # replayed from the shared cache without running a pass
                job_replayed = (
                    session._result_cache.counters.get("suite_job_hits", 0)
                    > 0
                )
            delta = session._result_cache.export(exclude=snapshot)
        with self._merge_lock:
            self._cache.merge(delta)
            self.jobs_run += 1
        return {
            "type": "result",
            "id": rid,
            "op": op,
            "flow": spec.label,
            "replayed": job_replayed,
            "report": payload,
        }

    # -- the loop --------------------------------------------------------------

    def serve_lines(
        self,
        lines: Iterable[str],
        write: Writer,
    ) -> bool:
        """Drive the daemon over one stream of JSON-lines requests.

        Returns ``True`` when the stream ended with an explicit
        ``shutdown`` (the daemon should stop accepting transports),
        ``False`` on plain end-of-input (a socket client disconnecting —
        the daemon keeps serving).  Either way, all in-flight jobs are
        drained and the store is checkpointed before returning.
        """
        lock = threading.Lock()

        def emit(payload: Dict[str, Any]) -> None:
            with lock:
                write(payload)

        shutdown = False
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            pending: List[Future] = []

            def submit(request: Dict[str, Any]) -> None:
                rid = request.get("id")

                def job() -> None:
                    try:
                        emit(self._execute(request, emit))
                    except FlowScriptError as exc:
                        emit({"type": "error", "id": rid,
                              "error": f"bad flow: {exc}"})
                    except Exception as exc:
                        emit({"type": "error", "id": rid,
                              "error": f"{type(exc).__name__}: {exc}"})

                pending.append(pool.submit(job))

            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    emit({"type": "error", "id": None,
                          "error": f"bad JSON: {exc}"})
                    continue
                if not isinstance(request, dict):
                    emit({"type": "error", "id": None,
                          "error": "request must be a JSON object"})
                    continue
                op = request.get("op")
                rid = request.get("id")
                if op in ("run", "hier"):
                    emit({"type": "accepted", "id": rid, "op": op})
                    submit(request)
                elif op == "ping":
                    emit({"type": "pong", "id": rid})
                elif op == "stats":
                    emit({"type": "stats", "id": rid, "stats": self.stats()})
                elif op == "flush":
                    # drain first: in-flight jobs are still computing the
                    # entries the caller wants on disk
                    for future in pending:
                        future.result()
                    pending.clear()
                    emit({"type": "flushed", "id": rid,
                          "entries": self.flush()})
                elif op == "shutdown":
                    shutdown = True
                    break
                else:
                    emit({"type": "error", "id": rid,
                          "error": f"unknown op {op!r}"})
            for future in pending:
                future.result()
        flushed = self.flush()
        emit({
            "type": "bye",
            "jobs_run": self.jobs_run,
            "flushed_entries": flushed,
            "cache_entries": len(self._cache),
        })
        return shutdown


def _json_line(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, default=str)


def serve_stdin(
    server: FlowServer,
    in_stream: Optional[IO[str]] = None,
    out_stream: Optional[IO[str]] = None,
) -> int:
    """Serve one JSON-lines session over stdio; returns an exit status."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout

    def write(payload: Dict[str, Any]) -> None:
        print(_json_line(payload), file=out_stream, flush=True)

    server.serve_lines(in_stream, write)
    return 0


def serve_socket(
    server: FlowServer,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    on_listening: Optional[Callable[[int], None]] = None,
) -> int:
    """Serve JSON-lines sessions over a localhost TCP socket.

    Connections are served one at a time (each gets the full shared
    cache warmth); ``port=0`` binds an ephemeral port, reported through
    ``on_listening`` before the first ``accept``.  A client ``shutdown``
    stops the daemon; a disconnect just ends that client's session.
    """
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen()
        if on_listening is not None:
            on_listening(sock.getsockname()[1])
        while True:
            conn, _addr = sock.accept()
            with conn:
                rfile = conn.makefile("r", encoding="utf-8", newline="\n")
                wfile = conn.makefile("w", encoding="utf-8", newline="\n")

                def write(payload: Dict[str, Any]) -> None:
                    try:
                        wfile.write(_json_line(payload) + "\n")
                        wfile.flush()
                    except (BrokenPipeError, ConnectionResetError, OSError):
                        pass  # client went away; the job still merges back
                try:
                    stopped = server.serve_lines(rfile, write)
                finally:
                    for handle in (rfile, wfile):
                        try:
                            handle.close()
                        except OSError:
                            pass
            if stopped:
                return 0


__all__ = ["FlowServer", "Writer", "serve_socket", "serve_stdin"]
