"""Declarative pipeline descriptions: :class:`FlowSpec` and its script syntax.

A flow is a sequence of registered passes with options, plus a repetition
policy — exactly what Yosys flow scripts express (``opt_expr; opt_merge;
opt_muxtree; opt_clean``).  Specs are:

* **parseable** from a script string::

      FlowSpec.parse("opt_expr; opt_merge; smartly k=6 sat_threshold=32; opt_clean")

* **printable** back to that syntax (``str(spec)`` round-trips through
  :meth:`FlowSpec.parse`),
* **composable** programmatically (``spec + other``, :meth:`FlowSpec.then`),
* **instantiable** into fresh pass objects (:meth:`FlowSpec.build`) through
  the pass registry in :mod:`repro.opt.pass_base`.

Script grammar (statements split on ``;`` or newlines, ``#`` comments)::

    script    := statement (";" statement)*
    statement := "fixpoint" option*          -- repeat pipeline to a fixpoint
               | PASS_NAME option*           -- one registry pass invocation
    option    := KEY "=" VALUE | KEY         -- bare KEY means KEY=true

Values parse as ``int``, ``float``, ``true``/``false`` booleans, or plain
strings.  The five legacy optimizer names (``none``, ``yosys``,
``smartly-sat``, ``smartly-rebuild``, ``smartly``) are available as named
presets via :meth:`FlowSpec.preset`, constructed to match the historic
``run_flow`` pipelines exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.smartly import SmartlyOptions
from ..opt.pass_base import Pass, known_passes, make_pass

#: statement name reserved for the repetition directive
FIXPOINT_DIRECTIVE = "fixpoint"


class FlowScriptError(ValueError):
    """A flow script failed to parse."""


def _parse_value(text: str) -> Any:
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass(frozen=True)
class PassStep:
    """One pass invocation: a registry name plus constructor options."""

    pass_name: str
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, pass_name: str, **options: Any) -> "PassStep":
        for key, value in options.items():
            if isinstance(value, str) and (
                any(ch.isspace() for ch in value) or set(value) & set(";#='\"")
            ):
                # such a value could not survive str(spec) -> parse
                raise FlowScriptError(
                    f"option {key}={value!r} is not representable in flow-"
                    f"script syntax (whitespace/;/#/=/quotes)"
                )
        return cls(pass_name, tuple(sorted(options.items())))

    @property
    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def instantiate(self) -> Pass:
        """Build a fresh pass object from the registry."""
        return make_pass(self.pass_name, **self.options_dict)

    def __str__(self) -> str:
        parts = [self.pass_name]
        parts += [f"{key}={_format_value(val)}" for key, val in self.options]
        return " ".join(parts)


def _parse_statement(statement: str) -> Tuple[str, Dict[str, Any]]:
    tokens = statement.split()
    name, raw_options = tokens[0], tokens[1:]
    options: Dict[str, Any] = {}
    for token in raw_options:
        if "=" in token:
            key, _, raw = token.partition("=")
            if not key or not raw:
                raise FlowScriptError(
                    f"malformed option {token!r} in statement {statement!r}"
                )
            options[key] = _parse_value(raw)
        else:
            options[token] = True  # bare flag
    return name, options


class FlowSpec:
    """An immutable, declarative optimization pipeline description."""

    def __init__(
        self,
        steps: Iterable[PassStep] = (),
        *,
        fixpoint: bool = False,
        max_rounds: int = 16,
        name: Optional[str] = None,
    ):
        self.steps: Tuple[PassStep, ...] = tuple(steps)
        self.fixpoint = bool(fixpoint)
        self.max_rounds = int(max_rounds)
        self.name = name

    # -- construction ----------------------------------------------------------

    @classmethod
    def parse(cls, script: str, name: Optional[str] = None) -> "FlowSpec":
        """Parse a Yosys-like flow script into a spec (see module docstring)."""
        steps: List[PassStep] = []
        fixpoint = False
        max_rounds = 16
        for raw_line in script.splitlines() or [script]:
            line = raw_line.split("#", 1)[0]
            for statement in line.split(";"):
                statement = statement.strip()
                if not statement:
                    continue
                pass_name, options = _parse_statement(statement)
                if pass_name == FIXPOINT_DIRECTIVE:
                    fixpoint = True
                    unknown = set(options) - {"max_rounds"}
                    if unknown:
                        raise FlowScriptError(
                            f"fixpoint takes only max_rounds, got {sorted(unknown)}"
                        )
                    rounds = options.get("max_rounds", max_rounds)
                    if not isinstance(rounds, int) or isinstance(rounds, bool) \
                            or rounds < 1:
                        raise FlowScriptError(
                            f"fixpoint max_rounds must be a positive integer, "
                            f"got {rounds!r}"
                        )
                    max_rounds = rounds
                    continue
                steps.append(PassStep.make(pass_name, **options))
        return cls(steps, fixpoint=fixpoint, max_rounds=max_rounds, name=name)

    @classmethod
    def preset(
        cls,
        name: str,
        options: Optional[SmartlyOptions] = None,
        **overrides: Any,
    ) -> "FlowSpec":
        """The five legacy optimizer pipelines as named flows.

        ``options``/``overrides`` tune the smaRTLy stage exactly like the
        legacy ``run_flow(..., options=...)`` / ``run_smartly(**overrides)``
        paths did; they are ignored by the ``none``/``yosys`` presets.
        """
        if name not in PRESETS:
            raise ValueError(
                f"unknown optimizer {name!r}; choose from {tuple(PRESETS)}"
            )
        return PRESETS[name](options, overrides)

    # -- composition -----------------------------------------------------------

    def then(self, other: Union["FlowSpec", PassStep, str]) -> "FlowSpec":
        """Concatenate pipelines (fixpoint policy comes from ``self``)."""
        if isinstance(other, str):
            other = FlowSpec.parse(other)
        if isinstance(other, PassStep):
            extra: Tuple[PassStep, ...] = (other,)
        else:
            extra = other.steps
        return FlowSpec(
            self.steps + extra,
            fixpoint=self.fixpoint,
            max_rounds=self.max_rounds,
            name=None,
        )

    def __add__(self, other: Union["FlowSpec", PassStep, str]) -> "FlowSpec":
        return self.then(other)

    def with_step(self, pass_name: str, **options: Any) -> "FlowSpec":
        return self.then(PassStep.make(pass_name, **options))

    def with_fixpoint(self, max_rounds: int = 16) -> "FlowSpec":
        return FlowSpec(
            self.steps, fixpoint=True, max_rounds=max_rounds, name=self.name
        )

    # -- realisation -----------------------------------------------------------

    def build(self) -> List[Pass]:
        """Instantiate fresh pass objects (validates names and options)."""
        return [step.instantiate() for step in self.steps]

    def validate(self) -> None:
        """Raise if any step names an unregistered pass."""
        known = set(known_passes())
        for step in self.steps:
            if step.pass_name not in known:
                raise FlowScriptError(
                    f"unknown pass {step.pass_name!r}; known: {sorted(known)}"
                )

    # -- identity --------------------------------------------------------------

    @property
    def label(self) -> str:
        """Stable human-readable identity: preset name or script text."""
        return self.name if self.name is not None else str(self)

    def __str__(self) -> str:
        statements: List[str] = []
        if self.fixpoint:
            statements.append(f"{FIXPOINT_DIRECTIVE} max_rounds={self.max_rounds}")
        statements += [str(step) for step in self.steps]
        return "; ".join(statements)

    def __repr__(self) -> str:
        return f"FlowSpec({str(self)!r}, name={self.name!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowSpec):
            return NotImplemented
        return (
            self.steps == other.steps
            and self.fixpoint == other.fixpoint
            # max_rounds only matters when the pipeline repeats
            and (not self.fixpoint or self.max_rounds == other.max_rounds)
        )

    def __hash__(self) -> int:
        return hash(
            (self.steps, self.fixpoint, self.max_rounds if self.fixpoint else 1)
        )


# -- presets -------------------------------------------------------------------


def _smartly_step_options(
    options: Optional[SmartlyOptions], overrides: Dict[str, Any]
) -> Dict[str, Any]:
    """Collapse options+overrides to the non-default SmartlyOptions fields."""
    from dataclasses import replace

    resolved = replace(
        options if options is not None else SmartlyOptions(), **overrides
    )
    defaults = SmartlyOptions()
    return {
        f.name: getattr(resolved, f.name)
        for f in fields(SmartlyOptions)
        if getattr(resolved, f.name) != getattr(defaults, f.name)
    }


def _smartly_preset(
    preset_name: str,
    options: Optional[SmartlyOptions],
    overrides: Dict[str, Any],
    **forced: Any,
) -> FlowSpec:
    step_options = _smartly_step_options(options, {**overrides, **forced})
    max_rounds = step_options.get("max_rounds", SmartlyOptions().max_rounds)
    return FlowSpec(
        (
            PassStep.make("opt_expr"),
            PassStep.make("opt_merge"),
            PassStep.make("smartly", **step_options),
            PassStep.make("opt_clean"),
        ),
        fixpoint=True,
        max_rounds=max_rounds,
        name=preset_name,
    )


PRESETS = {
    "none": lambda options, overrides: FlowSpec((), name="none"),
    "yosys": lambda options, overrides: FlowSpec(
        (
            PassStep.make("opt_expr"),
            PassStep.make("opt_merge"),
            PassStep.make("opt_muxtree"),
            PassStep.make("opt_clean"),
        ),
        fixpoint=True,
        max_rounds=16,
        name="yosys",
    ),
    "smartly-sat": lambda options, overrides: _smartly_preset(
        "smartly-sat", options, overrides, rebuild=False
    ),
    "smartly-rebuild": lambda options, overrides: _smartly_preset(
        "smartly-rebuild", options, overrides, sat=False
    ),
    "smartly": lambda options, overrides: _smartly_preset(
        "smartly", options, overrides
    ),
}

#: preset names in the legacy OPTIMIZERS order
PRESET_NAMES = ("none", "yosys", "smartly-sat", "smartly-rebuild", "smartly")


def resolve_flow(flow: Union[str, FlowSpec],
                 options: Optional[SmartlyOptions] = None) -> FlowSpec:
    """Coerce a preset name, script string, or spec into a :class:`FlowSpec`."""
    if isinstance(flow, FlowSpec):
        return flow
    if flow in PRESETS:
        return FlowSpec.preset(flow, options=options)
    return FlowSpec.parse(flow)


__all__ = [
    "FIXPOINT_DIRECTIVE",
    "FlowScriptError",
    "FlowSpec",
    "PRESETS",
    "PRESET_NAMES",
    "PassStep",
    "resolve_flow",
]
