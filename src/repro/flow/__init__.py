"""Flows: the declarative Session/FlowSpec API, legacy shims, and the
Table II/III/industrial report renderers."""

from .pipeline import OPTIMIZERS, FlowResult, optimize, run_flow
from .reports import render_industrial, render_table2, render_table3
from .serve import FlowServer, serve_socket, serve_stdin
from .session import (
    EquivalenceError,
    PassRecord,
    RunReport,
    Session,
    SuiteReport,
    suite_cases,
)
from .spec import (
    FlowScriptError,
    FlowSpec,
    PassStep,
    PRESET_NAMES,
    PRESETS,
    resolve_flow,
)
from .sweep import (
    PRESET_WORKLOADS,
    PRESET_WORKLOAD_NAMES,
    SweepPoint,
    SweepReport,
    expand_grid,
    preset_workloads,
    run_sweep,
)
from .workers import JobOutcome, WorkerPool, run_job

__all__ = [
    "EquivalenceError",
    "FlowResult",
    "FlowScriptError",
    "FlowServer",
    "FlowSpec",
    "JobOutcome",
    "OPTIMIZERS",
    "PRESETS",
    "PRESET_NAMES",
    "PRESET_WORKLOADS",
    "PRESET_WORKLOAD_NAMES",
    "PassRecord",
    "PassStep",
    "RunReport",
    "Session",
    "SuiteReport",
    "SweepPoint",
    "SweepReport",
    "WorkerPool",
    "expand_grid",
    "optimize",
    "preset_workloads",
    "run_sweep",
    "render_industrial",
    "render_table2",
    "render_table3",
    "resolve_flow",
    "run_flow",
    "run_job",
    "serve_socket",
    "serve_stdin",
    "suite_cases",
]
