"""End-to-end flows and the Table II/III/industrial report renderers."""

from .pipeline import OPTIMIZERS, FlowResult, optimize, run_flow
from .reports import render_industrial, render_table2, render_table3

__all__ = [
    "FlowResult",
    "OPTIMIZERS",
    "optimize",
    "render_industrial",
    "render_table2",
    "render_table3",
    "run_flow",
]
