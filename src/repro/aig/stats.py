"""AIG statistics records used by the flow and the benchmark tables."""

from __future__ import annotations

from dataclasses import dataclass

from .aig import AIG


@dataclass(frozen=True)
class AigStats:
    """The numbers the paper reports per netlist."""

    num_inputs: int
    num_outputs: int
    num_ands: int
    levels: int

    @property
    def area(self) -> int:
        """AIG area = number of AND gates (the paper's metric)."""
        return self.num_ands

    def __str__(self) -> str:
        return (
            f"i={self.num_inputs} o={self.num_outputs} "
            f"and={self.num_ands} lev={self.levels}"
        )


def aig_stats(aig: AIG) -> AigStats:
    return AigStats(
        num_inputs=aig.num_inputs,
        num_outputs=len(aig.outputs),
        num_ands=aig.num_ands,
        levels=aig.levels(),
    )
