"""AIGER ASCII (``aag``) export/import.

Only the combinational subset is supported (no latches), which matches how
this library uses AIGs: flip-flop boundaries are cut before mapping.
"""

from __future__ import annotations

from typing import List, TextIO, Union

from .aig import AIG


def write_aiger(aig: AIG, stream: TextIO, symbols: bool = True) -> None:
    """Write the AIG in ASCII AIGER 1.9 ``aag`` format."""
    m = aig.max_var
    i = aig.num_inputs
    a = aig.num_ands
    o = len(aig.outputs)
    stream.write(f"aag {m} {i} 0 {o} {a}\n")
    for k in range(1, i + 1):
        stream.write(f"{2 * k}\n")
    for _name, lit in aig.outputs:
        stream.write(f"{lit}\n")
    base = i + 1
    for k, (f0, f1) in enumerate(aig._ands):
        lhs = 2 * (base + k)
        hi, lo = max(f0, f1), min(f0, f1)
        stream.write(f"{lhs} {hi} {lo}\n")
    if symbols:
        for k, name in enumerate(aig.input_names):
            stream.write(f"i{k} {name}\n")
        for k, (name, _lit) in enumerate(aig.outputs):
            stream.write(f"o{k} {name}\n")
        stream.write("c\nrepro smaRTLy aigmap\n")


def aiger_str(aig: AIG) -> str:
    import io

    buffer = io.StringIO()
    write_aiger(aig, buffer)
    return buffer.getvalue()


def read_aiger(source: Union[str, TextIO]) -> AIG:
    """Parse an ASCII AIGER file (combinational subset, no latches)."""
    if isinstance(source, str):
        lines: List[str] = source.splitlines()
    else:
        lines = source.read().splitlines()
    if not lines:
        raise ValueError("empty AIGER input")
    header = lines[0].split()
    if len(header) < 6 or header[0] != "aag":
        raise ValueError(f"bad AIGER header: {lines[0]!r}")
    m, i, latches, o, a = (int(x) for x in header[1:6])
    if latches:
        raise ValueError("latches are not supported")
    aig = AIG()
    pos = 1
    input_lits = []
    for _ in range(i):
        input_lits.append(int(lines[pos]))
        pos += 1
    output_lits = []
    for _ in range(o):
        output_lits.append(int(lines[pos]))
        pos += 1
    # ands must be declared in topological order in valid files
    for _ in range(a):
        lhs, f0, f1 = (int(x) for x in lines[pos].split())
        pos += 1
        aig._ands.append((min(f0, f1), max(f0, f1)))
        aig._strash[(min(f0, f1), max(f0, f1))] = lhs
    aig.input_names = [f"i{k}" for k in range(i)]
    # symbol table
    for line in lines[pos:]:
        if line.startswith("i"):
            idx, name = line[1:].split(" ", 1)
            aig.input_names[int(idx)] = name
        elif line.startswith("o"):
            idx, name = line[1:].split(" ", 1)
            k = int(idx)
            while len(aig.outputs) <= k:
                aig.outputs.append((f"o{len(aig.outputs)}", output_lits[len(aig.outputs)]))
            aig.outputs[k] = (name, output_lits[k])
        elif line.startswith("c"):
            break
    while len(aig.outputs) < o:
        k = len(aig.outputs)
        aig.outputs.append((f"o{k}", output_lits[k]))
    return aig
