"""Bit-blasting RTL netlists into AIGs (the ``aigmap`` equivalent).

Every combinational cell type is decomposed into 2-input AND/inverter
structure with the *same semantics* as the simulator and the Tseitin
encoder (pmux = priority select, unsigned arithmetic, logical shifts).
The per-cell decompositions live in the unified cell-semantics registry
(:mod:`repro.ir.celllib`); :class:`AigMapper` implements the registry's
:class:`~repro.ir.celllib.LoweringEmitter` protocol and only provides the
bit-to-literal bookkeeping around it.

Inputs of the AIG are the module's primary inputs plus sequential state
outputs (dff ``Q``) and undriven wires; outputs are the module's primary
outputs plus next-state inputs (dff ``D``), so all register-to-register
logic is counted — flip-flops themselves contribute no AND nodes, matching
the paper's "exclude flip-flop gates" accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import celllib
from ..ir.module import Cell, Module
from ..ir.signals import SigBit, State
from ..ir.walker import NetIndex
from .aig import AIG, FALSE_LIT, TRUE_LIT


class AigMapper(celllib.LoweringEmitter):
    """Maps one module into a fresh :class:`AIG`.

    The bit-to-literal map is exposed (:attr:`bit_lit`) so equivalence
    checking can map two modules into one shared AIG keyed by port names.
    """

    def __init__(
        self,
        module: Module,
        index: Optional[NetIndex] = None,
        aig: Optional[AIG] = None,
        input_lits: Optional[Dict[str, int]] = None,
    ):
        """``aig``/``input_lits`` allow mapping several modules into one
        shared AIG (used by the miter builder): ``input_lits`` maps input
        names like ``"a[3]"`` to preexisting AIG literals."""
        self.module = module
        self.index = index if index is not None else NetIndex(module)
        self.aig = aig if aig is not None else AIG()
        self.preset_inputs = input_lits if input_lits is not None else {}
        self.bit_lit: Dict[SigBit, int] = {}

    # -- public API -------------------------------------------------------------

    def run(self) -> AIG:
        """Map the whole module and register outputs; returns the AIG."""
        self._declare_inputs()
        for cell in self.index.topo_cells():
            spec = celllib.spec_for(cell.type)
            if spec.lower is not None:
                spec.lower(self, cell)
        sigmap = self.index.sigmap
        for wire in self.module.outputs:
            for i in range(wire.width):
                bit = sigmap.map_bit(SigBit(wire, i))
                self.aig.add_output(self.lit(bit), f"{wire.name}[{i}]")
        for cell in self.module.cells.values():
            for pname in celllib.spec_for(cell.type).next_state_ports:
                for i, bit in enumerate(cell.connections[pname]):
                    self.aig.add_output(
                        self.lit(sigmap.map_bit(bit)), f"{cell.name}.{pname}[{i}]"
                    )
        # instance bindings are boundary observables: parent cones feeding a
        # child count toward the parent's area (matching what those cones
        # would cost after flattening) and are compared by the miter
        for instance in self.module.instances.values():
            for pname in sorted(instance.connections):
                for i, bit in enumerate(instance.connections[pname]):
                    self.aig.add_output(
                        self.lit(sigmap.map_bit(bit)),
                        f"{instance.name}.{pname}[{i}]",
                    )
        return self.aig

    # -- LoweringEmitter protocol ------------------------------------------------

    def lit(self, bit: SigBit) -> int:
        cbit = self.index.sigmap.map_bit(bit)
        if cbit.is_const:
            if cbit.state is State.S1:
                return TRUE_LIT
            # x constants are mapped to 0 (a fixed, documented choice)
            return FALSE_LIT
        lit = self.bit_lit.get(cbit)
        if lit is None:
            raise KeyError(f"bit {cbit!r} mapped before its driver")
        return lit

    def port_lits(self, cell: Cell, port: str) -> List[int]:
        return [self.lit(bit) for bit in cell.connections[port]]

    def set_output(self, cell: Cell, port: str, lits: List[int]) -> None:
        sigmap = self.index.sigmap
        for bit, lit in zip(cell.connections[port], lits):
            self.bit_lit[sigmap.map_bit(bit)] = lit

    @property
    def false_lit(self) -> int:
        return FALSE_LIT

    @property
    def true_lit(self) -> int:
        return TRUE_LIT

    # -- internals ---------------------------------------------------------------

    def _declare_inputs(self) -> None:
        sigmap = self.index.sigmap
        declared = set()

        def declare(bit: SigBit, name: str) -> None:
            cbit = sigmap.map_bit(bit)
            if cbit.is_const or cbit in declared:
                return
            if self.index.comb_driver(cbit) is None:
                declared.add(cbit)
                preset = self.preset_inputs.get(name)
                self.bit_lit[cbit] = (
                    preset if preset is not None else self.aig.add_input(name)
                )

        for wire in self.module.wires.values():
            if wire.port_input:
                for i in range(wire.width):
                    declare(SigBit(wire, i), f"{wire.name}[{i}]")
        for cell in self.module.cells.values():
            for pname in celllib.spec_for(cell.type).state_ports:
                for i, bit in enumerate(cell.connections[pname]):
                    declare(bit, f"{cell.name}.{pname}[{i}]")
        # undriven instance binding bits (child-output nets) are sources
        # with deterministic boundary names, shared by the miter builder
        for instance in self.module.instances.values():
            for pname in sorted(instance.connections):
                for i, bit in enumerate(instance.connections[pname]):
                    declare(bit, f"{instance.name}.{pname}[{i}]")
        # any remaining undriven bits read by cells or outputs
        for cell in self.module.cells.values():
            for pname in celllib.spec_for(cell.type).input_ports:
                for bit in cell.connections[pname]:
                    declare(bit, repr(bit))
        for wire in self.module.outputs:
            for i in range(wire.width):
                declare(SigBit(wire, i), f"{wire.name}[{i}]")


def aig_map(module: Module, index: Optional[NetIndex] = None) -> AIG:
    """Map a module to an AIG (convenience wrapper around :class:`AigMapper`)."""
    return AigMapper(module, index).run()
