"""Bit-blasting RTL netlists into AIGs (the ``aigmap`` equivalent).

Every combinational cell type is decomposed into 2-input AND/inverter
structure with the *same semantics* as the simulator and the Tseitin
encoder (pmux = priority select, unsigned arithmetic, logical shifts).

Inputs of the AIG are the module's primary inputs plus dff ``Q`` outputs and
undriven wires; outputs are the module's primary outputs plus dff ``D`` (and
clock-enable style) inputs, so all register-to-register logic is counted —
flip-flops themselves contribute no AND nodes, matching the paper's "exclude
flip-flop gates" accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.cells import CellType, input_ports
from ..ir.module import Cell, Module
from ..ir.signals import SigBit, SigSpec, State
from ..ir.walker import NetIndex
from .aig import AIG, FALSE_LIT, TRUE_LIT


class AigMapper:
    """Maps one module into a fresh :class:`AIG`.

    The bit-to-literal map is exposed (:attr:`bit_lit`) so equivalence
    checking can map two modules into one shared AIG keyed by port names.
    """

    def __init__(
        self,
        module: Module,
        index: Optional[NetIndex] = None,
        aig: Optional[AIG] = None,
        input_lits: Optional[Dict[str, int]] = None,
    ):
        """``aig``/``input_lits`` allow mapping several modules into one
        shared AIG (used by the miter builder): ``input_lits`` maps input
        names like ``"a[3]"`` to preexisting AIG literals."""
        self.module = module
        self.index = index if index is not None else NetIndex(module)
        self.aig = aig if aig is not None else AIG()
        self.preset_inputs = input_lits if input_lits is not None else {}
        self.bit_lit: Dict[SigBit, int] = {}

    # -- public API -------------------------------------------------------------

    def run(self) -> AIG:
        """Map the whole module and register outputs; returns the AIG."""
        self._declare_inputs()
        for cell in self.index.topo_cells():
            self._map_cell(cell)
        sigmap = self.index.sigmap
        for wire in self.module.outputs:
            for i in range(wire.width):
                bit = sigmap.map_bit(SigBit(wire, i))
                self.aig.add_output(self._lit(bit), f"{wire.name}[{i}]")
        for cell in self.module.cells.values():
            if cell.type is CellType.DFF:
                for i, bit in enumerate(cell.connections["D"]):
                    self.aig.add_output(
                        self._lit(sigmap.map_bit(bit)), f"{cell.name}.D[{i}]"
                    )
        # instance bindings are boundary observables: parent cones feeding a
        # child count toward the parent's area (matching what those cones
        # would cost after flattening) and are compared by the miter
        for instance in self.module.instances.values():
            for pname in sorted(instance.connections):
                for i, bit in enumerate(instance.connections[pname]):
                    self.aig.add_output(
                        self._lit(sigmap.map_bit(bit)),
                        f"{instance.name}.{pname}[{i}]",
                    )
        return self.aig

    # -- internals ---------------------------------------------------------------

    def _declare_inputs(self) -> None:
        sigmap = self.index.sigmap
        declared = set()

        def declare(bit: SigBit, name: str) -> None:
            cbit = sigmap.map_bit(bit)
            if cbit.is_const or cbit in declared:
                return
            if self.index.comb_driver(cbit) is None:
                declared.add(cbit)
                preset = self.preset_inputs.get(name)
                self.bit_lit[cbit] = (
                    preset if preset is not None else self.aig.add_input(name)
                )

        for wire in self.module.wires.values():
            if wire.port_input:
                for i in range(wire.width):
                    declare(SigBit(wire, i), f"{wire.name}[{i}]")
        for cell in self.module.cells.values():
            if cell.type is CellType.DFF:
                for i, bit in enumerate(cell.connections["Q"]):
                    declare(bit, f"{cell.name}.Q[{i}]")
        # undriven instance binding bits (child-output nets) are sources
        # with deterministic boundary names, shared by the miter builder
        for instance in self.module.instances.values():
            for pname in sorted(instance.connections):
                for i, bit in enumerate(instance.connections[pname]):
                    declare(bit, f"{instance.name}.{pname}[{i}]")
        # any remaining undriven bits read by cells or outputs
        for cell in self.module.cells.values():
            for pname in input_ports(cell.type):
                for bit in cell.connections[pname]:
                    declare(bit, repr(bit))
        for wire in self.module.outputs:
            for i in range(wire.width):
                declare(SigBit(wire, i), f"{wire.name}[{i}]")

    def _lit(self, bit: SigBit) -> int:
        cbit = self.index.sigmap.map_bit(bit)
        if cbit.is_const:
            if cbit.state is State.S1:
                return TRUE_LIT
            # x constants are mapped to 0 (a fixed, documented choice)
            return FALSE_LIT
        lit = self.bit_lit.get(cbit)
        if lit is None:
            raise KeyError(f"bit {cbit!r} mapped before its driver")
        return lit

    def _port_lits(self, cell: Cell, port: str) -> List[int]:
        return [self._lit(bit) for bit in cell.connections[port]]

    def _set_output(self, cell: Cell, port: str, lits: List[int]) -> None:
        sigmap = self.index.sigmap
        for bit, lit in zip(cell.connections[port], lits):
            self.bit_lit[sigmap.map_bit(bit)] = lit

    def _map_cell(self, cell: Cell) -> None:
        aig = self.aig
        t = cell.type
        if t is CellType.DFF:
            return
        if t is CellType.NOT:
            a = self._port_lits(cell, "A")
            self._set_output(cell, "Y", [lit ^ 1 for lit in a])
            return
        if t in (CellType.AND, CellType.OR, CellType.XOR, CellType.XNOR,
                 CellType.NAND, CellType.NOR):
            a = self._port_lits(cell, "A")
            b = self._port_lits(cell, "B")
            op = {
                CellType.AND: aig.and_,
                CellType.OR: aig.or_,
                CellType.XOR: aig.xor,
                CellType.XNOR: aig.xnor,
                CellType.NAND: lambda x, y: aig.and_(x, y) ^ 1,
                CellType.NOR: lambda x, y: aig.or_(x, y) ^ 1,
            }[t]
            self._set_output(cell, "Y", [op(x, y) for x, y in zip(a, b)])
            return
        if t is CellType.MUX:
            a = self._port_lits(cell, "A")
            b = self._port_lits(cell, "B")
            s = self._port_lits(cell, "S")[0]
            self._set_output(cell, "Y", [aig.mux(x, y, s) for x, y in zip(a, b)])
            return
        if t is CellType.PMUX:
            self._map_pmux(cell)
            return
        if t is CellType.EQ:
            y = self._eq_lit(cell)
            self._set_output(cell, "Y", [y])
            return
        if t is CellType.NE:
            self._set_output(cell, "Y", [self._eq_lit(cell) ^ 1])
            return
        if t is CellType.LT:
            a = self._port_lits(cell, "A")
            b = self._port_lits(cell, "B")
            self._set_output(cell, "Y", [self._ult(a, b)])
            return
        if t is CellType.LE:
            a = self._port_lits(cell, "A")
            b = self._port_lits(cell, "B")
            self._set_output(cell, "Y", [self._ult(b, a) ^ 1])
            return
        if t is CellType.ADD:
            a = self._port_lits(cell, "A")
            b = self._port_lits(cell, "B")
            self._set_output(cell, "Y", self._ripple_add(a, b, FALSE_LIT))
            return
        if t is CellType.SUB:
            a = self._port_lits(cell, "A")
            b = [lit ^ 1 for lit in self._port_lits(cell, "B")]
            self._set_output(cell, "Y", self._ripple_add(a, b, TRUE_LIT))
            return
        if t in (CellType.SHL, CellType.SHR):
            self._map_shift(cell, left=t is CellType.SHL)
            return
        if t is CellType.REDUCE_AND:
            self._set_output(cell, "Y", [aig.and_reduce(self._port_lits(cell, "A"))])
            return
        if t in (CellType.REDUCE_OR, CellType.REDUCE_BOOL):
            self._set_output(cell, "Y", [aig.or_reduce(self._port_lits(cell, "A"))])
            return
        if t is CellType.REDUCE_XOR:
            self._set_output(cell, "Y", [aig.xor_reduce(self._port_lits(cell, "A"))])
            return
        if t is CellType.LOGIC_NOT:
            self._set_output(
                cell, "Y", [aig.or_reduce(self._port_lits(cell, "A")) ^ 1]
            )
            return
        if t in (CellType.LOGIC_AND, CellType.LOGIC_OR):
            a_any = aig.or_reduce(self._port_lits(cell, "A"))
            b_any = aig.or_reduce(self._port_lits(cell, "B"))
            y = aig.and_(a_any, b_any) if t is CellType.LOGIC_AND else aig.or_(a_any, b_any)
            self._set_output(cell, "Y", [y])
            return
        raise NotImplementedError(f"no AIG mapping for cell type {t}")

    def _map_pmux(self, cell: Cell) -> None:
        aig = self.aig
        width = cell.width
        current = self._port_lits(cell, "A")
        b = self._port_lits(cell, "B")
        s = self._port_lits(cell, "S")
        for i in range(cell.n - 1, -1, -1):
            branch = b[i * width:(i + 1) * width]
            current = [aig.mux(cur, br, s[i]) for cur, br in zip(current, branch)]
        self._set_output(cell, "Y", current)

    def _eq_lit(self, cell: Cell) -> int:
        a = self._port_lits(cell, "A")
        b = self._port_lits(cell, "B")
        return self.aig.and_reduce([self.aig.xnor(x, y) for x, y in zip(a, b)])

    def _ult(self, a: List[int], b: List[int]) -> int:
        aig = self.aig
        lt = FALSE_LIT
        for x, y in zip(a, b):
            eq = aig.xnor(x, y)
            lt = aig.or_(aig.and_(x ^ 1, y), aig.and_(eq, lt))
        return lt

    def _ripple_add(self, a: List[int], b: List[int], carry: int) -> List[int]:
        aig = self.aig
        result = []
        for x, y in zip(a, b):
            axb = aig.xor(x, y)
            result.append(aig.xor(axb, carry))
            carry = aig.or_(aig.and_(x, y), aig.and_(carry, axb))
        return result

    def _map_shift(self, cell: Cell, left: bool) -> None:
        aig = self.aig
        width = cell.width
        current = self._port_lits(cell, "A")
        for j, sbit in enumerate(cell.connections["B"]):
            s = self._lit(sbit)
            amount = 1 << j
            if amount >= width:
                shifted = [FALSE_LIT] * width
            elif left:
                shifted = [FALSE_LIT] * amount + current[: width - amount]
            else:
                shifted = current[amount:] + [FALSE_LIT] * amount
            current = [aig.mux(cur, sh, s) for cur, sh in zip(current, shifted)]
        self._set_output(cell, "Y", current)


def aig_map(module: Module, index: Optional[NetIndex] = None) -> AIG:
    """Map a module to an AIG (convenience wrapper around :class:`AigMapper`)."""
    return AigMapper(module, index).run()
