"""AIG-to-CNF translation for SAT-based equivalence checking.

Each AIG variable becomes one solver variable; AND nodes get the standard
three clauses.  Much leaner than word-level Tseitin for miter solving.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sat.solver import Solver
from .aig import AIG


def aig_to_solver(
    aig: AIG, solver: Optional[Solver] = None
) -> Tuple[Solver, List[int]]:
    """Encode the AIG; returns ``(solver, var_map)``.

    ``var_map[v]`` is the solver variable for AIG variable ``v`` (index 0
    holds the constant-true solver variable so AIG literal translation is
    uniform).
    """
    if solver is None:
        solver = Solver()
    const_var = solver.new_var()
    solver.add_clause([const_var])  # AIG var 0 is constant FALSE; lit 1 TRUE
    var_map: List[int] = [const_var]
    for _ in range(aig.max_var):
        var_map.append(solver.new_var())

    def lit(aig_lit: int) -> int:
        var = var_map[aig_lit >> 1]
        # AIG literal 0 = false = NOT const_true
        if aig_lit >> 1 == 0:
            base = -const_var
        else:
            base = var
        return -base if aig_lit & 1 else base

    base_var = aig.num_inputs + 1
    for i, (f0, f1) in enumerate(aig._ands):
        y = var_map[base_var + i]
        a, b = lit(f0), lit(f1)
        solver.add_clause([-a, -b, y])
        solver.add_clause([a, -y])
        solver.add_clause([b, -y])
    return solver, var_map


def aig_lit_to_solver_lit(aig_lit: int, var_map: List[int], const_var: int) -> int:
    """Translate one AIG literal given the map from :func:`aig_to_solver`."""
    if aig_lit >> 1 == 0:
        base = -const_var
    else:
        base = var_map[aig_lit >> 1]
    return -base if aig_lit & 1 else base
