"""AIG -> netlist import: rebuild a Module from an And-Inverter Graph.

Complements :func:`~repro.aig.aigmap.aig_map`: together they form a lossless
(functionally) bridge between the word-level IR and the bit-level AIG, so
AIGER files can enter the flow (statistics, equivalence checking, Verilog
export) and mapped designs can round-trip in tests.

Inverters ride on complemented edges, so the netlist uses one ``and`` cell
per AIG node plus at most one ``not`` per distinct complemented literal.
Input/output names of the AIG are preserved; names like ``a[3]`` are
re-assembled into multi-bit wires.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..ir.cells import CellType
from ..ir.module import Module
from ..ir.signals import BIT0, BIT1, SigBit, SigSpec
from .aig import AIG

_BIT_NAME = re.compile(r"^(.*)\[(\d+)\]$")


def _group_bit_names(names: List[str]) -> Dict[str, int]:
    """Group ``name[i]`` entries into vectors: base name -> width."""
    widths: Dict[str, int] = {}
    for name in names:
        match = _BIT_NAME.match(name)
        if match:
            base, index = match.group(1), int(match.group(2))
            widths[base] = max(widths.get(base, 0), index + 1)
        else:
            widths[name] = max(widths.get(name, 0), 1)
    return widths


def aig_to_module(aig: AIG, name: str = "from_aig") -> Module:
    """Build a Module whose combinational function equals the AIG's.

    Sanitises port names (``.`` and ``$`` become ``_``) so the result also
    survives the Verilog writer and the frontend.
    """
    module = Module(name)

    def sanitize(text: str) -> str:
        return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in text)

    # -- inputs --------------------------------------------------------------
    in_widths = _group_bit_names(aig.input_names)
    wires: Dict[str, object] = {}
    for base, width in in_widths.items():
        wires[base] = module.add_wire(sanitize(base), width, port_input=True)

    bit_of_input: Dict[int, SigBit] = {}
    counters: Dict[str, int] = {}
    for position, full_name in enumerate(aig.input_names):
        match = _BIT_NAME.match(full_name)
        if match:
            base, index = match.group(1), int(match.group(2))
        else:
            base, index = full_name, 0
        bit_of_input[position + 1] = SigBit(wires[base], index)

    # -- AND nodes -------------------------------------------------------------
    lit_spec: Dict[int, SigBit] = {}
    not_cache: Dict[int, SigBit] = {}

    def spec_of(lit: int) -> SigBit:
        if lit == 0:
            return BIT0
        if lit == 1:
            return BIT1
        var = lit >> 1
        if lit & 1 == 0:
            if var in lit_spec:
                return lit_spec[var]
            bit = bit_of_input[var]
            lit_spec[var] = bit
            return bit
        cached = not_cache.get(var)
        if cached is not None:
            return cached
        cell = module.add_cell(CellType.NOT, A=SigSpec([spec_of(lit & ~1)]))
        out = cell.connections["Y"][0]
        not_cache[var] = out
        return out

    base_var = aig.num_inputs + 1
    for offset, (f0, f1) in enumerate(aig._ands):
        cell = module.add_cell(
            CellType.AND,
            A=SigSpec([spec_of(f0)]),
            B=SigSpec([spec_of(f1)]),
        )
        lit_spec[base_var + offset] = cell.connections["Y"][0]

    # -- outputs ----------------------------------------------------------------
    out_widths = _group_bit_names([name for name, _lit in aig.outputs])
    out_wires = {
        base: module.add_wire(sanitize(base), width, port_output=True)
        for base, width in out_widths.items()
    }
    for full_name, lit in aig.outputs:
        match = _BIT_NAME.match(full_name)
        if match:
            base, index = match.group(1), int(match.group(2))
        else:
            base, index = full_name, 0
        module.connect(
            SigSpec([SigBit(out_wires[base], index)]), SigSpec([spec_of(lit)])
        )
    return module
