"""Structurally-hashed And-Inverter Graph.

Literal convention follows AIGER: variable ``v`` has positive literal
``2*v`` and complemented literal ``2*v + 1``; variable 0 is constant false
(so literal 0 = false, literal 1 = true).  Inputs occupy variables
``1..num_inputs``; AND nodes follow.

Construction folds constants and trivial cases and hashes structurally, so
identical AND nodes are created only once — this mirrors what Yosys's
``aigmap`` + ``strash``-style mapping produces and keeps the area metric
(number of AND nodes) honest.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

FALSE_LIT = 0
TRUE_LIT = 1


class AIG:
    """A combinational AIG with named inputs and outputs."""

    def __init__(self):
        #: fanin literal pairs; node i (0-based) is variable num_inputs+1+i
        self._ands: List[Tuple[int, int]] = []
        self._strash: Dict[Tuple[int, int], int] = {}
        self.input_names: List[str] = []
        self.outputs: List[Tuple[str, int]] = []

    # -- structure ----------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return len(self.input_names)

    @property
    def num_ands(self) -> int:
        return len(self._ands)

    @property
    def max_var(self) -> int:
        return self.num_inputs + len(self._ands)

    def structural_digest(self, *extra: int) -> str:
        """Name-free BLAKE2b digest of the AND-node structure.

        Covers the input *count* and the fanin-literal table (plus any
        ``extra`` literals the caller wants pinned, e.g. a miter output)
        but not input names: node numbering already encodes how inputs
        feed the structure, so equal digests mean equal graphs up to
        renaming — the property the exportable CEC verdict cache keys on.
        """
        payload = (self.num_inputs, tuple(self._ands), tuple(extra))
        return hashlib.blake2b(
            repr(payload).encode("utf-8"), digest_size=16
        ).hexdigest()

    def and_fanins(self, var: int) -> Tuple[int, int]:
        """Fanin literals of the AND node with the given variable index."""
        index = var - self.num_inputs - 1
        if index < 0:
            raise IndexError(f"variable {var} is not an AND node")
        return self._ands[index]

    def is_and_var(self, var: int) -> bool:
        return var > self.num_inputs

    def is_input_var(self, var: int) -> bool:
        return 1 <= var <= self.num_inputs

    # -- construction -------------------------------------------------------

    def add_input(self, name: Optional[str] = None) -> int:
        """Add a primary input; AND nodes must not exist yet (AIGER order)."""
        if self._ands:
            raise ValueError("all inputs must be added before AND nodes")
        if name is None:
            name = f"i{len(self.input_names)}"
        self.input_names.append(name)
        return 2 * len(self.input_names)

    def add_output(self, lit: int, name: Optional[str] = None) -> None:
        if name is None:
            name = f"o{len(self.outputs)}"
        self.outputs.append((name, lit))

    def not_(self, a: int) -> int:
        return a ^ 1

    def and_(self, a: int, b: int) -> int:
        """AND with constant folding and structural hashing."""
        if a > b:
            a, b = b, a
        if a == FALSE_LIT:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if a == b:
            return a
        if a == b ^ 1:
            return FALSE_LIT
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return existing
        self._ands.append(key)
        lit = 2 * (self.num_inputs + len(self._ands))
        self._strash[key] = lit
        return lit

    def or_(self, a: int, b: int) -> int:
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def xnor(self, a: int, b: int) -> int:
        return self.xor(a, b) ^ 1

    def mux(self, a: int, b: int, s: int) -> int:
        """``s ? b : a`` — 3 AND nodes in the worst case."""
        return self.or_(self.and_(s, b), self.and_(s ^ 1, a))

    def and_reduce(self, lits: Sequence[int]) -> int:
        """Balanced conjunction tree."""
        items = list(lits)
        if not items:
            return TRUE_LIT
        while len(items) > 1:
            nxt = [
                self.and_(items[i], items[i + 1])
                for i in range(0, len(items) - 1, 2)
            ]
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    def or_reduce(self, lits: Sequence[int]) -> int:
        return self.and_reduce([l ^ 1 for l in lits]) ^ 1

    def xor_reduce(self, lits: Sequence[int]) -> int:
        items = list(lits)
        if not items:
            return FALSE_LIT
        while len(items) > 1:
            nxt = [
                self.xor(items[i], items[i + 1])
                for i in range(0, len(items) - 1, 2)
            ]
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    # -- evaluation ------------------------------------------------------------

    def eval_masks(self, input_masks: Sequence[int], nvec: int = 1) -> Dict[int, int]:
        """Bit-parallel evaluation: returns a mask per *variable*.

        ``input_masks[i]`` is the mask of input variable ``i+1``; bit *v* of
        a mask is the value in vector *v*.
        """
        if len(input_masks) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input masks, got {len(input_masks)}"
            )
        mask = (1 << nvec) - 1
        values: List[int] = [0] * (self.max_var + 1)
        for i, m in enumerate(input_masks):
            values[i + 1] = m & mask

        def lit_val(lit: int) -> int:
            value = values[lit >> 1]
            return (~value & mask) if lit & 1 else value

        base = self.num_inputs + 1
        for i, (f0, f1) in enumerate(self._ands):
            values[base + i] = lit_val(f0) & lit_val(f1)
        return {var: values[var] for var in range(1, self.max_var + 1)}

    def eval_outputs(self, input_values: Sequence[int]) -> List[int]:
        """Single-vector evaluation; inputs/outputs are 0/1 ints."""
        values = self.eval_masks([v & 1 for v in input_values], nvec=1)

        def lit_val(lit: int) -> int:
            if lit <= 1:
                return lit
            value = values[lit >> 1]
            return (value ^ 1) if lit & 1 else value

        return [lit_val(lit) for _name, lit in self.outputs]

    # -- analysis ----------------------------------------------------------------

    def levels(self) -> int:
        """Longest input-to-output path measured in AND nodes."""
        depth: List[int] = [0] * (self.max_var + 1)
        base = self.num_inputs + 1
        for i, (f0, f1) in enumerate(self._ands):
            depth[base + i] = 1 + max(depth[f0 >> 1], depth[f1 >> 1])
        if not self.outputs:
            return max(depth) if depth else 0
        return max((depth[lit >> 1] for _n, lit in self.outputs), default=0)

    def cone_size(self, lits: Iterable[int]) -> int:
        """Number of AND nodes in the transitive fanin of the given literals."""
        seen = set()
        stack = [lit >> 1 for lit in lits]
        count = 0
        while stack:
            var = stack.pop()
            if var in seen or not self.is_and_var(var):
                continue
            seen.add(var)
            count += 1
            f0, f1 = self.and_fanins(var)
            stack.append(f0 >> 1)
            stack.append(f1 >> 1)
        return count

    def __repr__(self) -> str:
        return (
            f"AIG({self.num_inputs} inputs, {self.num_ands} ands, "
            f"{len(self.outputs)} outputs)"
        )
