"""And-Inverter Graph backend: mapping, statistics, AIGER I/O, CNF."""

from .aig import AIG, FALSE_LIT, TRUE_LIT
from .aigmap import AigMapper, aig_map
from .aiger import aiger_str, read_aiger, write_aiger
from .cnf import aig_lit_to_solver_lit, aig_to_solver
from .stats import AigStats, aig_stats
from .to_netlist import aig_to_module

__all__ = [
    "AIG",
    "AigMapper",
    "AigStats",
    "FALSE_LIT",
    "TRUE_LIT",
    "aig_lit_to_solver_lit",
    "aig_map",
    "aig_stats",
    "aig_to_module",
    "aiger_str",
    "read_aiger",
    "write_aiger",
]
