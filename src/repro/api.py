"""``repro.api`` — the stable public surface of the library.

Everything a tool builder needs in one import::

    from repro.api import FlowSpec, Session

    session = Session.from_verilog(source)
    report = session.run(FlowSpec.parse("opt_expr; smartly k=6; opt_clean"),
                         check=True)
    print(report.to_json(indent=2))

* :class:`FlowSpec` — declarative pipelines: parse Yosys-like scripts,
  compose programmatically, or pick one of the five presets
  (:data:`PRESET_NAMES`).
* :class:`Session` — owns a :class:`~repro.ir.design.Design`, caches
  pre-optimization baselines, runs flows over modules, returns
  :class:`RunReport` records, fans suites out in parallel via
  :meth:`Session.run_suite`, and optimizes instance trees bottom-up
  with isomorphic-class replay via :meth:`Session.run_hierarchy`
  (returning :class:`HierarchyReport`).
* Hierarchy IR — :func:`hierarchy` elaborates an instance tree
  (:class:`HierarchyInfo`), :func:`flatten` inlines it, and both raise
  :class:`HierarchyError` on malformed trees.
* :mod:`repro.events` re-exports — the structured progress channel
  (:class:`EventBus`, :class:`EventLog`, :class:`PrintObserver`).
* Persistence — :class:`~repro.core.store.CacheStore` (the
  content-addressed on-disk cache store behind ``Session(store_path=)``),
  the :func:`~repro.core.store.atomic_write_text` /
  :func:`~repro.core.store.atomic_write_bytes` crash-safe artifact
  writers, and :class:`~repro.flow.serve.FlowServer` — the ``cli serve``
  JSON-lines daemon multiplexing flow jobs onto warm-started sessions.
* Robustness — :class:`~repro.flow.workers.WorkerPool` (the supervised
  worker-subprocess pool behind ``serve --isolation process``) and the
  :mod:`repro.core.faults` chaos registry (:data:`~repro.core.faults.
  FAULT_NAMES`, :class:`~repro.core.faults.InjectedFault`) that proves
  the serve layer's survival invariants on demand.

Legacy entry points (``repro.flow.run_flow``, ``repro.flow.optimize``,
``repro.core.run_smartly``) remain as deprecated shims over this layer.
"""

from .core.faults import (
    FAULT_NAMES,
    FaultError,
    FaultSpec,
    InjectedFault,
)
from .core.smartly import SmartlyOptions
from .events import (
    EventBus,
    EventLog,
    FlowEvent,
    JsonLinesObserver,
    PrintObserver,
)
from .core.store import CacheStore, atomic_write_bytes, atomic_write_text
from .flow.reports import render_industrial, render_table2, render_table3
from .flow.serve import FlowServer, serve_socket, serve_stdin
from .flow.session import (
    EquivalenceError,
    HierarchyReport,
    PassRecord,
    RunReport,
    Session,
    SuiteReport,
    suite_cases,
)
from .flow.spec import (
    FlowScriptError,
    FlowSpec,
    PassStep,
    PRESET_NAMES,
    PRESETS,
    resolve_flow,
)
from .flow.sweep import (
    PRESET_WORKLOADS,
    PRESET_WORKLOAD_NAMES,
    SweepPoint,
    SweepReport,
    expand_grid,
    preset_workloads,
    run_sweep,
)
from .flow.workers import JobOutcome, WorkerPool
from .frontend.yosys_json import YosysJsonError, load_yosys_json, read_yosys_json
from .ir.design import Design
from .ir.json_writer import write_yosys_json, yosys_json_dict, yosys_json_str
from .ir.hierarchy import HierarchyError, HierarchyInfo, flatten, hierarchy

__all__ = [
    "CacheStore",
    "Design",
    "EquivalenceError",
    "FAULT_NAMES",
    "FaultError",
    "FaultSpec",
    "HierarchyError",
    "HierarchyInfo",
    "HierarchyReport",
    "EventBus",
    "EventLog",
    "FlowEvent",
    "FlowScriptError",
    "FlowServer",
    "FlowSpec",
    "InjectedFault",
    "JobOutcome",
    "JsonLinesObserver",
    "PRESETS",
    "PRESET_NAMES",
    "PRESET_WORKLOADS",
    "PRESET_WORKLOAD_NAMES",
    "PassRecord",
    "PassStep",
    "PrintObserver",
    "RunReport",
    "Session",
    "SmartlyOptions",
    "SuiteReport",
    "SweepPoint",
    "SweepReport",
    "WorkerPool",
    "YosysJsonError",
    "atomic_write_bytes",
    "atomic_write_text",
    "expand_grid",
    "flatten",
    "hierarchy",
    "load_yosys_json",
    "preset_workloads",
    "read_yosys_json",
    "render_industrial",
    "render_table2",
    "render_table3",
    "resolve_flow",
    "run_sweep",
    "serve_socket",
    "serve_stdin",
    "suite_cases",
    "write_yosys_json",
    "yosys_json_dict",
    "yosys_json_str",
]
