"""Word-level RTL netlist intermediate representation.

The public surface mirrors a small subset of Yosys RTLIL:

* :class:`~repro.ir.signals.Wire`, :class:`~repro.ir.signals.SigBit`,
  :class:`~repro.ir.signals.SigSpec`, :class:`~repro.ir.signals.State`
* :class:`~repro.ir.module.Module`, :class:`~repro.ir.module.Cell`,
  :class:`~repro.ir.module.SigMap`
* :class:`~repro.ir.cells.CellType` and the port-spec helpers
* :class:`~repro.ir.builder.Circuit` — fluent construction
* :class:`~repro.ir.walker.NetIndex` — drivers/readers/cones/topological order
* :func:`~repro.ir.validate.validate_module`
* :func:`~repro.ir.struct_hash.struct_signature` — canonical name-free
  sub-graph signatures (plus :class:`~repro.ir.struct_hash.StructKeyMemo`
  and the :func:`~repro.ir.struct_hash.renamed_copy` verification helper)
"""

from .builder import Circuit
from .celllib import (
    CellSpec,
    all_specs,
    spec_for,
    spec_for_yosys,
)
from .cells import (
    BITWISE_BINARY_TYPES,
    COMBINATIONAL_TYPES,
    COMPARE_TYPES,
    CellType,
    MUX_TYPES,
    SINGLE_BIT_OUTPUT_TYPES,
    UNARY_TYPES,
    expected_width,
    input_ports,
    output_ports,
    port_spec,
)
from .design import Design
from .module import Cell, Module, SigMap
from .signals import (
    BIT0,
    BIT1,
    BITX,
    SigBit,
    SigSpec,
    State,
    Wire,
    concat,
    const_bit,
)
from .struct_hash import (
    StructKeyMemo,
    module_signature,
    renamed_copy,
    struct_signature,
    subgraph_signature,
)
from .json_writer import (
    YosysJsonWriter,
    write_yosys_json,
    yosys_json_dict,
    yosys_json_str,
)
from .validate import ValidationError, check_module, validate_module
from .verilog_writer import VerilogWriter, verilog_str, write_verilog
from .walker import CombLoopError, DriverConflictError, NetIndex

__all__ = [
    "BIT0",
    "BIT1",
    "BITX",
    "BITWISE_BINARY_TYPES",
    "COMBINATIONAL_TYPES",
    "COMPARE_TYPES",
    "Cell",
    "CellSpec",
    "CellType",
    "Circuit",
    "CombLoopError",
    "Design",
    "DriverConflictError",
    "MUX_TYPES",
    "Module",
    "NetIndex",
    "SINGLE_BIT_OUTPUT_TYPES",
    "SigBit",
    "SigMap",
    "SigSpec",
    "State",
    "StructKeyMemo",
    "UNARY_TYPES",
    "ValidationError",
    "Wire",
    "all_specs",
    "check_module",
    "concat",
    "const_bit",
    "expected_width",
    "input_ports",
    "module_signature",
    "output_ports",
    "port_spec",
    "renamed_copy",
    "spec_for",
    "spec_for_yosys",
    "struct_signature",
    "subgraph_signature",
    "validate_module",
    "VerilogWriter",
    "YosysJsonWriter",
    "verilog_str",
    "write_verilog",
    "write_yosys_json",
    "yosys_json_dict",
    "yosys_json_str",
]
