"""Module and Cell containers, plus the :class:`SigMap` alias resolver.

Structural edits are observable: :meth:`Module.add_listener` registers a
callable that receives a :class:`ModuleEdit` record for every ``add_cell`` /
``remove_cell`` / ``Cell.set_port`` / ``connect`` / wire edit.  The shared
live :class:`~repro.ir.walker.NetIndex` returned by :meth:`Module.net_index`
subscribes to this channel and patches itself instead of being rebuilt at
every pass entry; the pass framework subscribes a recorder that accumulates
each pass's touched-cell set for the incremental dirty-set engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from .cells import (
    CellType,
    MUX_TYPES,
    PortDir,
    expected_width,
    input_ports,
    output_ports,
    port_spec,
)
from .signals import SigBit, SigLike, SigSpec, Wire

# -- structural edit notifications ---------------------------------------------

CELL_ADDED = "cell_added"
CELL_REMOVED = "cell_removed"
PORT_CHANGED = "port_changed"
CONNECTED = "connected"
CONNECTIONS_REPLACED = "connections_replaced"
WIRE_ADDED = "wire_added"
WIRE_REMOVED = "wire_removed"
INSTANCE_ADDED = "instance_added"
INSTANCE_REMOVED = "instance_removed"


@dataclass(frozen=True)
class ModuleEdit:
    """One structural edit, published to :meth:`Module.add_listener` hooks.

    ``ports`` carries a snapshot of the cell's connections at event time for
    ``cell_added``/``cell_removed`` (the live cell object may be rewired
    later, so listeners replaying buffered edits need the historic specs).
    """

    kind: str
    cell: Optional[Cell] = None
    port: Optional[str] = None
    old: Optional[SigSpec] = None
    new: Optional[SigSpec] = None
    ports: Optional[Dict[str, SigSpec]] = None
    lhs: Optional[SigSpec] = None
    rhs: Optional[SigSpec] = None
    wire: Optional[Wire] = None
    instance: Optional["Instance"] = None


ModuleListener = Callable[[ModuleEdit], None]


class Cell:
    """An instance of a :class:`CellType` with named port connections.

    ``width`` is the cell's data width ``W``; ``n`` is the pmux branch count
    or the shift-amount width (1 for everything else).

    ``version`` counts port rewires (every :meth:`set_port`); caches keyed
    on cell content — e.g. the :class:`~repro.sat.oracle.SatOracle` CNF
    contexts — use ``(name, version)`` pairs to detect stale entries after
    an optimization pass mutates the netlist mid-flight.
    """

    __slots__ = ("name", "type", "width", "n", "connections", "attributes",
                 "version", "_module")

    def __init__(self, name: str, ctype: CellType, width: int, n: int = 1):
        if width < 1:
            raise ValueError(f"cell {name!r}: width must be >= 1")
        if n < 1:
            raise ValueError(f"cell {name!r}: n must be >= 1")
        self.name = name
        self.type = ctype
        self.width = width
        self.n = n
        self.connections: Dict[str, SigSpec] = {}
        self.attributes: dict = {}
        self.version = 0
        #: owning module once registered (set by Module, cleared on removal);
        #: rewires of registered cells publish ModuleEdit notifications
        self._module: Optional["Module"] = None

    def port(self, name: str) -> SigSpec:
        """The SigSpec connected to the given port."""
        return self.connections[name]

    def set_port(self, name: str, spec: SigLike) -> None:
        """Connect ``spec`` to port ``name`` (width-checked).

        Bare ints/bools are sized to the port; explicit signals must match
        the port width exactly — silent resizing hides real bugs.
        """
        want = expected_width(self.type, name, self.width, self.n)
        if isinstance(spec, (int, bool)):
            sig = SigSpec.coerce(spec, want)
        else:
            sig = SigSpec.coerce(spec)
        if len(sig) != want:
            raise ValueError(
                f"cell {self.name!r} ({self.type}): port {name} expects width "
                f"{want}, got {len(sig)}"
            )
        old = self.connections.get(name)
        self.connections[name] = sig
        self.version += 1
        module = self._module
        if module is not None and module._listeners:
            module._notify(ModuleEdit(
                PORT_CHANGED, cell=self, port=name, old=old, new=sig
            ))

    @property
    def is_combinational(self) -> bool:
        return self.type is not CellType.DFF

    @property
    def is_mux(self) -> bool:
        return self.type in MUX_TYPES

    def input_bits(self) -> List[SigBit]:
        """All bits feeding the cell's input ports, in port order."""
        bits: List[SigBit] = []
        for name in input_ports(self.type):
            bits.extend(self.connections[name])
        return bits

    def output_bits(self) -> List[SigBit]:
        bits: List[SigBit] = []
        for name in output_ports(self.type):
            bits.extend(self.connections[name])
        return bits

    def pmux_branch(self, index: int) -> SigSpec:
        """The ``B`` slice selected by ``S[index]`` of a pmux."""
        if self.type is not CellType.PMUX:
            raise TypeError(f"{self.name!r} is not a pmux")
        if not (0 <= index < self.n):
            raise IndexError(f"pmux branch {index} out of range (n={self.n})")
        b = self.connections["B"]
        return b[index * self.width:(index + 1) * self.width]

    def __repr__(self) -> str:
        return f"Cell({self.name}: {self.type} W={self.width}" + (
            f" N={self.n})" if self.n != 1 else ")"
        )


class Instance:
    """One instantiation of a child module inside a parent module.

    ``connections`` maps *child port names* to the parent-side signals bound
    to them; directions are resolved against the child module's port wires
    only when a :class:`~repro.ir.design.Design` is elaborated
    (:func:`repro.ir.hierarchy.hierarchy`), so an ``Instance`` stays a plain
    record the optimization passes never interpret.  Every binding bit is
    treated as observable by the live :class:`~repro.ir.walker.NetIndex`
    (and therefore by ``opt_clean``), which keeps parent logic feeding a
    child alive without knowing port directions.
    """

    __slots__ = ("name", "module_name", "connections", "attributes")

    def __init__(self, name: str, module_name: str,
                 connections: Dict[str, SigLike]):
        self.name = name
        self.module_name = module_name
        self.connections: Dict[str, SigSpec] = {
            port: SigSpec.coerce(spec) for port, spec in connections.items()
        }
        self.attributes: dict = {}

    def binding_bits(self) -> List[SigBit]:
        """All non-constant parent-side bits bound to this instance."""
        bits: List[SigBit] = []
        for spec in self.connections.values():
            bits.extend(bit for bit in spec if not bit.is_const)
        return bits

    def __repr__(self) -> str:
        return f"Instance({self.name}: {self.module_name})"


class Module:
    """A flat netlist: wires, cells, alias connections and child instances.

    Connections (``connect``) declare that two signals are the same net; the
    canonical representative is resolved with :class:`SigMap`.  Optimization
    passes remove cells by connecting their former output to a replacement
    signal.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.wires: Dict[str, Wire] = {}
        self.cells: Dict[str, Cell] = {}
        #: child-module instantiations by instance name
        self.instances: Dict[str, Instance] = {}
        #: list of (lhs, rhs) bit-aliases; lhs is driven by rhs
        self.connections: List[Tuple[SigSpec, SigSpec]] = []
        self._name_counter = 0
        self._listeners: List[ModuleListener] = []
        self._net_index = None  # shared live NetIndex (lazy)
        #: shared persistent muxtree edge cache (lazy; see
        #: :func:`repro.opt.opt_muxtree.module_edge_cache`)
        self._edge_cache = None

    # -- edit notifications --------------------------------------------------

    def add_listener(self, listener: ModuleListener) -> ModuleListener:
        """Register a structural-edit observer; returns it for nesting."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener: ModuleListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, edit: ModuleEdit) -> None:
        for listener in tuple(self._listeners):
            listener(edit)

    def net_index(self):
        """The shared live :class:`~repro.ir.walker.NetIndex`.

        Created on first use and kept current through the edit-notification
        channel, so passes query it directly instead of rebuilding an index
        at every pass entry.  All structural edits must go through the
        notifying ``Module``/``Cell`` APIs for the instance to stay valid.
        """
        if self._net_index is None:
            from .walker import NetIndex

            self._net_index = NetIndex(self, live=True)
        return self._net_index

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        # listeners (live indexes, pass recorders) are session-local; the
        # process-pool suite runner pickles bare netlists only
        state = dict(self.__dict__)
        state["_listeners"] = []
        state["_net_index"] = None
        state["_edge_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._listeners = []
        self._net_index = None
        self._edge_cache = None

    # -- naming ------------------------------------------------------------

    def _fresh_name(self, prefix: str, table: dict) -> str:
        while True:
            self._name_counter += 1
            name = f"{prefix}${self._name_counter}"
            if name not in table:
                return name

    # -- wires ---------------------------------------------------------------

    def add_wire(
        self,
        name: Optional[str] = None,
        width: int = 1,
        port_input: bool = False,
        port_output: bool = False,
    ) -> Wire:
        if name is None:
            name = self._fresh_name("w", self.wires)
        if name in self.wires:
            raise ValueError(f"duplicate wire name {name!r} in module {self.name!r}")
        wire = Wire(name, width, port_input, port_output)
        self.wires[name] = wire
        if self._listeners:
            self._notify(ModuleEdit(WIRE_ADDED, wire=wire))
        return wire

    def wire(self, name: str) -> Wire:
        return self.wires[name]

    def remove_wire(self, wire: Union[str, Wire]) -> None:
        name = wire if isinstance(wire, str) else wire.name
        removed = self.wires.pop(name)
        if self._listeners:
            self._notify(ModuleEdit(WIRE_REMOVED, wire=removed))

    @property
    def inputs(self) -> List[Wire]:
        return [w for w in self.wires.values() if w.port_input]

    @property
    def outputs(self) -> List[Wire]:
        return [w for w in self.wires.values() if w.port_output]

    # -- cells ---------------------------------------------------------------

    def add_cell(
        self,
        ctype: CellType,
        name: Optional[str] = None,
        width: Optional[int] = None,
        n: int = 1,
        **ports: SigLike,
    ) -> Cell:
        """Create a cell, inferring ``width`` from the ``A``/``D`` port.

        Output ports may be omitted, in which case fresh wires are created.
        """
        if name is None:
            name = self._fresh_name(str(ctype), self.cells)
        if name in self.cells:
            raise ValueError(f"duplicate cell name {name!r} in module {self.name!r}")
        if width is None:
            # shape inference is spec-driven (celllib imported lazily: this
            # module is a dependency of the registry, not the reverse)
            from . import celllib

            spec = celllib.spec_for(ctype)
            widths = {
                pname: len(SigSpec.coerce(value))
                for pname, value in ports.items()
                if pname in (spec.width_port, spec.n_port)
            }
            try:
                width, n = spec.infer_shape(widths)
            except ValueError as exc:
                raise ValueError(f"cell {name!r}: {exc}") from None
        cell = Cell(name, ctype, width, n)
        for pname, _direction, _expr in port_spec(ctype):
            if pname in ports:
                cell.set_port(pname, ports[pname])
        for pname, direction, _expr in port_spec(ctype):
            if pname not in cell.connections:
                if direction is PortDir.OUT:
                    want = expected_width(ctype, pname, width, n)
                    out = self.add_wire(f"{name}.{pname}", want)
                    cell.set_port(pname, out)
                else:
                    raise ValueError(f"cell {name!r}: missing input port {pname}")
        self.cells[name] = cell
        cell._module = self
        if self._listeners:
            self._notify(ModuleEdit(
                CELL_ADDED, cell=cell, ports=dict(cell.connections)
            ))
        return cell

    def cell(self, name: str) -> Cell:
        return self.cells[name]

    def remove_cell(self, cell: Union[str, Cell]) -> None:
        name = cell if isinstance(cell, str) else cell.name
        removed = self.cells.pop(name)
        removed._module = None
        if self._listeners:
            self._notify(ModuleEdit(
                CELL_REMOVED, cell=removed, ports=dict(removed.connections)
            ))

    # -- connections ---------------------------------------------------------

    def connect(self, lhs: SigLike, rhs: SigLike) -> None:
        """Declare ``lhs`` to be an alias for (driven by) ``rhs``.

        Bare int ``rhs`` values are sized to the lhs; explicit signals must
        match exactly.
        """
        lhs_spec = SigSpec.coerce(lhs)
        if isinstance(rhs, (int, bool)):
            rhs_spec = SigSpec.coerce(rhs, len(lhs_spec))
        else:
            rhs_spec = SigSpec.coerce(rhs)
        if len(lhs_spec) != len(rhs_spec):
            raise ValueError(
                f"connection width mismatch: {len(lhs_spec)} vs {len(rhs_spec)}"
            )
        for bit in lhs_spec:
            if bit.is_const:
                raise ValueError("cannot drive a constant bit")
        self.connections.append((lhs_spec, rhs_spec))
        if self._listeners:
            self._notify(ModuleEdit(CONNECTED, lhs=lhs_spec, rhs=rhs_spec))

    def replace_connections(
        self, connections: Iterable[Tuple[SigSpec, SigSpec]]
    ) -> None:
        """Replace the alias list wholesale (``opt_clean``'s dead-alias sweep).

        Listeners are told via a single ``connections_replaced`` edit; the
        live index relies on the caller only dropping aliases whose lhs is
        completely unread (canonical mapping of reachable bits unchanged).
        """
        self.connections = list(connections)
        if self._listeners:
            self._notify(ModuleEdit(CONNECTIONS_REPLACED))

    def sigmap(self) -> "SigMap":
        return SigMap(self)

    # -- instances -----------------------------------------------------------

    def add_instance(
        self,
        module_name: str,
        name: Optional[str] = None,
        connections: Optional[Dict[str, SigLike]] = None,
    ) -> Instance:
        """Instantiate child module ``module_name``; bindings are by port name.

        The child module itself need not exist yet (multi-file elaboration
        creates parents before children); unresolved references are caught
        by :func:`repro.ir.hierarchy.hierarchy`.
        """
        if name is None:
            name = self._fresh_name(module_name, self.instances)
        if name in self.instances:
            raise ValueError(
                f"duplicate instance name {name!r} in module {self.name!r}"
            )
        instance = Instance(name, module_name, connections or {})
        self.instances[name] = instance
        if self._listeners:
            self._notify(ModuleEdit(INSTANCE_ADDED, instance=instance))
        return instance

    def remove_instance(self, instance: Union[str, Instance]) -> None:
        name = instance if isinstance(instance, str) else instance.name
        removed = self.instances.pop(name)
        if self._listeners:
            self._notify(ModuleEdit(INSTANCE_REMOVED, instance=removed))

    def retarget_instance(self, name: str, module_name: str) -> Instance:
        """Point instance ``name`` at a different child module, in place.

        Published as an ``instance_removed``/``instance_added`` pair (the
        observable equivalent of remove + re-add) while preserving the
        instance's dict position and bindings — the uniquification primitive.
        """
        instance = self.instances[name]
        if self._listeners:
            self._notify(ModuleEdit(INSTANCE_REMOVED, instance=instance))
        instance.module_name = module_name
        if self._listeners:
            self._notify(ModuleEdit(INSTANCE_ADDED, instance=instance))
        return instance

    def instances_of(self, module_name: str) -> List[Instance]:
        """All instances of the given child module, in insertion order."""
        return [
            inst for inst in self.instances.values()
            if inst.module_name == module_name
        ]

    # -- iteration -----------------------------------------------------------

    def cells_of_type(self, *types: CellType) -> Iterator[Cell]:
        wanted = set(types)
        for cell in self.cells.values():
            if cell.type in wanted:
                yield cell

    def stats(self) -> Dict[str, int]:
        """Cell-type histogram plus wire/cell totals."""
        hist: Dict[str, int] = {}
        for cell in self.cells.values():
            hist[str(cell.type)] = hist.get(str(cell.type), 0) + 1
        hist["_cells"] = len(self.cells)
        hist["_wires"] = len(self.wires)
        return hist

    def clone(self) -> "Module":
        """Deep-copy the module (fresh Wire/Cell objects, same names)."""
        other = Module(self.name)
        other._name_counter = self._name_counter
        wire_map: Dict[int, Wire] = {}
        for wire in self.wires.values():
            copy = other.add_wire(wire.name, wire.width, wire.port_input, wire.port_output)
            copy.attributes = dict(wire.attributes)
            wire_map[id(wire)] = copy

        def translate(spec: SigSpec) -> SigSpec:
            return SigSpec(
                bit if bit.is_const else SigBit(wire_map[id(bit.wire)], bit.offset)
                for bit in spec
            )

        for cell in self.cells.values():
            copy_cell = Cell(cell.name, cell.type, cell.width, cell.n)
            copy_cell.attributes = dict(cell.attributes)
            for pname, spec in cell.connections.items():
                copy_cell.connections[pname] = translate(spec)
            other.cells[cell.name] = copy_cell
            copy_cell._module = other
        for lhs, rhs in self.connections:
            other.connections.append((translate(lhs), translate(rhs)))
        for inst in self.instances.values():
            copy_inst = Instance(inst.name, inst.module_name, {
                port: translate(spec)
                for port, spec in inst.connections.items()
            })
            copy_inst.attributes = dict(inst.attributes)
            other.instances[inst.name] = copy_inst
        return other

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, {len(self.wires)} wires, "
            f"{len(self.cells)} cells)"
        )


class SigMap:
    """Union-find over bits that resolves alias connections to canonical bits.

    Mirrors Yosys ``SigMap``: after construction, :meth:`map_bit` returns the
    canonical representative of any bit — constants win over wires, and
    earlier-declared wires win over later ones, so results are deterministic.
    """

    def __init__(self, module: Optional[Module] = None):
        self._parent: Dict[SigBit, SigBit] = {}
        if module is not None:
            for lhs, rhs in module.connections:
                for lbit, rbit in zip(lhs, rhs):
                    self.add(lbit, rbit)

    def _find(self, bit: SigBit) -> SigBit:
        root = bit
        while root in self._parent:
            root = self._parent[root]
        # path compression
        while bit in self._parent:
            self._parent[bit], bit = root, self._parent[bit]
        return root

    def add(self, a: SigBit, b: SigBit) -> None:
        """Declare bits ``a`` and ``b`` to be the same net."""
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        # prefer constants as representatives, then keep rb (the driver side)
        if ra.is_const:
            self._parent[rb] = ra
        else:
            self._parent[ra] = rb

    def map_bit(self, bit: SigBit) -> SigBit:
        return self._find(bit)

    def __len__(self) -> int:
        """Number of union-find entries (bits with a non-trivial parent)."""
        return len(self._parent)

    def compact(self, live: Iterable[SigBit]) -> int:
        """Generation compaction: keep only entries for ``live`` bits.

        Long-lived incremental sessions accumulate union-find entries for
        bits whose wires and aliases are long gone (safe — stale entries
        for dead bits are never queried — but unbounded).  Compaction
        rewrites the structure as a flat two-level forest over exactly the
        live bits, *preserving every live bit's current representative*,
        so driver/reader maps keyed by canonical bits stay valid verbatim.
        Returns the number of entries dropped.
        """
        new_parent: Dict[SigBit, SigBit] = {}
        for bit in live:
            root = self._find(bit)
            if root != bit:
                new_parent[bit] = root
        dropped = len(self._parent) - len(new_parent)
        self._parent = new_parent
        return dropped

    def map_spec(self, spec: SigSpec) -> SigSpec:
        return SigSpec(self._find(bit) for bit in spec)

    def __call__(self, value: Union[SigBit, SigSpec]) -> Union[SigBit, SigSpec]:
        if isinstance(value, SigBit):
            return self.map_bit(value)
        return self.map_spec(value)
