"""Cell library for the RTL netlist IR.

The cell set mirrors the subset of Yosys RTLIL cells that matter for
multiplexer optimization and AIG mapping.  Widths follow these conventions
(``W`` = cell's data width, ``N`` = number of pmux branches / shift width):

========== =========================================== =====================
Cell        Ports                                       Semantics
========== =========================================== =====================
``not``     A[W] -> Y[W]                                bitwise NOT
``and``     A[W], B[W] -> Y[W]                          bitwise AND
``or``      A[W], B[W] -> Y[W]                          bitwise OR
``xor``     A[W], B[W] -> Y[W]                          bitwise XOR
``xnor``    A[W], B[W] -> Y[W]                          bitwise XNOR
``nand``    A[W], B[W] -> Y[W]                          bitwise NAND
``nor``     A[W], B[W] -> Y[W]                          bitwise NOR
``mux``     A[W], B[W], S[1] -> Y[W]                    Y = S ? B : A
``pmux``    A[W], B[W*N], S[N] -> Y[W]                  one-hot parallel mux
``eq``      A[W], B[W] -> Y[1]                          unsigned A == B
``ne``      A[W], B[W] -> Y[1]                          unsigned A != B
``lt``      A[W], B[W] -> Y[1]                          unsigned A < B
``le``      A[W], B[W] -> Y[1]                          unsigned A <= B
``add``     A[W], B[W] -> Y[W]                          A + B (mod 2^W)
``sub``     A[W], B[W] -> Y[W]                          A - B (mod 2^W)
``shl``     A[W], B[N] -> Y[W]                          A << B (logical)
``shr``     A[W], B[N] -> Y[W]                          A >> B (logical)
``reduce_and``  A[W] -> Y[1]                            &A
``reduce_or``   A[W] -> Y[1]                            |A
``reduce_xor``  A[W] -> Y[1]                            ^A
``reduce_bool`` A[W] -> Y[1]                            A != 0
``logic_not``   A[W] -> Y[1]                            !A  (A == 0)
``logic_and``   A[W], B[W] -> Y[1]                      (A!=0) && (B!=0)
``logic_or``    A[W], B[W] -> Y[1]                      (A!=0) || (B!=0)
``dff``     CLK[1], D[W] -> Q[W]                        posedge D flip-flop
========== =========================================== =====================

``pmux`` follows Yosys: ``S`` is expected to be one-hot (or all-zero);
``Y = A`` when ``S == 0``; when ``S[i]`` is set, ``Y = B[W*i +: W]``.  If
several select bits are high the result is undefined (``x``).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple


class CellType(enum.Enum):
    """Every cell type understood by the IR, simulator and AIG mapper."""

    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"
    MUX = "mux"
    PMUX = "pmux"
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    ADD = "add"
    SUB = "sub"
    SHL = "shl"
    SHR = "shr"
    REDUCE_AND = "reduce_and"
    REDUCE_OR = "reduce_or"
    REDUCE_XOR = "reduce_xor"
    REDUCE_BOOL = "reduce_bool"
    LOGIC_NOT = "logic_not"
    LOGIC_AND = "logic_and"
    LOGIC_OR = "logic_or"
    DFF = "dff"

    def __str__(self) -> str:
        return self.value


#: cell types whose output is a pure function of the current inputs
COMBINATIONAL_TYPES: FrozenSet[CellType] = frozenset(
    t for t in CellType if t is not CellType.DFF
)

#: unary bitwise / reduction cells (single data input ``A``)
UNARY_TYPES: FrozenSet[CellType] = frozenset(
    {
        CellType.NOT,
        CellType.REDUCE_AND,
        CellType.REDUCE_OR,
        CellType.REDUCE_XOR,
        CellType.REDUCE_BOOL,
        CellType.LOGIC_NOT,
    }
)

#: two-input bitwise cells with Y width == input width
BITWISE_BINARY_TYPES: FrozenSet[CellType] = frozenset(
    {
        CellType.AND,
        CellType.OR,
        CellType.XOR,
        CellType.XNOR,
        CellType.NAND,
        CellType.NOR,
    }
)

#: comparison cells producing a single-bit result
COMPARE_TYPES: FrozenSet[CellType] = frozenset(
    {CellType.EQ, CellType.NE, CellType.LT, CellType.LE}
)

#: single-bit-output cells (comparisons, reductions, logic ops)
SINGLE_BIT_OUTPUT_TYPES: FrozenSet[CellType] = frozenset(
    {
        CellType.EQ,
        CellType.NE,
        CellType.LT,
        CellType.LE,
        CellType.REDUCE_AND,
        CellType.REDUCE_OR,
        CellType.REDUCE_XOR,
        CellType.REDUCE_BOOL,
        CellType.LOGIC_NOT,
        CellType.LOGIC_AND,
        CellType.LOGIC_OR,
    }
)

#: multiplexer cells (the subject of the paper)
MUX_TYPES: FrozenSet[CellType] = frozenset({CellType.MUX, CellType.PMUX})


class PortDir(enum.Enum):
    IN = "in"
    OUT = "out"


# Width expressions: "W" (cell width), "N" (pmux branch count / shift-amount
# width), "W*N", or a literal integer.
_PORT_SPECS: Dict[CellType, Tuple[Tuple[str, PortDir, object], ...]] = {}


def _spec(ctype: CellType, *ports: Tuple[str, PortDir, object]) -> None:
    _PORT_SPECS[ctype] = ports


for _t in (CellType.NOT,):
    _spec(_t, ("A", PortDir.IN, "W"), ("Y", PortDir.OUT, "W"))
for _t in BITWISE_BINARY_TYPES | {CellType.ADD, CellType.SUB}:
    _spec(_t, ("A", PortDir.IN, "W"), ("B", PortDir.IN, "W"), ("Y", PortDir.OUT, "W"))
for _t in COMPARE_TYPES | {CellType.LOGIC_AND, CellType.LOGIC_OR}:
    _spec(_t, ("A", PortDir.IN, "W"), ("B", PortDir.IN, "W"), ("Y", PortDir.OUT, 1))
for _t in (
    CellType.REDUCE_AND,
    CellType.REDUCE_OR,
    CellType.REDUCE_XOR,
    CellType.REDUCE_BOOL,
    CellType.LOGIC_NOT,
):
    _spec(_t, ("A", PortDir.IN, "W"), ("Y", PortDir.OUT, 1))
_spec(
    CellType.MUX,
    ("A", PortDir.IN, "W"),
    ("B", PortDir.IN, "W"),
    ("S", PortDir.IN, 1),
    ("Y", PortDir.OUT, "W"),
)
_spec(
    CellType.PMUX,
    ("A", PortDir.IN, "W"),
    ("B", PortDir.IN, "W*N"),
    ("S", PortDir.IN, "N"),
    ("Y", PortDir.OUT, "W"),
)
for _t in (CellType.SHL, CellType.SHR):
    _spec(_t, ("A", PortDir.IN, "W"), ("B", PortDir.IN, "N"), ("Y", PortDir.OUT, "W"))
_spec(
    CellType.DFF,
    ("CLK", PortDir.IN, 1),
    ("D", PortDir.IN, "W"),
    ("Q", PortDir.OUT, "W"),
)


def port_spec(ctype: CellType) -> Tuple[Tuple[str, PortDir, object], ...]:
    """The ``(name, direction, width-expr)`` tuple for each port of a cell."""
    return _PORT_SPECS[ctype]


def input_ports(ctype: CellType) -> Tuple[str, ...]:
    return tuple(n for n, d, _w in _PORT_SPECS[ctype] if d is PortDir.IN)


def output_ports(ctype: CellType) -> Tuple[str, ...]:
    return tuple(n for n, d, _w in _PORT_SPECS[ctype] if d is PortDir.OUT)


def expected_width(ctype: CellType, port: str, width: int, n: int = 1) -> int:
    """Resolve a port's width expression against the cell parameters."""
    for name, _direction, expr in _PORT_SPECS[ctype]:
        if name != port:
            continue
        if expr == "W":
            return width
        if expr == "N":
            return n
        if expr == "W*N":
            return width * n
        return int(expr)  # literal
    raise KeyError(f"cell {ctype} has no port {port!r}")
