"""Netlist well-formedness checks.

``validate_module`` raises :class:`ValidationError` on the first violation;
``check_module`` returns the full list of problems as strings.  Checks:

* every cell port is connected with the width its cell type demands,
* no bit has two drivers (cell outputs and alias connections combined),
* module output wires are driven,
* pmux select widths match branch counts,
* the combinational part is acyclic.
"""

from __future__ import annotations

from typing import List

from . import celllib
from .module import Module
from .walker import CombLoopError, DriverConflictError, NetIndex


class ValidationError(Exception):
    """The module violates a structural invariant."""


def check_module(module: Module) -> List[str]:
    """Return a list of human-readable problems (empty list = valid)."""
    problems: List[str] = []

    # port/width well-formedness is defined by the cell-semantics registry
    for cell in module.cells.values():
        problems.extend(celllib.spec_for(cell.type).check(cell))

    if problems:
        # port-level problems make the bit-level index unreliable
        return problems

    index = None
    try:
        index = NetIndex(module)
    except DriverConflictError as exc:
        problems.append(str(exc))

    if index is not None:
        sigmap = index.sigmap
        for wire in module.outputs:
            for offset in range(wire.width):
                from .signals import SigBit

                bit = sigmap.map_bit(SigBit(wire, offset))
                if bit.is_const:
                    continue
                if bit not in index.driver and not (
                    bit.wire is not None and bit.wire.port_input
                ):
                    # driven through an alias chain ending at an undriven wire
                    problems.append(
                        f"output {wire.name}[{offset}] is undriven"
                    )
        try:
            index.topo_cells()
        except CombLoopError as exc:
            problems.append(str(exc))

    return problems


def validate_module(module: Module) -> None:
    """Raise :class:`ValidationError` if the module is malformed."""
    problems = check_module(module)
    if problems:
        raise ValidationError(
            f"module {module.name!r} failed validation:\n  " + "\n  ".join(problems)
        )
