"""Netlist well-formedness checks.

``validate_module`` raises :class:`ValidationError` on the first violation;
``check_module`` returns the full list of problems as strings.  Checks:

* every cell port is connected with the width its cell type demands,
* no bit has two drivers (cell outputs and alias connections combined),
* module output wires are driven,
* pmux select widths match branch counts,
* the combinational part is acyclic.
"""

from __future__ import annotations

from typing import List

from .cells import expected_width, input_ports, output_ports, port_spec
from .module import Module
from .walker import CombLoopError, DriverConflictError, NetIndex


class ValidationError(Exception):
    """The module violates a structural invariant."""


def check_module(module: Module) -> List[str]:
    """Return a list of human-readable problems (empty list = valid)."""
    problems: List[str] = []

    for cell in module.cells.values():
        for pname, _direction, _expr in port_spec(cell.type):
            if pname not in cell.connections:
                problems.append(
                    f"cell {cell.name!r} ({cell.type}): port {pname} unconnected"
                )
                continue
            want = expected_width(cell.type, pname, cell.width, cell.n)
            got = len(cell.connections[pname])
            if got != want:
                problems.append(
                    f"cell {cell.name!r} ({cell.type}): port {pname} width "
                    f"{got}, expected {want}"
                )
        extra = set(cell.connections) - {p for p, _d, _e in port_spec(cell.type)}
        if extra:
            problems.append(
                f"cell {cell.name!r} ({cell.type}): unknown ports {sorted(extra)}"
            )

    if problems:
        # port-level problems make the bit-level index unreliable
        return problems

    index = None
    try:
        index = NetIndex(module)
    except DriverConflictError as exc:
        problems.append(str(exc))

    if index is not None:
        sigmap = index.sigmap
        for wire in module.outputs:
            for offset in range(wire.width):
                from .signals import SigBit

                bit = sigmap.map_bit(SigBit(wire, offset))
                if bit.is_const:
                    continue
                if bit not in index.driver and not (
                    bit.wire is not None and bit.wire.port_input
                ):
                    # driven through an alias chain ending at an undriven wire
                    problems.append(
                        f"output {wire.name}[{offset}] is undriven"
                    )
        try:
            index.topo_cells()
        except CombLoopError as exc:
            problems.append(str(exc))

    return problems


def validate_module(module: Module) -> None:
    """Raise :class:`ValidationError` if the module is malformed."""
    problems = check_module(module)
    if problems:
        raise ValidationError(
            f"module {module.name!r} failed validation:\n  " + "\n  ".join(problems)
        )
