"""Fluent netlist construction API.

:class:`Circuit` wraps a :class:`~repro.ir.module.Module` with expression-
style helpers so tests, examples and workload generators can build netlists
compactly::

    c = Circuit("demo")
    a, b = c.input("a", 8), c.input("b", 8)
    s = c.input("s")
    y = c.mux(a, b, s)            # y = s ? b : a
    c.output("y", y)

The :meth:`Circuit.case_` helper elaborates a ``case`` statement into the
eq+mux *chain* of the paper's Figure 5 — the exact structure Yosys
``proc_mux`` emits and the input shape for muxtree restructuring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .cells import CellType, output_ports
from .module import Cell, Module
from .signals import SigBit, SigLike, SigSpec, State, concat


class Circuit:
    """Convenience builder around a single :class:`Module`."""

    def __init__(self, name: str = "top", module: Optional[Module] = None):
        self.module = module if module is not None else Module(name)

    # -- ports ---------------------------------------------------------------

    def input(self, name: str, width: int = 1) -> SigSpec:
        wire = self.module.add_wire(name, width, port_input=True)
        return SigSpec.from_wire(wire)

    def output(self, name: str, value: Optional[SigLike] = None, width: int = 1) -> SigSpec:
        if value is not None:
            spec = SigSpec.coerce(value)
            wire = self.module.add_wire(name, len(spec), port_output=True)
            self.module.connect(wire, spec)
        else:
            wire = self.module.add_wire(name, width, port_output=True)
        return SigSpec.from_wire(wire)

    def wire(self, name: Optional[str] = None, width: int = 1) -> SigSpec:
        return SigSpec.from_wire(self.module.add_wire(name, width))

    def const(self, value: int, width: int) -> SigSpec:
        return SigSpec.from_const(value, width)

    def concat(self, *parts: SigLike) -> SigSpec:
        """Concatenate signals LSB-first (first argument = low bits)."""
        return concat(*parts)

    # -- generic cell emission -------------------------------------------------

    def _cell(self, ctype: CellType, n: int = 1, **ports: SigLike) -> SigSpec:
        cell = self.module.add_cell(ctype, n=n, **ports)
        return cell.connections[output_ports(ctype)[0]]

    def _binary(self, ctype: CellType, a: SigLike, b: SigLike) -> SigSpec:
        a_spec = SigSpec.coerce(a)
        b_spec = SigSpec.coerce(b, len(a_spec)) if isinstance(b, int) else SigSpec.coerce(b)
        width = max(len(a_spec), len(b_spec))
        return self._cell(ctype, A=a_spec.extend(width), B=b_spec.extend(width))

    # -- bitwise -----------------------------------------------------------

    def not_(self, a: SigLike) -> SigSpec:
        return self._cell(CellType.NOT, A=SigSpec.coerce(a))

    def and_(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.AND, a, b)

    def or_(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.OR, a, b)

    def xor(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.XOR, a, b)

    def xnor(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.XNOR, a, b)

    def nand(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.NAND, a, b)

    def nor(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.NOR, a, b)

    # -- arithmetic / compare -------------------------------------------------

    def add(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.ADD, a, b)

    def sub(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.SUB, a, b)

    def shl(self, a: SigLike, b: SigLike) -> SigSpec:
        a_spec, b_spec = SigSpec.coerce(a), SigSpec.coerce(b)
        return self._cell(CellType.SHL, n=len(b_spec), A=a_spec, B=b_spec)

    def shr(self, a: SigLike, b: SigLike) -> SigSpec:
        a_spec, b_spec = SigSpec.coerce(a), SigSpec.coerce(b)
        return self._cell(CellType.SHR, n=len(b_spec), A=a_spec, B=b_spec)

    def eq(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.EQ, a, b)

    def ne(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.NE, a, b)

    def lt(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.LT, a, b)

    def le(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.LE, a, b)

    # -- reductions / logic -----------------------------------------------------

    def reduce_and(self, a: SigLike) -> SigSpec:
        return self._cell(CellType.REDUCE_AND, A=SigSpec.coerce(a))

    def reduce_or(self, a: SigLike) -> SigSpec:
        return self._cell(CellType.REDUCE_OR, A=SigSpec.coerce(a))

    def reduce_xor(self, a: SigLike) -> SigSpec:
        return self._cell(CellType.REDUCE_XOR, A=SigSpec.coerce(a))

    def reduce_bool(self, a: SigLike) -> SigSpec:
        return self._cell(CellType.REDUCE_BOOL, A=SigSpec.coerce(a))

    def logic_not(self, a: SigLike) -> SigSpec:
        return self._cell(CellType.LOGIC_NOT, A=SigSpec.coerce(a))

    def logic_and(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.LOGIC_AND, a, b)

    def logic_or(self, a: SigLike, b: SigLike) -> SigSpec:
        return self._binary(CellType.LOGIC_OR, a, b)

    # -- multiplexers ----------------------------------------------------------

    def mux(self, a: SigLike, b: SigLike, s: SigLike) -> SigSpec:
        """``Y = S ? B : A`` (Yosys convention: S=1 selects B)."""
        a_spec = SigSpec.coerce(a)
        b_spec = SigSpec.coerce(b, len(a_spec))
        s_spec = SigSpec.coerce(s)
        if len(s_spec) != 1:
            raise ValueError("mux select must be a single bit")
        return self._cell(CellType.MUX, A=a_spec, B=b_spec, S=s_spec)

    def pmux(self, default: SigLike, branches: Sequence[Tuple[SigLike, SigLike]]) -> SigSpec:
        """One-hot parallel mux: ``branches`` is ``[(select_bit, value), ...]``.

        ``Y = default`` when no select bit is high; ``Y = value_i`` when
        ``select_i`` is the (unique) high bit.
        """
        a_spec = SigSpec.coerce(default)
        width = len(a_spec)
        sel_bits: List[SigSpec] = []
        data: List[SigSpec] = []
        for sel, value in branches:
            sel_spec = SigSpec.coerce(sel)
            if len(sel_spec) != 1:
                raise ValueError("pmux select entries must be single bits")
            sel_bits.append(sel_spec)
            data.append(SigSpec.coerce(value, width))
        return self._cell(
            CellType.PMUX,
            n=len(branches),
            A=a_spec,
            B=concat(*data),
            S=concat(*sel_bits),
        )

    # -- sequential -------------------------------------------------------------

    def dff(self, clk: SigLike, d: SigLike) -> SigSpec:
        return self._cell(CellType.DFF, CLK=SigSpec.coerce(clk), D=SigSpec.coerce(d))

    # -- behavioural helpers ------------------------------------------------------

    def case_(
        self,
        selector: SigLike,
        arms: Sequence[Tuple[Union[int, str], SigLike]],
        default: SigLike,
    ) -> SigSpec:
        """Elaborate a ``case`` statement into an eq+mux *chain* (Figure 5).

        ``arms`` maps match patterns (ints, or MSB-first pattern strings with
        ``z``/``?`` don't-cares) to values.  The chain is built from the last
        arm up, so the first arm has priority, exactly like Yosys
        ``proc_mux`` output for a full ``case``::

            y = (sel==p0) ? v0 : ((sel==p1) ? v1 : ... default)
        """
        sel = SigSpec.coerce(selector)
        result = SigSpec.coerce(default)
        width = len(result)
        for pattern, value in reversed(list(arms)):
            value_spec = SigSpec.coerce(value, width)
            match = self.match_pattern(sel, pattern)
            result = self.mux(result, value_spec, match)
        return result

    def match_pattern(self, sel: SigSpec, pattern: Union[int, str]) -> SigSpec:
        """A single-bit match condition for one case arm.

        Full patterns become an ``eq`` cell against a constant.  Patterns
        with don't-cares (``casez``) compare only the cared-about bits, via
        ``eq`` on the cared sub-vector (single-bit compares reduce to the bit
        itself or its ``logic_not``).
        """
        if isinstance(pattern, int):
            return self.eq(sel, SigSpec.from_const(pattern, len(sel)))
        pat = SigSpec.from_pattern(pattern).extend(len(sel))
        cared = [(i, bit.state) for i, bit in enumerate(pat) if bit.state is not State.Sx]
        if not cared:
            return SigSpec.from_const(1, 1)
        if len(cared) == len(sel):
            return self.eq(sel, SigSpec(
                [b for b in pat]
            ))
        sub_sel = SigSpec([sel[i] for i, _s in cared])
        sub_pat = SigSpec.from_const(
            sum(1 << k for k, (_i, s) in enumerate(cared) if s is State.S1),
            len(cared),
        )
        return self.eq(sub_sel, sub_pat)

    def if_(self, cond: SigLike, then_value: SigLike, else_value: SigLike) -> SigSpec:
        """``cond ? then_value : else_value`` as a mux."""
        return self.mux(else_value, then_value, cond)

    def __repr__(self) -> str:
        return f"Circuit({self.module!r})"
