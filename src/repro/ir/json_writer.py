"""Yosys ``write_json`` netlist exporter (mirror of ``verilog_writer``).

Emits the same JSON schema Yosys produces (``modules`` → ``ports`` /
``cells`` / ``netnames``), with cell types taken from the cell-semantics
registry (:mod:`repro.ir.celllib`), so any ``read_json``-capable tool —
including our own :mod:`repro.frontend.yosys_json` reader — can consume
optimized netlists.  ``$nand``/``$nor`` are emitted as documented
extensions over the stock RTLIL word-level set (Yosys itself only has the
gate-level variants); the bundled reader accepts them, keeping
``read(write(m))`` structurally identical to ``m``.

Net identity: alias connections are folded through :class:`SigMap`, so
two connected wires share bit ids — exactly how the format expresses
module connections.  Hierarchy :class:`~repro.ir.module.Instance` records
are emitted as cells of non-``$`` type, again matching Yosys.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO, Union

from . import celllib
from .cells import CellType, PortDir
from .design import Design
from .module import Cell, Module, SigMap
from .signals import SigBit, SigSpec, State

_CONST_TOKENS = {State.S0: "0", State.S1: "1", State.Sx: "x"}


class YosysJsonWriter:
    """Serializes one module (or a whole design) to Yosys JSON."""

    def __init__(self) -> None:
        self._ids: Dict[SigBit, int] = {}
        self._next_id = 2  # Yosys convention: net ids start at 2
        self._sigmap = SigMap()

    # -- per-module serialization ------------------------------------------------

    def module_dict(self, module: Module, top: bool = False) -> dict:
        """The ``modules[name]`` payload for one module."""
        self._ids = {}
        self._next_id = 2
        self._sigmap = SigMap(module)

        ports = {}
        for wire in module.wires.values():
            if not (wire.port_input or wire.port_output):
                continue
            ports[wire.name] = {
                "direction": "input" if wire.port_input else "output",
                "bits": self._wire_tokens(wire),
            }

        cells = {}
        for cell in module.cells.values():
            cells[cell.name] = self._cell_dict(cell)
        for instance in module.instances.values():
            entry = {
                "hide_name": 0,
                "type": instance.module_name,
                "parameters": {},
                "attributes": dict(instance.attributes),
                "connections": {
                    pname: self._tokens(spec)
                    for pname, spec in instance.connections.items()
                },
            }
            cells[instance.name] = entry

        netnames = {
            wire.name: {
                "hide_name": 1 if "$" in wire.name else 0,
                "bits": self._wire_tokens(wire),
                "attributes": dict(wire.attributes),
            }
            for wire in module.wires.values()
        }

        attributes: dict = {}
        if top:
            attributes["top"] = 1
        return {
            "attributes": attributes,
            "ports": ports,
            "cells": cells,
            "netnames": netnames,
        }

    def _cell_dict(self, cell: Cell) -> dict:
        spec = celllib.spec_for(cell.type)
        connections = {
            pname: self._tokens(cell.connections[pname])
            for pname, _direction, _expr in spec.ports
        }
        return {
            "hide_name": 1 if "$" in cell.name else 0,
            "type": spec.yosys_type,
            "parameters": self._parameters(cell, spec),
            "attributes": dict(cell.attributes),
            "port_directions": {
                pname: "input" if direction is PortDir.IN else "output"
                for pname, direction, _expr in spec.ports
            },
            "connections": connections,
        }

    @staticmethod
    def _parameters(cell: Cell, spec: celllib.CellSpec) -> dict:
        if not spec.combinational:
            return {"WIDTH": cell.width, "CLK_POLARITY": 1}
        if spec.ctype is CellType.MUX:
            return {"WIDTH": cell.width}
        if spec.ctype is CellType.PMUX:
            return {"WIDTH": cell.width, "S_WIDTH": cell.n}
        params: dict = {"A_SIGNED": 0, "A_WIDTH": len(cell.connections["A"])}
        if "B" in spec.input_ports:
            params["B_SIGNED"] = 0
            params["B_WIDTH"] = len(cell.connections["B"])
        params["Y_WIDTH"] = len(cell.connections["Y"])
        return params

    # -- net ids -------------------------------------------------------------

    def _token(self, bit: SigBit) -> Union[int, str]:
        canon = self._sigmap.map_bit(bit)
        if canon.is_const:
            return _CONST_TOKENS[canon.state]
        net_id = self._ids.get(canon)
        if net_id is None:
            net_id = self._next_id
            self._next_id += 1
            self._ids[canon] = net_id
        return net_id

    def _tokens(self, spec: SigSpec) -> List[Union[int, str]]:
        return [self._token(bit) for bit in spec]

    def _wire_tokens(self, wire) -> List[Union[int, str]]:
        return [self._token(SigBit(wire, i)) for i in range(wire.width)]

    # -- whole designs -------------------------------------------------------

    def design_dict(self, design: Design) -> dict:
        return {
            "creator": "repro json_writer",
            "modules": {
                module.name: self.module_dict(
                    module, top=module.name == design.top_name
                )
                for module in design
            },
        }


def yosys_json_dict(target: Union[Design, Module]) -> dict:
    """Serialize a design (or a single module) to the Yosys JSON dict."""
    writer = YosysJsonWriter()
    if isinstance(target, Design):
        return writer.design_dict(target)
    # bare modules are wrapped without mutating them (no Design listeners)
    return {
        "creator": "repro json_writer",
        "modules": {target.name: writer.module_dict(target, top=True)},
    }


def yosys_json_str(target: Union[Design, Module], indent: int = 2) -> str:
    """Serialize to Yosys JSON text (stable key order, trailing newline)."""
    return json.dumps(yosys_json_dict(target), indent=indent) + "\n"


def write_yosys_json(target: Union[Design, Module], stream: TextIO) -> None:
    """Write Yosys JSON to an open text stream."""
    stream.write(yosys_json_str(target))


__all__ = [
    "YosysJsonWriter",
    "write_yosys_json",
    "yosys_json_dict",
    "yosys_json_str",
]
