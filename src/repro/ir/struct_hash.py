"""Canonical structural signatures: name-independent sub-graph hashing.

The content-signature caches (:class:`~repro.core.cache.ResultCache`, the
:class:`~repro.sat.oracle.SatOracle` verdict memo) key sub-graphs by the
ordered ``(cell name, version)`` tuple of their cells plus canonical
boundary bits.  Those keys are *identity* keys: they can never collide
across modules, clones or runs — which also means structurally identical
sub-graphs from a renamed module, a cloned suite job, or an independently
built isomorphic region can never share a cache entry, and worker
processes can never be warm-started from a parent's cache (identity keys
embed live wire objects).

:func:`struct_signature` closes that gap with a canonical, name-free
encoding of a redundancy sub-graph, computed in two facts-independent
phases plus a cheap per-query fold:

* **labeling** — the sub-graph DAG is walked depth-first from the target
  bit, visiting each cell's input ports in declared port order and bits
  LSB-first (an order fully determined by structure); cells outside the
  target's cone are then walked the same way, ordered by a bottom-up
  Merkle fingerprint of their fanin shape.  Cells are numbered in first-
  visit order, free inputs in first-encounter order;
* **encoding** — each cell renders as ``(type, width, n, per-input-port
  operand encodings)``, where an operand is a constant state, a free
  input's canonical number, or a ``(cell number, port, offset)`` driver
  reference — a Merkle-style encoding that captures sharing exactly;
* **fold** — the target's operand encoding and the known facts (as a
  canonically sorted ``(operand, value)`` set) are hashed together with
  the cell encoding.  Facts never influence the labeling, so one labeling
  serves every facts-variant of the same sub-graph — the muxtree
  traversal asks about the same neighbourhood under many path facts, and
  :class:`StructKeyMemo` makes each variant cost one sorted fold.

Two sub-graphs with equal signatures are isomorphic as labeled DAGs under
the label correspondence (the encoding is invertible up to renaming), so
any analysis whose outcome is a pure function of the sub-graph — the
Table-I inference rules, exhaustive simulation, a SAT polarity verdict —
may safely share cache entries across modules, clones and processes.
The reverse direction is conservative: cells whose Merkle fingerprints
tie (e.g. ``and(x, y)`` vs ``and(z, z)`` — the fingerprint abstracts
free-input sharing) are ordered by their position in the caller's cell
sequence, so *independently built* isomorphic graphs can, rarely, hash
differently and merely miss.  The encoding uses only strings, ints and
bools (no ``id()``, no interpreter ``hash``), so signatures are stable
across interpreter runs and hash seeds; the returned key is a fixed-width
BLAKE2b digest, cheap to compare, hash and pickle.

Per-cell version counters are **not** embedded: the signature *is* the
content — any rewire of a participating cell changes its operand
encodings directly, which is the same invalidation the ``(name,
version)`` scheme bought indirectly.  Versions still matter for speed:
:class:`StructKeyMemo` memoizes the labeling per ``(cells+versions,
target)`` so it is computed once per distinct sub-graph state, and any
rewire bumps a version and misses the memo.

:func:`renamed_copy` is the verification tool for all of the above: a
structure-preserving module copy whose every wire and cell is renamed
(scrambling sort order, which the extraction and topological-ordering
paths otherwise lean on), used by the property tests and
``benchmarks/bench_structhash.py``.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .cells import input_ports, output_ports
from .module import Cell, Instance, Module, SigMap
from .signals import SigBit, SigSpec

#: a structural signature: hex BLAKE2b-128 digest of the canonical encoding
StructSignature = str

#: Fingerprint of the structural keying scheme, embedded in every
#: persisted cache artifact (see :class:`repro.core.store.CacheStore`).
#: Signatures are only comparable between processes that canonicalize
#: identically, so ANY change to the labeling walk, the operand
#: encoding, the facts fold, the WL refinement or the digest layout MUST
#: bump this string — stale on-disk generations written under the old
#: scheme are then skipped instead of silently never hitting (or worse,
#: colliding).
SCHEME_FINGERPRINT = "structural/blake2b-16/wl3/v1"

#: operand encoding: ("c", state) | ("i", input index) | ("d", cell, port, off)
_Operand = Tuple


def _identity_map(bit: SigBit) -> SigBit:
    return bit


class _Canon:
    """One canonical labeling of a sub-graph's cells and free bits.

    ``driven`` maps canonical output bits to ``(cell, port, offset)``;
    labels are assigned in deterministic first-visit order by
    :meth:`label_cone`, and :meth:`encode` renders encodings against the
    final label assignment (two phases, so a cell's encoding may
    reference cells labeled after it without recursion).
    """

    __slots__ = ("driven", "mapb", "cell_label", "input_label", "order")

    def __init__(
        self,
        driven: Dict[SigBit, Tuple[Cell, str, int]],
        mapb: Callable[[SigBit], SigBit],
    ):
        self.driven = driven
        self.mapb = mapb
        self.cell_label: Dict[int, int] = {}
        self.input_label: Dict[SigBit, int] = {}
        self.order: List[Cell] = []

    def label_cone(self, root: SigBit) -> None:
        """Assign labels over ``root``'s fanin cone, first-visit order."""
        stack = [self.mapb(root)]
        while stack:
            bit = stack.pop()
            if bit.is_const:
                continue
            entry = self.driven.get(bit)
            if entry is None:
                if bit not in self.input_label:
                    self.input_label[bit] = len(self.input_label)
                continue
            cell = entry[0]
            if id(cell) in self.cell_label:
                continue
            self.cell_label[id(cell)] = len(self.cell_label)
            self.order.append(cell)
            kids = [
                self.mapb(b)
                for port in input_ports(cell.type)
                for b in cell.connections[port]
            ]
            # reversed push: pop order == declared port order, LSB first
            stack.extend(reversed(kids))

    def label_cell(self, cell: Cell) -> None:
        """Label a cell whose outputs the driven map cannot reach (every
        output bit aliased to a constant) and canonicalize its fanin."""
        if id(cell) in self.cell_label:
            return
        self.cell_label[id(cell)] = len(self.cell_label)
        self.order.append(cell)
        for port in input_ports(cell.type):
            for bit in cell.connections[port]:
                self.label_cone(self.mapb(bit))

    def operand(self, bit: SigBit) -> _Operand:
        """The canonical encoding of one (already canonical) bit."""
        if bit.is_const:
            return ("c", str(bit.state))
        entry = self.driven.get(bit)
        if entry is not None and id(entry[0]) in self.cell_label:
            return ("d", self.cell_label[id(entry[0])], entry[1], entry[2])
        index = self.input_label.get(bit)
        if index is None:
            # a boundary bit outside every labeled cone (defensive: the
            # labeling phase routes every sub-graph bit through a cone)
            index = self.input_label[bit] = len(self.input_label)
        return ("i", index)

    def encode(self) -> Tuple:
        """All labeled cells' encodings, in label order."""
        mapb = self.mapb
        return tuple(
            (
                str(cell.type),
                cell.width,
                cell.n,
                tuple(
                    (port, tuple(self.operand(mapb(b))
                                 for b in cell.connections[port]))
                    for port in input_ports(cell.type)
                ),
            )
            for cell in self.order
        )


def _driven_map(
    cells: Sequence[Cell], mapb: Callable[[SigBit], SigBit]
) -> Dict[SigBit, Tuple[Cell, str, int]]:
    driven: Dict[SigBit, Tuple[Cell, str, int]] = {}
    for cell in cells:
        for port in output_ports(cell.type):
            spec = cell.connections.get(port)
            if spec is None:
                continue
            for offset, bit in enumerate(spec):
                cbit = mapb(bit)
                if not cbit.is_const:
                    driven[cbit] = (cell, port, offset)
    return driven


def _merkle_fingerprints(
    cells: Sequence[Cell],
    driven: Dict[SigBit, Tuple[Cell, str, int]],
    mapb: Callable[[SigBit], SigBit],
    colors: Optional[Dict[SigBit, str]] = None,
) -> Dict[int, str]:
    """Bottom-up per-cell structural fingerprints (free inputs abstract).

    A cell's fingerprint hashes its type/shape and, per input bit, the
    driving cell's fingerprint (with port/offset), a constant state, or a
    free-input placeholder.  With ``colors`` (the iterated-refinement
    path) the placeholder carries the bit's current color instead of being
    fully generic, so input *sharing patterns* separate otherwise-tied
    cells.  O(sub-graph) total; used only to order cells outside the
    target cone in a name-free way.
    """
    fingerprints: Dict[int, str] = {}

    def fingerprint(cell: Cell) -> str:
        stack: List[Cell] = [cell]
        while stack:
            current = stack[-1]
            if id(current) in fingerprints:
                stack.pop()
                continue
            pending = False
            parts: List[Tuple] = [
                (str(current.type), current.width, current.n)
            ]
            for port in input_ports(current.type):
                for bit in current.connections[port]:
                    cbit = mapb(bit)
                    if cbit.is_const:
                        parts.append(("c", str(cbit.state)))
                        continue
                    entry = driven.get(cbit)
                    if entry is None:
                        if colors is None:
                            parts.append(("x",))
                        else:
                            parts.append(("x", colors.get(cbit, "")))
                        continue
                    drv = entry[0]
                    done = fingerprints.get(id(drv))
                    if done is None:
                        if drv is current or any(
                            s is drv for s in stack
                        ):  # defensive: combinational loops cannot recurse
                            parts.append(("loop",))
                            continue
                        stack.append(drv)
                        pending = True
                        break
                    parts.append(("d", done, entry[1], entry[2]))
                if pending:
                    break
            if pending:
                continue
            stack.pop()
            fingerprints[id(current)] = hashlib.blake2b(
                repr(parts).encode("utf-8"), digest_size=12
            ).hexdigest()
        return fingerprints[id(cell)]

    for cell in cells:
        fingerprint(cell)
    return fingerprints


def _refined_fingerprints(
    cells: Sequence[Cell],
    driven: Dict[SigBit, Tuple[Cell, str, int]],
    mapb: Callable[[SigBit], SigBit],
    base: Dict[int, str],
    rounds: int = 3,
) -> Dict[int, str]:
    """Weisfeiler–Lehman-style iterated refinement of tied fingerprints.

    The base fingerprint abstracts every free input as one generic
    placeholder, so ``and(a, b)`` and ``and(c, c)`` tie and independently
    built twin modules could order them differently (a conservative cache
    miss).  Refinement alternates two name-free steps until stable (or
    ``rounds``): color each free input by the multiset of ``(reader
    fingerprint, port, offset)`` entries over ``cells``, then recompute
    fingerprints with colored placeholders.  Both steps are functions of
    structure alone, so isomorphic graphs refine identically; residual
    exact ties still fall back to caller order (still conservative).
    """
    fingerprints = dict(base)
    colors: Dict[SigBit, str] = {}
    for _ in range(max(1, rounds)):
        reader_sig: Dict[SigBit, List[Tuple]] = {}
        for cell in cells:
            for port in input_ports(cell.type):
                for offset, bit in enumerate(cell.connections[port]):
                    cbit = mapb(bit)
                    if cbit.is_const or cbit in driven:
                        continue
                    reader_sig.setdefault(cbit, []).append(
                        (fingerprints[id(cell)], port, offset)
                    )
        new_colors = {
            bit: hashlib.blake2b(
                repr(sorted(entries)).encode("utf-8"), digest_size=8
            ).hexdigest()
            for bit, entries in reader_sig.items()
        }
        new_fingerprints = _merkle_fingerprints(
            cells, driven, mapb, colors=new_colors
        )
        if new_fingerprints == fingerprints and new_colors == colors:
            break
        fingerprints, colors = new_fingerprints, new_colors
    return fingerprints


def _canonicalize(
    cells: Sequence[Cell],
    roots: Sequence[SigBit],
    sigmap: Optional[SigMap],
) -> Tuple[str, _Canon, Callable[[SigBit], SigBit]]:
    """Facts-independent phase: label + encode, digest the core payload.

    ``roots`` anchor the traversal (a sub-graph's target, or a module's
    output bits) and their operand encodings fold into the core, so the
    signature pins down which bits the caller is asking about.
    """
    mapb = sigmap.map_bit if sigmap is not None else _identity_map
    driven = _driven_map(cells, mapb)
    canon = _Canon(driven, mapb)
    croots = [mapb(root) for root in roots]
    for root in croots:
        canon.label_cone(root)
    remaining = [c for c in cells if id(c) not in canon.cell_label]
    if remaining:
        fingerprints = _merkle_fingerprints(remaining, driven, mapb)
        order_key = {id(c): (fingerprints[id(c)],) for c in remaining}
        if len({fingerprints[id(c)] for c in remaining}) < len(remaining):
            # tied fingerprints: iterate WL refinement so independently
            # built isomorphic graphs agree on the order; the refined key
            # extends (never replaces) the base key, so tie-free graphs
            # keep their exact pre-refinement signatures
            refined = _refined_fingerprints(
                remaining, driven, mapb, fingerprints
            )
            order_key = {
                id(c): (fingerprints[id(c)], refined[id(c)])
                for c in remaining
            }
        # residual exact ties fall back to the caller's (structure-derived)
        # sequence order — see module docs
        remaining.sort(key=lambda c: order_key[id(c)])
        for cell in remaining:
            for bit in cell.output_bits():
                canon.label_cone(mapb(bit))
            canon.label_cell(cell)
    core = (
        len(canon.order),
        len(canon.input_label),
        canon.encode(),
        tuple(canon.operand(root) for root in croots),
    )
    digest = hashlib.blake2b(
        repr(core).encode("utf-8"), digest_size=16
    ).hexdigest()
    return digest, canon, mapb


def _fold_facts(
    core_digest: str,
    canon: _Canon,
    mapb: Callable[[SigBit], SigBit],
    known: Dict[SigBit, bool],
) -> StructSignature:
    """Hash the facts (and the core) into the final signature."""
    fold = tuple(sorted(
        (canon.operand(mapb(bit)), bool(value))
        for bit, value in known.items()
    ))
    return hashlib.blake2b(
        repr((core_digest, fold)).encode("utf-8"), digest_size=16
    ).hexdigest()


def struct_signature(
    cells: Sequence[Cell],
    target: SigBit,
    known: Dict[SigBit, bool],
    sigmap: Optional[SigMap] = None,
) -> StructSignature:
    """The canonical name-free signature of one redundancy sub-graph.

    ``cells`` is the sub-graph cell set (any order), ``target`` the query
    bit, ``known`` the path facts; ``sigmap`` resolves raw connection
    bits to canonical representatives exactly like the analyses the
    signature keys (pass None for modules without alias connections).
    """
    digest, canon, mapb = _canonicalize(cells, (target,), sigmap)
    return _fold_facts(digest, canon, mapb, known)


def subgraph_signature(subgraph, sigmap: Optional[SigMap] = None) -> StructSignature:
    """:func:`struct_signature` of a :class:`~repro.core.subgraph.SubGraph`."""
    return struct_signature(
        subgraph.cells, subgraph.target, subgraph.known, sigmap
    )


def module_signature(
    module: Module,
    child_signatures: Optional[Dict[str, StructSignature]] = None,
) -> StructSignature:
    """The canonical name-free signature of a whole module.

    Roots are the output-port bits (in wire insertion order — preserved
    by :meth:`~repro.ir.module.Module.clone` and :func:`renamed_copy`, so
    renamed clones hash equal); alias connections resolve through a
    fresh :class:`~repro.ir.module.SigMap`.  Two modules with equal
    signatures are isomorphic netlists, so any *value* that is invariant
    under renaming — AIG areas, optimization outcomes, equivalence
    verdicts — may be shared between them.  This is what lets
    :meth:`~repro.flow.session.Session.run_suite` replay a whole
    (case × flow) job for a structurally identical case instead of
    re-optimizing it, and what groups instances into the isomorphic
    classes :meth:`~repro.flow.session.Session.run_hierarchy` replays.

    For a module with :class:`~repro.ir.module.Instance` children the
    signature is *hierarchical*: instance binding bits join the roots (so
    parent logic feeding a child is covered), and each instance folds in
    as its child's identity — the entry from ``child_signatures`` keyed by
    child module name, or the bare child name when the caller supplies
    none — plus its name-free binding encodings, sorted.  Two parents with
    identical cells but different children therefore hash differently.
    Modules without instances hash byte-identically to the flat scheme.
    """
    sigmap = SigMap(module) if module.connections else None
    roots = [
        SigBit(wire, offset)
        for wire in module.wires.values() if wire.port_output
        for offset in range(wire.width)
    ]
    for inst in module.instances.values():
        roots.extend(inst.binding_bits())
    cells = list(module.cells.values())
    digest, canon, mapb = _canonicalize(cells, roots, sigmap)
    if not module.instances:
        return digest
    entries = []
    for inst in module.instances.values():
        child = inst.module_name
        if child_signatures is not None:
            child = child_signatures.get(child, child)
        bindings = tuple(sorted(
            (port, tuple(canon.operand(mapb(bit)) for bit in spec))
            for port, spec in inst.connections.items()
        ))
        entries.append((child, bindings))
    return hashlib.blake2b(
        repr((digest, tuple(sorted(entries)))).encode("utf-8"),
        digest_size=16,
    ).hexdigest()


class StructKeyMemo:
    """Bounded labeling memo: one canonicalization per sub-graph state.

    Keyed by the cheap identity tuple — ``(cell name, version)`` pairs,
    the canonical target, the free-input list and the fact *bits* (not
    values) — exactly the boundary the PR 2/PR 4 invalidation argument
    proves to determine the sub-graph's content: any rewire bumps a
    version, and any alias re-canonicalisation that changes the structure
    without touching a cell (``module.connect`` folding a boundary bit to
    a constant, merging two inputs, …) changes the input list or a fact
    bit and misses.  Fact *values* deliberately stay out: the labeling is
    facts-independent, so the polarity variants the traversal and the
    oracle's two-polarity protocol generate pay only a sorted fold.

    Cached entries are pure — the core digest plus a ``bit → operand
    encoding`` table over the labeled boundary/driven bits — so the memo
    pins no :class:`Cell` objects, no :class:`~repro.ir.module.SigMap`
    snapshot and no closures; a fact bit missing from the table (only
    possible for callers that pass facts outside the sub-graph) falls
    back to a fresh uncached canonicalization rather than mutating shared
    state.  Entries are evicted oldest-first at the size cap like every
    other bounded memo here.
    """

    __slots__ = ("max_entries", "_cores", "hits", "misses")

    def __init__(self, max_entries: int = 50_000):
        self.max_entries = max_entries
        self._cores: Dict[Tuple, Tuple[str, Dict[SigBit, _Operand]]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cores)

    @staticmethod
    def _fold_table(canon: _Canon) -> Dict[SigBit, _Operand]:
        """Every labeled bit's operand encoding, as pure data."""
        table: Dict[SigBit, _Operand] = {}
        for bit, index in canon.input_label.items():
            table[bit] = ("i", index)
        for bit, (cell, port, offset) in canon.driven.items():
            label = canon.cell_label.get(id(cell))
            if label is not None:
                table[bit] = ("d", label, port, offset)
        return table

    def signature(
        self,
        cells: Sequence[Cell],
        target: SigBit,
        known: Dict[SigBit, bool],
        inputs: Sequence[SigBit] = (),
        sigmap: Optional[SigMap] = None,
    ) -> StructSignature:
        """The structural signature, with the labeling phase memoized."""
        mapb = sigmap.map_bit if sigmap is not None else _identity_map
        ident = (
            tuple((cell.name, cell.version) for cell in cells),
            mapb(target),
            tuple(inputs),
            frozenset(known),
        )
        core = self._cores.get(ident)
        if core is not None:
            self.hits += 1
        else:
            self.misses += 1
            digest, canon, _core_mapb = _canonicalize(
                cells, (target,), sigmap
            )
            core = (digest, self._fold_table(canon))
            if len(self._cores) >= self.max_entries:
                for stale in list(self._cores)[: self.max_entries // 2]:
                    self._cores.pop(stale, None)
            self._cores[ident] = core
        digest, table = core
        fold = []
        for bit, value in known.items():
            cbit = mapb(bit)
            operand = (
                ("c", str(cbit.state)) if cbit.is_const else table.get(cbit)
            )
            if operand is None:
                # a fact outside the labeled sub-graph: never produced by
                # the extraction paths — recompute fresh, do not share
                return struct_signature(cells, target, known, sigmap)
            fold.append((operand, bool(value)))
        return hashlib.blake2b(
            repr((digest, tuple(sorted(fold)))).encode("utf-8"),
            digest_size=16,
        ).hexdigest()


def renamed_copy(
    module: Module, prefix: str = "rn", name: Optional[str] = None
) -> Module:
    """A structure-preserving copy with every wire and cell renamed.

    New names are ``{prefix}{index}`` with indices assigned in *reverse*
    sorted order of the original names, so the copy's name sort order is
    the inverse of the original's — which scrambles every name-ordered
    tie-break (sub-graph topological roots, merge survivor choice) while
    preserving structure exactly.  The benchmark and the struct-hash
    property tests use this to prove signatures name-independent; it is
    not an optimization-flow API.
    """
    other = Module(name if name is not None else f"{prefix}_{module.name}")
    other._name_counter = module._name_counter
    wire_names = {
        wname: f"{prefix}w{index}"
        for index, wname in enumerate(sorted(module.wires, reverse=True))
    }
    cell_names = {
        cname: f"{prefix}c{index}"
        for index, cname in enumerate(sorted(module.cells, reverse=True))
    }
    wire_map: Dict[int, object] = {}
    for wire in module.wires.values():
        copy = other.add_wire(
            wire_names[wire.name], wire.width, wire.port_input,
            wire.port_output,
        )
        copy.attributes = dict(wire.attributes)
        wire_map[id(wire)] = copy

    def translate(spec: SigSpec) -> SigSpec:
        return SigSpec(
            bit if bit.is_const else SigBit(wire_map[id(bit.wire)], bit.offset)
            for bit in spec
        )

    for cell in module.cells.values():
        copy_cell = Cell(cell_names[cell.name], cell.type, cell.width, cell.n)
        copy_cell.attributes = dict(cell.attributes)
        for pname, spec in cell.connections.items():
            copy_cell.connections[pname] = translate(spec)
        other.cells[copy_cell.name] = copy_cell
        copy_cell._module = other
    for lhs, rhs in module.connections:
        other.connections.append((translate(lhs), translate(rhs)))
    for inst in module.instances.values():
        copy_inst = Instance(inst.name, inst.module_name, {
            port: translate(spec) for port, spec in inst.connections.items()
        })
        copy_inst.attributes = dict(inst.attributes)
        other.instances[inst.name] = copy_inst
    return other


__all__ = [
    "SCHEME_FINGERPRINT",
    "StructKeyMemo",
    "StructSignature",
    "module_signature",
    "renamed_copy",
    "struct_signature",
    "subgraph_signature",
]
