"""Structural Verilog backend: dump a netlist module as synthesizable code.

The writer emits one `assign`/instance-free expression per cell so the
output is plain structural Verilog-2001 readable by any tool (including
this package's own frontend, enabling write/read round-trips in tests).
Sequential cells become `always @(posedge clk)` blocks.
"""

from __future__ import annotations

import io
from typing import Dict, List, TextIO

from .cells import CellType
from .module import Cell, Module
from .signals import SigBit, SigSpec, State
from .walker import NetIndex


class VerilogWriter:
    """Renders one module.  Wire names are sanitised to Verilog idents."""

    def __init__(self, module: Module):
        self.module = module
        self._name_map: Dict[str, str] = {}
        self._used: set = set()

    # -- naming ----------------------------------------------------------------

    def _sanitize(self, name: str) -> str:
        cached = self._name_map.get(name)
        if cached is not None:
            return cached
        cleaned = "".join(
            ch if ch.isalnum() or ch == "_" else "_" for ch in name
        )
        if not cleaned or cleaned[0].isdigit():
            cleaned = "n_" + cleaned
        candidate = cleaned
        suffix = 1
        while candidate in self._used:
            suffix += 1
            candidate = f"{cleaned}_{suffix}"
        self._used.add(candidate)
        self._name_map[name] = candidate
        return candidate

    # -- expression rendering -----------------------------------------------------

    def _bit_expr(self, bit: SigBit) -> str:
        if bit.is_const:
            return {State.S0: "1'b0", State.S1: "1'b1", State.Sx: "1'bx"}[bit.state]
        name = self._sanitize(bit.wire.name)
        if bit.wire.width == 1:
            return name
        return f"{name}[{bit.offset}]"

    def _spec_expr(self, spec: SigSpec) -> str:
        """Render a SigSpec, collapsing runs into part-selects."""
        if len(spec) == 1:
            return self._bit_expr(spec[0])
        parts: List[str] = []
        i = 0
        bits = list(spec)
        while i < len(bits):
            bit = bits[i]
            j = i
            if bit.is_const:
                while j + 1 < len(bits) and bits[j + 1].is_const:
                    j += 1
                chunk = bits[i:j + 1]
                text = "".join(
                    {State.S0: "0", State.S1: "1", State.Sx: "x"}[b.state]
                    for b in reversed(chunk)
                )
                parts.append(f"{len(chunk)}'b{text}")
            else:
                while (
                    j + 1 < len(bits)
                    and bits[j + 1].wire is bit.wire
                    and bits[j + 1].offset == bits[j].offset + 1
                ):
                    j += 1
                name = self._sanitize(bit.wire.name)
                if j == i:
                    parts.append(self._bit_expr(bit))
                elif bit.offset == 0 and j - i + 1 == bit.wire.width:
                    parts.append(name)
                else:
                    parts.append(f"{name}[{bits[j].offset}:{bit.offset}]")
            i = j + 1
        if len(parts) == 1:
            return parts[0]
        return "{" + ", ".join(reversed(parts)) + "}"

    # -- cell rendering ----------------------------------------------------------------

    _BINOP = {
        CellType.AND: "&",
        CellType.OR: "|",
        CellType.XOR: "^",
        CellType.ADD: "+",
        CellType.SUB: "-",
        CellType.EQ: "==",
        CellType.NE: "!=",
        CellType.LT: "<",
        CellType.LE: "<=",
        CellType.LOGIC_AND: "&&",
        CellType.LOGIC_OR: "||",
        CellType.SHL: "<<",
        CellType.SHR: ">>",
    }

    def _cell_expr(self, cell: Cell) -> str:
        conn = cell.connections
        t = cell.type
        if t in self._BINOP:
            return (
                f"{self._spec_expr(conn['A'])} {self._BINOP[t]} "
                f"{self._spec_expr(conn['B'])}"
            )
        if t is CellType.NOT:
            return f"~{self._spec_expr(conn['A'])}"
        if t is CellType.XNOR:
            return f"~({self._spec_expr(conn['A'])} ^ {self._spec_expr(conn['B'])})"
        if t is CellType.NAND:
            return f"~({self._spec_expr(conn['A'])} & {self._spec_expr(conn['B'])})"
        if t is CellType.NOR:
            return f"~({self._spec_expr(conn['A'])} | {self._spec_expr(conn['B'])})"
        if t is CellType.MUX:
            return (
                f"{self._spec_expr(conn['S'])} ? {self._spec_expr(conn['B'])}"
                f" : {self._spec_expr(conn['A'])}"
            )
        if t is CellType.PMUX:
            # priority chain, lowest select index wins
            expr = self._spec_expr(conn["A"])
            width = cell.width
            for i in range(cell.n - 1, -1, -1):
                branch = conn["B"][i * width:(i + 1) * width]
                expr = (
                    f"{self._bit_expr(conn['S'][i])} ? "
                    f"{self._spec_expr(branch)} : ({expr})"
                )
            return expr
        if t is CellType.REDUCE_AND:
            return f"&{self._spec_expr(conn['A'])}"
        if t in (CellType.REDUCE_OR, CellType.REDUCE_BOOL):
            return f"|{self._spec_expr(conn['A'])}"
        if t is CellType.REDUCE_XOR:
            return f"^{self._spec_expr(conn['A'])}"
        if t is CellType.LOGIC_NOT:
            return f"!{self._spec_expr(conn['A'])}"
        raise NotImplementedError(f"no Verilog rendering for {t}")

    # -- module rendering -----------------------------------------------------------------

    def write(self, stream: TextIO) -> None:
        module = self.module
        ports = [w for w in module.wires.values() if w.is_port]
        port_names = ", ".join(self._sanitize(w.name) for w in ports)
        stream.write(f"module {self._sanitize(module.name)}({port_names});\n")

        def range_of(wire):
            return f" [{wire.width - 1}:0]" if wire.width > 1 else ""

        for wire in ports:
            direction = "input" if wire.port_input else "output"
            stream.write(
                f"  {direction}{range_of(wire)} {self._sanitize(wire.name)};\n"
            )
        for wire in module.wires.values():
            if not wire.is_port:
                stream.write(
                    f"  wire{range_of(wire)} {self._sanitize(wire.name)};\n"
                )
        # registers need reg declarations; emit shadow regs for dff outputs
        dffs = [c for c in module.cells.values() if c.type is CellType.DFF]
        for cell in dffs:
            stream.write(
                f"  reg [{cell.width - 1}:0] {self._sanitize(cell.name)}_q;\n"
            )
        stream.write("\n")

        for cell in module.cells.values():
            if cell.type is CellType.DFF:
                continue
            target = self._spec_expr(cell.connections["Y"])
            stream.write(f"  assign {target} = {self._cell_expr(cell)};\n")

        for cell in dffs:
            reg = f"{self._sanitize(cell.name)}_q"
            clk = self._bit_expr(cell.connections["CLK"][0])
            stream.write(
                f"  always @(posedge {clk}) {reg} <= "
                f"{self._spec_expr(cell.connections['D'])};\n"
            )
            stream.write(
                f"  assign {self._spec_expr(cell.connections['Q'])} = {reg};\n"
            )

        for lhs, rhs in module.connections:
            stream.write(
                f"  assign {self._spec_expr(lhs)} = {self._spec_expr(rhs)};\n"
            )
        stream.write("endmodule\n")


def write_verilog(module: Module, stream: TextIO) -> None:
    """Write a module as structural Verilog."""
    VerilogWriter(module).write(stream)


def verilog_str(module: Module) -> str:
    buffer = io.StringIO()
    write_verilog(module, buffer)
    return buffer.getvalue()
