"""Top-level design container (a set of modules with one top)."""

from __future__ import annotations

from typing import Dict, Optional

from .module import Module


class Design:
    """A collection of modules.  Flows in this library are single-module;
    the container exists so frontends can hold several parsed modules and
    select a top."""

    def __init__(self, top: Optional[Module] = None):
        self.modules: Dict[str, Module] = {}
        self._top_name: Optional[str] = None
        if top is not None:
            self.add_module(top, top=True)

    def add_module(self, module: Module, top: bool = False) -> Module:
        if module.name in self.modules:
            raise ValueError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        if top or self._top_name is None:
            self._top_name = module.name
        return module

    @property
    def top(self) -> Module:
        if self._top_name is None:
            raise ValueError("design has no modules")
        return self.modules[self._top_name]

    def set_top(self, name: str) -> None:
        if name not in self.modules:
            raise KeyError(f"no module named {name!r}")
        self._top_name = name

    def __repr__(self) -> str:
        return f"Design({list(self.modules)}, top={self._top_name!r})"
