"""Top-level design container (a set of modules with one top).

Like :class:`~repro.ir.module.Module`, a :class:`Design` is observable: it
forwards every member module's structural-edit notifications on its own
channel (:meth:`Design.add_listener`, :class:`DesignEdit`) together with
design-level events (module added/removed, top changed), and keeps a
monotone per-module **content revision** counter.  The revision is what the
design-scope incremental engine keys on: :class:`repro.flow.session.Session`
records the revision a module had when a flow last converged on it, and a
later run of the same flow can skip the module entirely when the revision
is unchanged — or seed the pass engine with just the edits made in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from .module import Module, ModuleEdit, ModuleListener

# -- design-level edit notifications -------------------------------------------

MODULE_ADDED = "module_added"
MODULE_REMOVED = "module_removed"
MODULE_EDITED = "module_edited"
TOP_CHANGED = "top_changed"


@dataclass(frozen=True)
class DesignEdit:
    """One design-level edit, published to :meth:`Design.add_listener` hooks.

    ``module`` is the affected module's name; for ``module_edited`` the
    underlying structural :class:`~repro.ir.module.ModuleEdit` rides along
    in ``edit`` (the design channel is a superset of every member module's
    channel, so one subscription observes the whole design).
    """

    kind: str
    module: str
    edit: Optional[ModuleEdit] = None


DesignListener = Callable[[DesignEdit], None]


class Design:
    """A collection of modules with a designated top.

    Frontends produce designs; :class:`repro.flow.session.Session` owns one
    and runs flows over its modules (all of them or a selected top).

    Every module added to a design is subscribed with a forwarding listener:
    its structural edits bump the design's per-module :meth:`revision`
    counter and are re-published as ``module_edited`` design edits.  All
    structural edits must go through the notifying ``Module``/``Cell`` APIs
    for revisions (and everything built on them) to stay truthful.
    """

    def __init__(self, top: Optional[Module] = None):
        self.modules: Dict[str, Module] = {}
        self._top_name: Optional[str] = None
        self._listeners: List[DesignListener] = []
        #: module name -> the forwarding ModuleListener subscribed on it
        self._forwarders: Dict[str, ModuleListener] = {}
        #: module name -> monotone content-revision counter
        self._revisions: Dict[str, int] = {}
        if top is not None:
            self.add_module(top, top=True)

    # -- edit notifications ---------------------------------------------------

    def add_listener(self, listener: DesignListener) -> DesignListener:
        """Register a design-edit observer; returns it for nesting."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener: DesignListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, edit: DesignEdit) -> None:
        for listener in tuple(self._listeners):
            listener(edit)

    def _subscribe(self, module: Module) -> None:
        name = module.name

        def forward(edit: ModuleEdit) -> None:
            self._revisions[name] += 1
            if self._listeners:
                self._notify(DesignEdit(MODULE_EDITED, name, edit))

        self._forwarders[name] = module.add_listener(forward)

    def revision(self, name: str) -> int:
        """Monotone count of structural edits to module ``name`` since it
        joined the design.  Equal revisions mean byte-identical content
        (edits outside the notifying APIs are unsupported, as for the live
        :class:`~repro.ir.walker.NetIndex`)."""
        return self._revisions[name]

    # -- membership -----------------------------------------------------------

    def add_module(self, module: Module, top: bool = False) -> Module:
        if module.name in self.modules:
            raise ValueError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        self._revisions[module.name] = 0
        self._subscribe(module)
        if top or self._top_name is None:
            self._top_name = module.name
        if self._listeners:
            self._notify(DesignEdit(MODULE_ADDED, module.name))
        return module

    def remove_module(self, module) -> Module:
        """Detach a module (by name or instance) from the design.

        The forwarding listener is unsubscribed, so later edits to the
        removed module no longer reach design observers.  Removing the top
        promotes the earliest remaining module (or leaves the design empty).
        """
        name = module if isinstance(module, str) else module.name
        removed = self.modules.pop(name)
        removed.remove_listener(self._forwarders.pop(name))
        self._revisions.pop(name, None)
        if self._top_name == name:
            self._top_name = next(iter(self.modules), None)
        if self._listeners:
            self._notify(DesignEdit(MODULE_REMOVED, name))
        return removed

    @property
    def top(self) -> Module:
        if self._top_name is None:
            raise ValueError("design has no modules")
        return self.modules[self._top_name]

    def set_top(self, name: str) -> None:
        if name not in self.modules:
            raise KeyError(f"no module named {name!r}")
        self._top_name = name
        if self._listeners:
            self._notify(DesignEdit(TOP_CHANGED, name))

    @property
    def top_name(self) -> Optional[str]:
        return self._top_name

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def __getitem__(self, name: str) -> Module:
        return self.modules[name]

    def clone(self) -> "Design":
        """Deep-copy every module, preserving the top selection.

        The clone gets fresh forwarders and zeroed revisions — it is a new
        design whose content merely starts equal to this one's.
        """
        copy = Design()
        for name, module in self.modules.items():
            copy.add_module(module.clone(), top=(name == self._top_name))
        return copy

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        # listeners and forwarders are session-local closures; revisions
        # restart at 0 on the receiving side (a fresh design identity)
        state = dict(self.__dict__)
        state["_listeners"] = []
        state["_forwarders"] = {}
        state["_revisions"] = {name: 0 for name in self.modules}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._listeners = []
        self._forwarders = {}
        for module in self.modules.values():
            self._subscribe(module)

    def __repr__(self) -> str:
        return f"Design({list(self.modules)}, top={self._top_name!r})"
