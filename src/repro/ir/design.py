"""Top-level design container (a set of modules with one top).

Like :class:`~repro.ir.module.Module`, a :class:`Design` is observable: it
forwards every member module's structural-edit notifications on its own
channel (:meth:`Design.add_listener`, :class:`DesignEdit`) together with
design-level events (module added/removed, top changed), and keeps a
monotone per-module **content revision** counter.  The revision is what the
design-scope incremental engine keys on: :class:`repro.flow.session.Session`
records the revision a module had when a flow last converged on it, and a
later run of the same flow can skip the module entirely when the revision
is unchanged — or seed the pass engine with just the edits made in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .module import (
    INSTANCE_ADDED,
    INSTANCE_REMOVED,
    Instance,
    Module,
    ModuleEdit,
    ModuleListener,
)

# -- design-level edit notifications -------------------------------------------

MODULE_ADDED = "module_added"
MODULE_REMOVED = "module_removed"
MODULE_EDITED = "module_edited"
TOP_CHANGED = "top_changed"
CHILD_EDITED = "child_edited"


@dataclass(frozen=True)
class DesignEdit:
    """One design-level edit, published to :meth:`Design.add_listener` hooks.

    ``module`` is the affected module's name; for ``module_edited`` the
    underlying structural :class:`~repro.ir.module.ModuleEdit` rides along
    in ``edit`` (the design channel is a superset of every member module's
    channel, so one subscription observes the whole design).

    ``child_edited`` is the cross-boundary forwarding event: when a module
    is edited, every transitive instantiating ancestor receives one with
    ``module`` naming the ancestor and ``child`` naming its *direct* child
    on the edited path — the ancestor's bindings of that child are exactly
    the nets whose upstream semantics may have changed.
    """

    kind: str
    module: str
    edit: Optional[ModuleEdit] = None
    child: Optional[str] = None


DesignListener = Callable[[DesignEdit], None]


class Design:
    """A collection of modules with a designated top.

    Frontends produce designs; :class:`repro.flow.session.Session` owns one
    and runs flows over its modules (all of them or a selected top).

    Every module added to a design is subscribed with a forwarding listener:
    its structural edits bump the design's per-module :meth:`revision`
    counter and are re-published as ``module_edited`` design edits.  All
    structural edits must go through the notifying ``Module``/``Cell`` APIs
    for revisions (and everything built on them) to stay truthful.
    """

    def __init__(self, top: Optional[Module] = None):
        self.modules: Dict[str, Module] = {}
        self._top_name: Optional[str] = None
        self._listeners: List[DesignListener] = []
        #: module name -> the forwarding ModuleListener subscribed on it
        self._forwarders: Dict[str, ModuleListener] = {}
        #: module name -> monotone content-revision counter
        self._revisions: Dict[str, int] = {}
        #: child module name -> {parent module name: instance count}
        self._instantiators: Dict[str, Dict[str, int]] = {}
        if top is not None:
            self.add_module(top, top=True)

    # -- edit notifications ---------------------------------------------------

    def add_listener(self, listener: DesignListener) -> DesignListener:
        """Register a design-edit observer; returns it for nesting."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener: DesignListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, edit: DesignEdit) -> None:
        for listener in tuple(self._listeners):
            listener(edit)

    def _subscribe(self, module: Module) -> None:
        name = module.name

        def forward(edit: ModuleEdit) -> None:
            self._revisions[name] += 1
            if edit.kind == INSTANCE_ADDED:
                self._count_instance(name, edit.instance.module_name, +1)
            elif edit.kind == INSTANCE_REMOVED:
                self._count_instance(name, edit.instance.module_name, -1)
            if self._listeners:
                self._notify(DesignEdit(MODULE_EDITED, name, edit))
            self._propagate_child_edit(name)

        self._forwarders[name] = module.add_listener(forward)

    def _count_instance(self, parent: str, child: str, delta: int) -> None:
        parents = self._instantiators.setdefault(child, {})
        count = parents.get(parent, 0) + delta
        if count > 0:
            parents[parent] = count
        else:
            parents.pop(parent, None)
            if not parents:
                self._instantiators.pop(child, None)

    def _propagate_child_edit(self, child: str) -> None:
        """Bump every transitive instantiating ancestor's revision.

        A child-module edit changes the hierarchical content of each parent
        instantiation site, so parents must not be skipped as "unchanged" by
        revision-keyed consumers.  Each ancestor is notified once per edit
        with its *direct* child on the edited path (cycles are guarded even
        though :func:`repro.ir.hierarchy.hierarchy` rejects them).
        """
        visited = {child}
        frontier = [child]
        while frontier:
            edited = frontier.pop()
            for parent in sorted(self._instantiators.get(edited, {})):
                if parent in visited or parent not in self.modules:
                    continue
                visited.add(parent)
                self._revisions[parent] += 1
                if self._listeners:
                    self._notify(
                        DesignEdit(CHILD_EDITED, parent, child=edited)
                    )
                frontier.append(parent)

    def revision(self, name: str) -> int:
        """Monotone count of structural edits to module ``name`` — or to any
        module it transitively instantiates — since it joined the design.
        Equal revisions mean byte-identical *hierarchical* content (edits
        outside the notifying APIs are unsupported, as for the live
        :class:`~repro.ir.walker.NetIndex`)."""
        return self._revisions[name]

    # -- membership -----------------------------------------------------------

    def add_module(self, module: Module, top: bool = False) -> Module:
        if module.name in self.modules:
            raise ValueError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        self._revisions[module.name] = 0
        self._subscribe(module)
        for inst in module.instances.values():
            self._count_instance(module.name, inst.module_name, +1)
        if top or self._top_name is None:
            self._top_name = module.name
        if self._listeners:
            self._notify(DesignEdit(MODULE_ADDED, module.name))
        return module

    def instantiators(self, name: str) -> List[str]:
        """Names of modules currently holding instances of ``name``, sorted."""
        return sorted(
            parent for parent, count in self._instantiators.get(name, {}).items()
            if count > 0 and parent in self.modules
        )

    def instances(self) -> Iterator[Tuple[Module, Instance]]:
        """Every ``(parent module, instance)`` pair in the design, in module
        and instance insertion order."""
        for module in self.modules.values():
            for inst in module.instances.values():
                yield module, inst

    def remove_module(self, module) -> Module:
        """Detach a module (by name or instance) from the design.

        Raises :class:`ValueError` while other modules still instantiate it
        — removal must never leave dangling instance bindings; callers
        remove or retarget the instances first.  (A module's instances of
        *itself* do not block removal: they leave with it.)

        The forwarding listener is unsubscribed, so later edits to the
        removed module no longer reach design observers.  Removing the top
        deterministically promotes the first remaining *root* module (one no
        other remaining module instantiates) in insertion order, falling
        back to the first remaining module, and publishes ``top_changed``.
        """
        name = module if isinstance(module, str) else module.name
        holders = [p for p in self.instantiators(name) if p != name]
        if holders:
            raise ValueError(
                f"cannot remove module {name!r}: still instantiated by "
                f"{holders}"
            )
        removed = self.modules.pop(name)
        removed.remove_listener(self._forwarders.pop(name))
        self._revisions.pop(name, None)
        self._instantiators.pop(name, None)
        for inst in removed.instances.values():
            self._count_instance(name, inst.module_name, -1)
        top_removed = self._top_name == name
        if top_removed:
            self._top_name = self._pick_top()
        if self._listeners:
            self._notify(DesignEdit(MODULE_REMOVED, name))
            if top_removed and self._top_name is not None:
                self._notify(DesignEdit(TOP_CHANGED, self._top_name))
        return removed

    def _pick_top(self) -> Optional[str]:
        """First uninstantiated module in insertion order, else the first."""
        for name in self.modules:
            if not [p for p in self.instantiators(name) if p != name]:
                return name
        return next(iter(self.modules), None)

    def replace_module(self, name: str, module: Module) -> Module:
        """Swap module ``name`` for a replacement with the same name.

        This is the isomorphic-replay primitive: instance bindings reference
        children *by name*, so swapping the module object in place keeps
        every parent instantiation site valid while the content changes
        wholesale.  Observers see ``module_removed`` then ``module_added``
        (a full per-module reset), the revision counter bumps (never
        resets), and instantiating ancestors are dirtied exactly as for an
        in-place edit.  The top selection and module order are preserved.
        """
        if module.name != name:
            raise ValueError(
                f"replacement module is named {module.name!r}, expected "
                f"{name!r}"
            )
        old = self.modules[name]
        if module is old:
            return old
        old.remove_listener(self._forwarders.pop(name))
        for inst in old.instances.values():
            self._count_instance(name, inst.module_name, -1)
        self.modules[name] = module  # same key: insertion order preserved
        self._revisions[name] += 1
        self._subscribe(module)
        for inst in module.instances.values():
            self._count_instance(name, inst.module_name, +1)
        if self._listeners:
            self._notify(DesignEdit(MODULE_REMOVED, name))
            self._notify(DesignEdit(MODULE_ADDED, name))
        self._propagate_child_edit(name)
        return old

    @property
    def top(self) -> Module:
        if self._top_name is None:
            raise ValueError("design has no modules")
        return self.modules[self._top_name]

    def set_top(self, name: str) -> None:
        if name not in self.modules:
            raise KeyError(f"no module named {name!r}")
        self._top_name = name
        if self._listeners:
            self._notify(DesignEdit(TOP_CHANGED, name))

    @property
    def top_name(self) -> Optional[str]:
        return self._top_name

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def __getitem__(self, name: str) -> Module:
        return self.modules[name]

    def clone(self) -> "Design":
        """Deep-copy every module, preserving the top selection.

        The clone gets fresh forwarders and zeroed revisions — it is a new
        design whose content merely starts equal to this one's.
        """
        copy = Design()
        for name, module in self.modules.items():
            copy.add_module(module.clone(), top=(name == self._top_name))
        return copy

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        # listeners and forwarders are session-local closures; revisions
        # restart at 0 on the receiving side (a fresh design identity)
        state = dict(self.__dict__)
        state["_listeners"] = []
        state["_forwarders"] = {}
        state["_revisions"] = {name: 0 for name in self.modules}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._listeners = []
        self._forwarders = {}
        self._instantiators = {}
        for module in self.modules.values():
            self._subscribe(module)
            for inst in module.instances.values():
                self._count_instance(module.name, inst.module_name, +1)

    def __repr__(self) -> str:
        return f"Design({list(self.modules)}, top={self._top_name!r})"
