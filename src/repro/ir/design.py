"""Top-level design container (a set of modules with one top)."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from .module import Module


class Design:
    """A collection of modules with a designated top.

    Frontends produce designs; :class:`repro.flow.session.Session` owns one
    and runs flows over its modules (all of them or a selected top)."""

    def __init__(self, top: Optional[Module] = None):
        self.modules: Dict[str, Module] = {}
        self._top_name: Optional[str] = None
        if top is not None:
            self.add_module(top, top=True)

    def add_module(self, module: Module, top: bool = False) -> Module:
        if module.name in self.modules:
            raise ValueError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        if top or self._top_name is None:
            self._top_name = module.name
        return module

    @property
    def top(self) -> Module:
        if self._top_name is None:
            raise ValueError("design has no modules")
        return self.modules[self._top_name]

    def set_top(self, name: str) -> None:
        if name not in self.modules:
            raise KeyError(f"no module named {name!r}")
        self._top_name = name

    @property
    def top_name(self) -> Optional[str]:
        return self._top_name

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def __getitem__(self, name: str) -> Module:
        return self.modules[name]

    def clone(self) -> "Design":
        """Deep-copy every module, preserving the top selection."""
        copy = Design()
        for name, module in self.modules.items():
            copy.add_module(module.clone(), top=(name == self._top_name))
        return copy

    def __repr__(self) -> str:
        return f"Design({list(self.modules)}, top={self._top_name!r})"
