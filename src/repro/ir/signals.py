"""Bit-level signal representation for the RTL netlist IR.

The IR follows the conventions of Yosys RTLIL:

* a :class:`Wire` is a named bundle of bits with a fixed width,
* a :class:`SigBit` is either one bit of a wire or a constant logic state,
* a :class:`SigSpec` is an immutable sequence of ``SigBit`` objects.

All multi-bit values are **LSB first**: ``spec[0]`` is bit 0.  Constants use
three-valued logic (:class:`State`): ``0``, ``1`` and the unknown/don't-care
value ``x``.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union


class State(enum.Enum):
    """A constant logic state (three-valued)."""

    S0 = 0
    S1 = 1
    Sx = 2

    @staticmethod
    def from_bool(value: bool) -> "State":
        return State.S1 if value else State.S0

    @property
    def is_defined(self) -> bool:
        """True for ``0``/``1``, False for ``x``."""
        return self is not State.Sx

    def to_bool(self) -> bool:
        if self is State.Sx:
            raise ValueError("cannot convert State.Sx to bool")
        return self is State.S1

    def __invert__(self) -> "State":
        if self is State.S0:
            return State.S1
        if self is State.S1:
            return State.S0
        return State.Sx

    def __str__(self) -> str:
        return {State.S0: "0", State.S1: "1", State.Sx: "x"}[self]


class Wire:
    """A named, fixed-width vector of nets inside a module.

    Wires are identity-hashed; names are unique within their module.  The
    ``port_input``/``port_output`` flags mark module ports.
    """

    __slots__ = ("name", "width", "port_input", "port_output", "attributes")

    def __init__(
        self,
        name: str,
        width: int = 1,
        port_input: bool = False,
        port_output: bool = False,
    ):
        if width < 1:
            raise ValueError(f"wire {name!r} must have width >= 1, got {width}")
        if port_input and port_output:
            raise ValueError(f"wire {name!r} cannot be both input and output")
        self.name = name
        self.width = width
        self.port_input = port_input
        self.port_output = port_output
        self.attributes: dict = {}

    @property
    def is_port(self) -> bool:
        return self.port_input or self.port_output

    def __getitem__(self, index) -> Union["SigBit", "SigSpec"]:
        return SigSpec.from_wire(self)[index]

    def __len__(self) -> int:
        return self.width

    def __repr__(self) -> str:
        kind = "input " if self.port_input else "output " if self.port_output else ""
        return f"Wire({kind}{self.name}[{self.width}])"


class SigBit:
    """A single-bit signal: one bit of a wire, or a constant :class:`State`.

    ``SigBit`` is immutable and cheap to hash; constant bits are interned
    (``BIT0``, ``BIT1``, ``BITX``).
    """

    __slots__ = ("wire", "offset", "state", "_hash")

    def __init__(
        self,
        wire: Optional[Wire] = None,
        offset: int = 0,
        state: Optional[State] = None,
    ):
        if (wire is None) == (state is None):
            raise ValueError("SigBit needs exactly one of wire or state")
        if wire is not None and not (0 <= offset < wire.width):
            raise IndexError(
                f"bit offset {offset} out of range for {wire.name}[{wire.width}]"
            )
        object.__setattr__(self, "wire", wire)
        object.__setattr__(self, "offset", offset if wire is not None else 0)
        object.__setattr__(self, "state", state)
        object.__setattr__(
            self, "_hash", hash((id(wire), offset)) if wire is not None else hash(state)
        )

    def __setattr__(self, name, value):
        raise AttributeError("SigBit is immutable")

    @property
    def is_const(self) -> bool:
        return self.state is not None

    @property
    def is_wire(self) -> bool:
        return self.wire is not None

    def const_value(self) -> State:
        if self.state is None:
            raise ValueError(f"{self!r} is not a constant bit")
        return self.state

    def __eq__(self, other) -> bool:
        if not isinstance(other, SigBit):
            return NotImplemented
        if self.state is not None or other.state is not None:
            return self.state is other.state
        return self.wire is other.wire and self.offset == other.offset

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # immutability blocks the default slots state protocol (setattr
        # raises), so pickling goes back through the constructor; wire
        # identity within one pickled graph is preserved by the pickle memo
        return (SigBit, (self.wire, self.offset, self.state))

    def __repr__(self) -> str:
        if self.state is not None:
            return f"<{self.state}>"
        if self.wire.width == 1:
            return f"<{self.wire.name}>"
        return f"<{self.wire.name}[{self.offset}]>"


BIT0 = SigBit(state=State.S0)
BIT1 = SigBit(state=State.S1)
BITX = SigBit(state=State.Sx)

_STATE_TO_BIT = {State.S0: BIT0, State.S1: BIT1, State.Sx: BITX}


def const_bit(value: Union[State, int, bool]) -> SigBit:
    """Return the interned constant bit for ``value`` (0, 1, bool or State)."""
    if isinstance(value, State):
        return _STATE_TO_BIT[value]
    if isinstance(value, bool):
        return BIT1 if value else BIT0
    if value in (0, 1):
        return BIT1 if value else BIT0
    raise ValueError(f"not a constant bit value: {value!r}")


SigLike = Union["SigSpec", SigBit, Wire, int, str, Sequence]


class SigSpec:
    """An immutable, LSB-first sequence of :class:`SigBit` objects.

    ``SigSpec`` supports slicing, concatenation, constant extraction and
    equality; it is the universal currency of cell ports and module
    connections.
    """

    __slots__ = ("_bits", "_hash")

    def __init__(self, bits: Iterable[SigBit] = ()):
        bits = tuple(bits)
        for bit in bits:
            if not isinstance(bit, SigBit):
                raise TypeError(f"SigSpec elements must be SigBit, got {bit!r}")
        object.__setattr__(self, "_bits", bits)
        object.__setattr__(self, "_hash", hash(bits))

    def __setattr__(self, name, value):
        raise AttributeError("SigSpec is immutable")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_wire(wire: Wire) -> "SigSpec":
        return SigSpec(SigBit(wire, i) for i in range(wire.width))

    @staticmethod
    def from_const(value: int, width: int) -> "SigSpec":
        """An unsigned constant of the given width (LSB first)."""
        if width < 0:
            raise ValueError("width must be >= 0")
        if value < 0:
            value &= (1 << width) - 1
        return SigSpec(const_bit((value >> i) & 1) for i in range(width))

    @staticmethod
    def from_state(state: State, width: int) -> "SigSpec":
        return SigSpec([const_bit(state)] * width)

    @staticmethod
    def from_pattern(pattern: str) -> "SigSpec":
        """Build a constant from a Verilog-style bit pattern, MSB first.

        ``"01x"`` becomes the 3-bit spec with bit2=0, bit1=1, bit0=x.
        ``z`` and ``?`` are treated as ``x`` (don't-care).
        """
        bits: List[SigBit] = []
        for ch in reversed(pattern):
            if ch == "_":
                continue
            if ch == "0":
                bits.append(BIT0)
            elif ch == "1":
                bits.append(BIT1)
            elif ch in "xXzZ?":
                bits.append(BITX)
            else:
                raise ValueError(f"bad pattern character {ch!r} in {pattern!r}")
        return SigSpec(bits)

    @staticmethod
    def coerce(value: SigLike, width: Optional[int] = None) -> "SigSpec":
        """Coerce wires, bits, ints, patterns or bit sequences to a SigSpec.

        Integers require an explicit ``width`` unless one can be inferred.
        """
        if isinstance(value, SigSpec):
            spec = value
        elif isinstance(value, Wire):
            spec = SigSpec.from_wire(value)
        elif isinstance(value, SigBit):
            spec = SigSpec([value])
        elif isinstance(value, bool):
            spec = SigSpec([const_bit(value)])
        elif isinstance(value, int):
            if width is None:
                width = max(1, value.bit_length())
            spec = SigSpec.from_const(value, width)
        elif isinstance(value, str):
            spec = SigSpec.from_pattern(value)
        elif isinstance(value, Sequence):
            spec = SigSpec(
                bit if isinstance(bit, SigBit) else const_bit(bit) for bit in value
            )
        else:
            raise TypeError(f"cannot coerce {value!r} to SigSpec")
        if width is not None and len(spec) != width:
            spec = spec.extend(width)
        return spec

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[SigBit]:
        return iter(self._bits)

    def __getitem__(self, index) -> Union[SigBit, "SigSpec"]:
        if isinstance(index, slice):
            return SigSpec(self._bits[index])
        return self._bits[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, SigSpec):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (SigSpec, (self._bits,))

    @property
    def bits(self) -> Tuple[SigBit, ...]:
        return self._bits

    # -- operations --------------------------------------------------------

    def concat(self, *others: "SigSpec") -> "SigSpec":
        """Concatenate, LSB-first: ``a.concat(b)`` has ``a`` in the low bits."""
        bits = list(self._bits)
        for other in others:
            bits.extend(other._bits)
        return SigSpec(bits)

    def repeat(self, count: int) -> "SigSpec":
        return SigSpec(self._bits * count)

    def extend(self, width: int, signed: bool = False) -> "SigSpec":
        """Zero-extend (or sign-extend) / truncate to ``width`` bits."""
        if width < 0:
            raise ValueError("width must be >= 0")
        if width <= len(self._bits):
            return SigSpec(self._bits[:width])
        if signed and self._bits:
            pad = self._bits[-1]
        else:
            pad = BIT0
        return SigSpec(self._bits + (pad,) * (width - len(self._bits)))

    @property
    def is_const(self) -> bool:
        """True when every bit is a constant (possibly ``x``)."""
        return all(bit.is_const for bit in self._bits)

    @property
    def is_fully_defined(self) -> bool:
        """True when every bit is constant ``0`` or ``1``."""
        return all(bit.is_const and bit.state.is_defined for bit in self._bits)

    def const_value(self) -> Optional[int]:
        """The unsigned integer value, or None if any bit is non-constant/x."""
        value = 0
        for i, bit in enumerate(self._bits):
            if not bit.is_const or not bit.state.is_defined:
                return None
            if bit.state is State.S1:
                value |= 1 << i
        return value

    def wires(self) -> List[Wire]:
        """The distinct wires referenced, in first-appearance order."""
        seen: dict = {}
        for bit in self._bits:
            if bit.wire is not None and id(bit.wire) not in seen:
                seen[id(bit.wire)] = bit.wire
        return list(seen.values())

    def __repr__(self) -> str:
        if not self._bits:
            return "SigSpec([])"
        if self.is_const:
            return "SigSpec('" + "".join(str(b.state) for b in reversed(self._bits)) + "')"
        parts = []
        i = 0
        while i < len(self._bits):
            bit = self._bits[i]
            if bit.is_const:
                parts.append(str(bit.state))
                i += 1
                continue
            # collapse runs of consecutive bits of the same wire
            j = i
            while (
                j + 1 < len(self._bits)
                and self._bits[j + 1].wire is bit.wire
                and self._bits[j + 1].offset == self._bits[j].offset + 1
            ):
                j += 1
            if i == 0 and j == len(self._bits) - 1 and bit.offset == 0 and \
                    j - i + 1 == bit.wire.width:
                parts.append(bit.wire.name)
            elif j > i:
                parts.append(f"{bit.wire.name}[{self._bits[j].offset}:{bit.offset}]")
            else:
                parts.append(f"{bit.wire.name}[{bit.offset}]")
            i = j + 1
        return "SigSpec(" + "{" + ",".join(reversed(parts)) + "}" + ")"


def concat(*specs: SigLike) -> SigSpec:
    """Concatenate signals LSB-first (first argument occupies the low bits)."""
    result = SigSpec()
    for spec in specs:
        result = result.concat(SigSpec.coerce(spec))
    return result
