"""Hierarchy elaboration: instance-tree walking, uniquification, flattening.

The Yosys ``hierarchy`` pass equivalent for :class:`~repro.ir.design.Design`:
starting from the top module it walks the instance tree, checks that every
:class:`~repro.ir.module.Instance` resolves (child module exists, bound port
names exist with matching widths, every child *input* is bound — outputs may
dangle), rejects instantiation cycles, and returns a :class:`HierarchyInfo`
with the bottom-up topological module order the flow layer optimizes in.

``uniquify=True`` performs parameter-free uniquification: every instance
site of a multiply-instantiated module gets its own deep copy named
``child$<dotted.instance.path>``, so per-instance rewrites become possible
while the copies stay ``module_signature``-isomorphic — exactly the classes
the flow layer's isomorphic-instance replay deduplicates.

:func:`flatten` inlines the whole tree into one flat module (nested names
prefixed with ``<instance>.``), the reference semantics the hierarchy-aware
flow is benchmarked against: optimizing the flattened module must yield the
same total area as optimizing per module and weighting by instance count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .design import Design
from .module import Cell, Instance, Module
from .signals import SigBit, SigSpec

__all__ = ["HierarchyError", "HierarchyInfo", "hierarchy", "flatten"]


class HierarchyError(Exception):
    """The design's instance tree does not elaborate."""


@dataclass(frozen=True)
class HierarchyInfo:
    """Result of :func:`hierarchy` elaboration.

    ``order`` lists the modules reachable from ``top`` bottom-up (every
    child precedes every parent); ``tree`` maps each reachable module to its
    ``(instance name, child module)`` pairs in declaration order;
    ``instance_counts`` counts *dynamic* occurrences in the elaborated tree
    (the top counts once, a child instantiated twice by a module that itself
    occurs three times counts six) — the weights hierarchical area
    accounting uses; ``unreachable`` lists members of the design no
    instance path from the top reaches, in insertion order.
    """

    top: str
    order: Tuple[str, ...]
    tree: Dict[str, Tuple[Tuple[str, str], ...]]
    instance_counts: Dict[str, int]
    unreachable: Tuple[str, ...]


def _resolve_top(design: Design, top: Optional[str]) -> str:
    top_name = top if top is not None else design.top_name
    if top_name is None:
        raise HierarchyError("design has no modules")
    if top_name not in design.modules:
        raise HierarchyError(f"no module named {top_name!r}")
    return top_name


def _validate_instance(design: Design, parent: Module, inst: Instance) -> None:
    child = design.modules.get(inst.module_name)
    if child is None:
        raise HierarchyError(
            f"module {parent.name!r}, instance {inst.name!r}: no module "
            f"named {inst.module_name!r}"
        )
    ports = {w.name: w for w in child.wires.values() if w.is_port}
    for pname, spec in inst.connections.items():
        wire = ports.get(pname)
        if wire is None:
            raise HierarchyError(
                f"module {parent.name!r}, instance {inst.name!r}: "
                f"{inst.module_name!r} has no port {pname!r}"
            )
        if len(spec) != wire.width:
            raise HierarchyError(
                f"module {parent.name!r}, instance {inst.name!r}: port "
                f"{pname!r} expects width {wire.width}, got {len(spec)}"
            )
    for wire in child.inputs:
        if wire.name not in inst.connections:
            raise HierarchyError(
                f"module {parent.name!r}, instance {inst.name!r}: input "
                f"port {wire.name!r} of {inst.module_name!r} is unbound"
            )


def _walk(design: Design, top_name: str) -> Tuple[
    List[str], Dict[str, Tuple[Tuple[str, str], ...]]
]:
    """Validated bottom-up post-order over the reachable instance DAG."""
    order: List[str] = []
    tree: Dict[str, Tuple[Tuple[str, str], ...]] = {}
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done
    stack: List[Tuple[str, List[str], int]] = []

    def enter(name: str) -> None:
        module = design.modules[name]
        children: List[str] = []
        for inst in module.instances.values():
            _validate_instance(design, module, inst)
            children.append(inst.module_name)
        tree[name] = tuple(
            (inst.name, inst.module_name)
            for inst in module.instances.values()
        )
        state[name] = 0
        stack.append((name, children, 0))

    enter(top_name)
    while stack:
        name, children, idx = stack[-1]
        if idx < len(children):
            stack[-1] = (name, children, idx + 1)
            child = children[idx]
            child_state = state.get(child)
            if child_state == 0:
                cycle = [frame[0] for frame in stack] + [child]
                raise HierarchyError(
                    "instantiation cycle: " + " -> ".join(cycle)
                )
            if child_state is None:
                enter(child)
        else:
            stack.pop()
            state[name] = 1
            order.append(name)
    return order, tree


def _instance_counts(
    order: List[str], tree: Dict[str, Tuple[Tuple[str, str], ...]], top: str
) -> Dict[str, int]:
    counts = {name: 0 for name in order}
    counts[top] = 1
    for name in reversed(order):  # top-down: parents before children
        for _iname, child in tree[name]:
            counts[child] += counts[name]
    return counts


def _uniquify(design: Design, top_name: str) -> None:
    """Copy multiply-instantiated modules so every instance site owns its
    module, naming copies ``child$<dotted.instance.path>``."""
    order, tree = _walk(design, top_name)
    counts = _instance_counts(order, tree, top_name)

    def walk(name: str, path: str) -> None:
        module = design.modules[name]
        for inst in list(module.instances.values()):
            child = inst.module_name
            child_path = f"{path}.{inst.name}" if path else inst.name
            if counts.get(child, 0) > 1:
                copy = design.modules[child].clone()
                copy.name = f"{child}${child_path}"
                design.add_module(copy)
                module.retarget_instance(inst.name, copy.name)
                walk(copy.name, child_path)
            else:
                walk(child, child_path)

    walk(top_name, "")


def hierarchy(
    design: Design, top: Optional[str] = None, uniquify: bool = False
) -> HierarchyInfo:
    """Elaborate the instance tree under ``top`` (defaults to the design's
    top).  Raises :class:`HierarchyError` on unresolved child modules,
    unknown or width-mismatched port bindings, unbound child inputs, and
    instantiation cycles."""
    top_name = _resolve_top(design, top)
    if uniquify:
        _uniquify(design, top_name)
    order, tree = _walk(design, top_name)
    counts = _instance_counts(order, tree, top_name)
    reachable = set(order)
    unreachable = tuple(
        name for name in design.modules if name not in reachable
    )
    return HierarchyInfo(
        top=top_name,
        order=tuple(order),
        tree=tree,
        instance_counts=counts,
        unreachable=unreachable,
    )


def _inline(flat: Module, inst_name: str, design: Design) -> None:
    """Inline one instance of ``flat`` in place (nested instances become
    prefixed instances of ``flat``, processed by the caller's loop)."""
    inst = flat.instances[inst_name]
    child = design.modules[inst.module_name]
    prefix = inst.name + "."

    def fresh(base: str, table) -> str:
        return base if base not in table else flat._fresh_name(base, table)

    wire_map: Dict[int, object] = {}
    for wire in child.wires.values():
        # port flags are cleared: inside the parent these are plain nets
        copy = flat.add_wire(fresh(prefix + wire.name, flat.wires), wire.width)
        copy.attributes = dict(wire.attributes)
        wire_map[id(wire)] = copy

    def translate(spec: SigSpec) -> SigSpec:
        return SigSpec(
            bit if bit.is_const else SigBit(wire_map[id(bit.wire)], bit.offset)
            for bit in spec
        )

    for cell in child.cells.values():
        copy_cell = Cell(
            fresh(prefix + cell.name, flat.cells), cell.type, cell.width,
            cell.n,
        )
        copy_cell.attributes = dict(cell.attributes)
        for pname, spec in cell.connections.items():
            copy_cell.connections[pname] = translate(spec)
        flat.cells[copy_cell.name] = copy_cell
        copy_cell._module = flat
    for lhs, rhs in child.connections:
        flat.connections.append((translate(lhs), translate(rhs)))
    for sub in child.instances.values():
        sub_name = fresh(prefix + sub.name, flat.instances)
        flat.instances[sub_name] = Instance(sub_name, sub.module_name, {
            pname: translate(spec) for pname, spec in sub.connections.items()
        })

    del flat.instances[inst.name]
    # stitch the boundary: child input copies are driven by the parent-side
    # bindings, parent-side bindings of outputs are driven by the copies
    for pname, spec in inst.connections.items():
        wire = child.wires[pname]
        copy = wire_map[id(wire)]
        boundary = SigSpec(SigBit(copy, i) for i in range(wire.width))
        if wire.port_input:
            flat.connect(boundary, spec)
        else:
            flat.connect(spec, boundary)


def flatten(design: Design, top: Optional[str] = None) -> Module:
    """Inline the whole instance tree under ``top`` into one fresh flat
    module (same name and ports as the top; nested wires/cells are prefixed
    with their dotted instance path).  The input design is not modified."""
    info = hierarchy(design, top)
    flat = design.modules[info.top].clone()
    while flat.instances:
        _inline(flat, next(iter(flat.instances)), design)
    return flat
