"""The unified cell-semantics registry.

Every :class:`~repro.ir.cells.CellType` is described by exactly one
:class:`CellSpec` carrying *all* of its semantics:

* **shape** — port names/directions/width rules (shared with the raw
  declarative table in :mod:`repro.ir.cells`) plus the width/``n``
  inference used by :meth:`~repro.ir.module.Module.add_cell`;
* **ternary evaluation** — the 0/1/x evaluator used by constant
  propagation, the Table-I inference engine and x-aware simulation;
* **mask evaluation** — the bit-parallel word-level evaluator behind
  exhaustive/random simulation;
* **AIG lowering** — the 2-input AND/inverter decomposition used by area
  accounting, the Tseitin encoder's reference and equivalence checking;
* **interchange identity** — the Yosys RTLIL cell type (``$and``, …) used
  by the Yosys-JSON reader/writer pair.

The registry API (:func:`spec_for`, :func:`all_specs`,
:func:`spec_for_yosys`) is the *only* place cell semantics live:
:mod:`repro.sim.eval`, :mod:`repro.aig.aigmap`, :mod:`repro.ir.validate`
and the frontend width inference are all thin delegations, so the three
soundness substrates (ternary inference, exhaustive/mask simulation, SAT
via the AIG/Tseitin path) can never silently diverge on a cell's meaning.
Adding a cell type means writing one ``CellSpec`` — and the
cross-substrate property suite (``tests/ir/test_celllib.py``) then checks
all three evaluators agree on it automatically.

AIG lowering is expressed against the small :class:`LoweringEmitter`
protocol (literal access + AND-graph construction) implemented by
:class:`~repro.aig.aigmap.AigMapper`, which keeps this module free of any
dependency on the AIG package.

PMUX semantics (shared by all three substrates): the select is treated as
a *priority* select — the lowest set bit of ``S`` wins, ``Y = A`` when
``S == 0``.  For the one-hot selects produced by case elaboration this
coincides with the Yosys one-hot semantics while staying fully defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .cells import CellType, PortDir, port_spec
from .signals import State
from ..sim.ternary import (
    S0,
    S1,
    t_add,
    t_and,
    t_eq,
    t_lt,
    t_mux,
    t_not,
    t_or,
    t_reduce_and,
    t_reduce_or,
    t_reduce_xor,
    t_xnor,
    t_xor,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import Cell

TernaryVec = List[State]
MaskVec = List[int]

TernaryEval = Callable[["Cell", Mapping[str, TernaryVec]], Dict[str, TernaryVec]]
MaskEval = Callable[["Cell", Mapping[str, MaskVec], int], Dict[str, MaskVec]]
Lowering = Callable[["LoweringEmitter", "Cell"], None]


class LoweringEmitter:
    """The protocol AIG lowerings are written against.

    :class:`~repro.aig.aigmap.AigMapper` is the production implementation;
    anything exposing the same surface (an ``aig`` attribute with the
    AND-graph construction helpers plus per-cell literal access) can reuse
    the registry's lowerings verbatim.
    """

    aig = None  # an AIG-like object: and_/or_/xor/xnor/mux/…_reduce

    def port_lits(self, cell: "Cell", port: str) -> List[int]:
        raise NotImplementedError

    def lit(self, bit) -> int:
        raise NotImplementedError

    def set_output(self, cell: "Cell", port: str, lits: List[int]) -> None:
        raise NotImplementedError

    @property
    def false_lit(self) -> int:
        return 0

    @property
    def true_lit(self) -> int:
        return 1


@dataclass(frozen=True)
class CellSpec:
    """Declarative semantics of one cell type (see module docstring).

    ``ports`` is the ``(name, direction, width-expr)`` tuple shared with
    :func:`repro.ir.cells.port_spec`; width expressions are ``"W"``,
    ``"N"``, ``"W*N"`` or a literal int.  ``width_port``/``n_port`` drive
    :meth:`infer_shape` (the ``Module.add_cell`` width inference);
    ``state_ports``/``next_state_ports`` mark sequential boundary ports
    (flip-flop ``Q`` outputs are value *sources*, ``D`` inputs are
    observable *sinks*) so the AIG mapper and simulator need no per-type
    knowledge.
    """

    ctype: CellType
    ports: Tuple[Tuple[str, PortDir, object], ...]
    yosys_type: str
    eval_ternary: Optional[TernaryEval] = None
    eval_masks: Optional[MaskEval] = None
    lower: Optional[Lowering] = None
    combinational: bool = True
    #: input port whose connection width fixes ``W`` when inferring shape
    width_port: str = "A"
    #: input port whose connection width fixes ``n`` (None: n stays 1)
    n_port: Optional[str] = None
    #: output ports that act as value sources (sequential state)
    state_ports: Tuple[str, ...] = ()
    #: input ports observed as boundary outputs (next-state functions)
    next_state_ports: Tuple[str, ...] = ()
    #: extra per-cell structural validation beyond the width table
    extra_check: Optional[Callable[["Cell"], List[str]]] = None

    # -- shape ---------------------------------------------------------------

    @property
    def input_ports(self) -> Tuple[str, ...]:
        return tuple(n for n, d, _w in self.ports if d is PortDir.IN)

    @property
    def output_ports(self) -> Tuple[str, ...]:
        return tuple(n for n, d, _w in self.ports if d is PortDir.OUT)

    @property
    def out_port(self) -> str:
        """The primary output port (``Y``, or ``Q`` for flip-flops)."""
        return self.output_ports[0]

    def expected_width(self, port: str, width: int, n: int = 1) -> int:
        """Resolve a port's width expression against the cell parameters."""
        for name, _direction, expr in self.ports:
            if name != port:
                continue
            if expr == "W":
                return width
            if expr == "N":
                return n
            if expr == "W*N":
                return width * n
            return int(expr)
        raise KeyError(f"cell type {self.ctype} has no port {port!r}")

    def infer_shape(self, ports: Mapping[str, int]) -> Tuple[int, int]:
        """Infer ``(width, n)`` from the connection widths in ``ports``.

        ``ports`` maps port names to the widths of the signals the caller
        is connecting; only ``width_port``/``n_port`` are consulted.
        Raises :class:`ValueError` when the width probe is missing.
        """
        if self.width_port not in ports:
            raise ValueError(
                f"cell type {self.ctype}: cannot infer width without "
                f"{self.width_port} port"
            )
        width = ports[self.width_port]
        n = ports[self.n_port] if self.n_port and self.n_port in ports else 1
        return width, n

    # -- validation ----------------------------------------------------------

    def check(self, cell: "Cell") -> List[str]:
        """Port-level well-formedness problems of one cell (empty = ok)."""
        problems: List[str] = []
        for pname, _direction, _expr in self.ports:
            if pname not in cell.connections:
                problems.append(
                    f"cell {cell.name!r} ({cell.type}): port {pname} unconnected"
                )
                continue
            want = self.expected_width(pname, cell.width, cell.n)
            got = len(cell.connections[pname])
            if got != want:
                problems.append(
                    f"cell {cell.name!r} ({cell.type}): port {pname} width "
                    f"{got}, expected {want}"
                )
        extra = set(cell.connections) - {p for p, _d, _e in self.ports}
        if extra:
            problems.append(
                f"cell {cell.name!r} ({cell.type}): unknown ports {sorted(extra)}"
            )
        if self.extra_check is not None:
            problems.extend(self.extra_check(cell))
        return problems


# -- registry -------------------------------------------------------------------

_REGISTRY: Dict[CellType, CellSpec] = {}
_BY_YOSYS: Dict[str, CellSpec] = {}


def register_spec(spec: CellSpec) -> CellSpec:
    """Install a spec in the registry (one per cell type)."""
    if spec.ctype in _REGISTRY:
        raise ValueError(f"duplicate CellSpec for {spec.ctype}")
    _REGISTRY[spec.ctype] = spec
    _BY_YOSYS[spec.yosys_type] = spec
    return spec


def spec_for(ctype: CellType) -> CellSpec:
    """The registered :class:`CellSpec` of a cell type."""
    return _REGISTRY[ctype]


def spec_for_yosys(yosys_type: str) -> Optional[CellSpec]:
    """The spec registered under a Yosys RTLIL type name (None = unknown)."""
    return _BY_YOSYS.get(yosys_type)


def all_specs() -> Tuple[CellSpec, ...]:
    """Every registered spec, in :class:`CellType` declaration order."""
    return tuple(_REGISTRY[t] for t in CellType if t in _REGISTRY)


# -- shared word-level helpers ---------------------------------------------------


def _mask_eq(a: MaskVec, b: MaskVec, mask: int) -> int:
    acc = mask
    for abit, bbit in zip(a, b):
        acc &= ~(abit ^ bbit) & mask
    return acc


def _mask_lt(a: MaskVec, b: MaskVec, mask: int) -> int:
    """Unsigned a < b, scanning LSB -> MSB so the MSB decision dominates."""
    lt = 0
    for abit, bbit in zip(a, b):
        eq = ~(abit ^ bbit) & mask
        lt = (~abit & bbit) | (eq & lt)
    return lt & mask


def _mask_add(a: MaskVec, b: MaskVec, carry: int, mask: int) -> MaskVec:
    result: MaskVec = []
    for abit, bbit in zip(a, b):
        s = abit ^ bbit ^ carry
        carry = (abit & bbit) | (carry & (abit ^ bbit))
        result.append(s & mask)
    return result


def _mask_or_reduce(bits: MaskVec) -> int:
    acc = 0
    for a in bits:
        acc |= a
    return acc


def _ternary_shift(a: TernaryVec, b: TernaryVec, left: bool) -> TernaryVec:
    """Barrel shifter in the ternary domain (mux ladder over shift bits)."""
    width = len(a)
    result = list(a)
    for j, sbit in enumerate(b):
        amount = 1 << j
        if amount >= width:
            shifted = [S0] * width
        elif left:
            shifted = [S0] * amount + result[: width - amount]
        else:
            shifted = result[amount:] + [S0] * amount
        result = [t_mux(r, s, sbit) for r, s in zip(result, shifted)]
    return result


def _mask_shift(a: MaskVec, b: MaskVec, mask: int, left: bool) -> MaskVec:
    width = len(a)
    result = list(a)
    for j, sbit in enumerate(b):
        amount = 1 << j
        if amount >= width:
            shifted = [0] * width
        elif left:
            shifted = [0] * amount + result[: width - amount]
        else:
            shifted = result[amount:] + [0] * amount
        result = [(r & ~sbit | s & sbit) & mask for r, s in zip(result, shifted)]
    return result


def _aig_eq(emitter: LoweringEmitter, cell: "Cell") -> int:
    aig = emitter.aig
    a = emitter.port_lits(cell, "A")
    b = emitter.port_lits(cell, "B")
    return aig.and_reduce([aig.xnor(x, y) for x, y in zip(a, b)])


def _aig_ult(emitter: LoweringEmitter, a: List[int], b: List[int]) -> int:
    aig = emitter.aig
    lt = emitter.false_lit
    for x, y in zip(a, b):
        eq = aig.xnor(x, y)
        lt = aig.or_(aig.and_(x ^ 1, y), aig.and_(eq, lt))
    return lt


def _aig_ripple_add(
    emitter: LoweringEmitter, a: List[int], b: List[int], carry: int
) -> List[int]:
    aig = emitter.aig
    result = []
    for x, y in zip(a, b):
        axb = aig.xor(x, y)
        result.append(aig.xor(axb, carry))
        carry = aig.or_(aig.and_(x, y), aig.and_(carry, axb))
    return result


# -- per-family semantics builders ----------------------------------------------


def _register(
    ctype: CellType,
    yosys_type: str,
    tern: Optional[TernaryEval],
    mask: Optional[MaskEval],
    lower: Optional[Lowering],
    **kwargs,
) -> CellSpec:
    return register_spec(
        CellSpec(
            ctype=ctype,
            ports=port_spec(ctype),
            yosys_type=yosys_type,
            eval_ternary=tern,
            eval_masks=mask,
            lower=lower,
            **kwargs,
        )
    )


def _bitwise_binary(ctype, yosys_type, t_op, m_op, aig_op):
    """AND/OR/XOR/… family: per-bit two-input ops in all three domains."""

    def tern(cell, inputs):
        return {"Y": [t_op(a, b) for a, b in zip(inputs["A"], inputs["B"])]}

    def mask(cell, inputs, mask_):
        return {"Y": [m_op(a, b, mask_) for a, b in zip(inputs["A"], inputs["B"])]}

    def lower(emitter, cell):
        a = emitter.port_lits(cell, "A")
        b = emitter.port_lits(cell, "B")
        op = aig_op(emitter.aig)
        emitter.set_output(cell, "Y", [op(x, y) for x, y in zip(a, b)])

    _register(ctype, yosys_type, tern, mask, lower)


def _compare(ctype, yosys_type, t_op, m_op, aig_lower):
    """EQ/NE/LT/LE family: whole-vector compare to a single bit."""

    def tern(cell, inputs):
        return {"Y": [t_op(inputs["A"], inputs["B"])]}

    def mask(cell, inputs, mask_):
        return {"Y": [m_op(inputs["A"], inputs["B"], mask_)]}

    def lower(emitter, cell):
        emitter.set_output(cell, "Y", [aig_lower(emitter, cell)])

    _register(ctype, yosys_type, tern, mask, lower)


def _shift(ctype, yosys_type, left):
    def tern(cell, inputs):
        return {"Y": _ternary_shift(inputs["A"], inputs["B"], left=left)}

    def mask(cell, inputs, mask_):
        return {"Y": _mask_shift(inputs["A"], inputs["B"], mask_, left=left)}

    def lower(emitter, cell):
        aig = emitter.aig
        width = cell.width
        current = emitter.port_lits(cell, "A")
        for j, s in enumerate(emitter.port_lits(cell, "B")):
            amount = 1 << j
            if amount >= width:
                shifted = [emitter.false_lit] * width
            elif left:
                shifted = [emitter.false_lit] * amount + current[: width - amount]
            else:
                shifted = current[amount:] + [emitter.false_lit] * amount
            current = [aig.mux(cur, sh, s) for cur, sh in zip(current, shifted)]
        emitter.set_output(cell, "Y", current)

    _register(ctype, yosys_type, tern, mask, lower, n_port="B")


def _reduce(ctype, yosys_type, t_op, m_op, aig_reduce, invert=False):
    """REDUCE_*/LOGIC_NOT family: fold the A vector to one bit."""

    def tern(cell, inputs):
        out = t_op(inputs["A"])
        return {"Y": [t_not(out) if invert else out]}

    def mask(cell, inputs, mask_):
        acc = m_op(inputs["A"], mask_)
        return {"Y": [~acc & mask_ if invert else acc & mask_]}

    def lower(emitter, cell):
        lit = aig_reduce(emitter.aig)(emitter.port_lits(cell, "A"))
        emitter.set_output(cell, "Y", [lit ^ 1 if invert else lit])

    _register(ctype, yosys_type, tern, mask, lower)


def _logic_binary(ctype, yosys_type, t_op, or_combine):
    """LOGIC_AND/LOGIC_OR: boolean-coerced operands, one-bit result."""

    def tern(cell, inputs):
        return {
            "Y": [t_op(t_reduce_or(inputs["A"]), t_reduce_or(inputs["B"]))]
        }

    def mask(cell, inputs, mask_):
        a_any = _mask_or_reduce(inputs["A"])
        b_any = _mask_or_reduce(inputs["B"])
        return {"Y": [(a_any | b_any if or_combine else a_any & b_any) & mask_]}

    def lower(emitter, cell):
        aig = emitter.aig
        a_any = aig.or_reduce(emitter.port_lits(cell, "A"))
        b_any = aig.or_reduce(emitter.port_lits(cell, "B"))
        y = aig.or_(a_any, b_any) if or_combine else aig.and_(a_any, b_any)
        emitter.set_output(cell, "Y", [y])

    _register(ctype, yosys_type, tern, mask, lower)


# -- the registered cell library -------------------------------------------------

# NOT
def _not_tern(cell, inputs):
    return {"Y": [t_not(b) for b in inputs["A"]]}


def _not_mask(cell, inputs, mask_):
    return {"Y": [~a & mask_ for a in inputs["A"]]}


def _not_lower(emitter, cell):
    emitter.set_output(
        cell, "Y", [lit ^ 1 for lit in emitter.port_lits(cell, "A")]
    )


_register(CellType.NOT, "$not", _not_tern, _not_mask, _not_lower)

_bitwise_binary(
    CellType.AND, "$and", t_and,
    lambda a, b, m: a & b, lambda aig: aig.and_,
)
_bitwise_binary(
    CellType.OR, "$or", t_or,
    lambda a, b, m: a | b, lambda aig: aig.or_,
)
_bitwise_binary(
    CellType.XOR, "$xor", t_xor,
    lambda a, b, m: a ^ b, lambda aig: aig.xor,
)
_bitwise_binary(
    CellType.XNOR, "$xnor", t_xnor,
    lambda a, b, m: ~(a ^ b) & m, lambda aig: aig.xnor,
)
# $nand/$nor are small extensions over the RTLIL word-level set (Yosys
# only has the gate-level $_NAND_/$_NOR_); the JSON reader accepts them
# so writer round-trips stay structure-identical.
_bitwise_binary(
    CellType.NAND, "$nand", lambda a, b: t_not(t_and(a, b)),
    lambda a, b, m: ~(a & b) & m,
    lambda aig: (lambda x, y: aig.and_(x, y) ^ 1),
)
_bitwise_binary(
    CellType.NOR, "$nor", lambda a, b: t_not(t_or(a, b)),
    lambda a, b, m: ~(a | b) & m,
    lambda aig: (lambda x, y: aig.or_(x, y) ^ 1),
)


# MUX
def _mux_tern(cell, inputs):
    s = inputs["S"][0]
    return {"Y": [t_mux(a, b, s) for a, b in zip(inputs["A"], inputs["B"])]}


def _mux_mask(cell, inputs, mask_):
    s = inputs["S"][0]
    return {
        "Y": [(a & ~s | b & s) & mask_ for a, b in zip(inputs["A"], inputs["B"])]
    }


def _mux_lower(emitter, cell):
    aig = emitter.aig
    a = emitter.port_lits(cell, "A")
    b = emitter.port_lits(cell, "B")
    s = emitter.port_lits(cell, "S")[0]
    emitter.set_output(cell, "Y", [aig.mux(x, y, s) for x, y in zip(a, b)])


_register(CellType.MUX, "$mux", _mux_tern, _mux_mask, _mux_lower)


# PMUX: priority select, lowest set bit of S wins, Y = A when S == 0.
def _pmux_tern(cell, inputs):
    width = cell.width
    result = list(inputs["A"])
    b = inputs["B"]
    # lowest-index select bit has priority: apply from high index down
    for i in range(cell.n - 1, -1, -1):
        s = inputs["S"][i]
        branch = b[i * width:(i + 1) * width]
        result = [t_mux(y, d, s) for y, d in zip(result, branch)]
    return {"Y": result}


def _pmux_mask(cell, inputs, mask_):
    width = cell.width
    result = list(inputs["A"])
    b = inputs["B"]
    for i in range(cell.n - 1, -1, -1):
        s = inputs["S"][i]
        branch = b[i * width:(i + 1) * width]
        result = [(y & ~s | d & s) & mask_ for y, d in zip(result, branch)]
    return {"Y": result}


def _pmux_lower(emitter, cell):
    aig = emitter.aig
    width = cell.width
    current = emitter.port_lits(cell, "A")
    b = emitter.port_lits(cell, "B")
    s = emitter.port_lits(cell, "S")
    for i in range(cell.n - 1, -1, -1):
        branch = b[i * width:(i + 1) * width]
        current = [aig.mux(cur, br, s[i]) for cur, br in zip(current, branch)]
    emitter.set_output(cell, "Y", current)


_register(
    CellType.PMUX, "$pmux", _pmux_tern, _pmux_mask, _pmux_lower, n_port="S"
)

_compare(
    CellType.EQ, "$eq", t_eq, _mask_eq,
    lambda emitter, cell: _aig_eq(emitter, cell),
)
_compare(
    CellType.NE, "$ne",
    lambda a, b: t_not(t_eq(a, b)),
    lambda a, b, m: ~_mask_eq(a, b, m) & m,
    lambda emitter, cell: _aig_eq(emitter, cell) ^ 1,
)
_compare(
    CellType.LT, "$lt", t_lt, _mask_lt,
    lambda emitter, cell: _aig_ult(
        emitter, emitter.port_lits(cell, "A"), emitter.port_lits(cell, "B")
    ),
)
_compare(
    CellType.LE, "$le",
    lambda a, b: t_not(t_lt(b, a)),
    lambda a, b, m: ~_mask_lt(b, a, m) & m,
    lambda emitter, cell: _aig_ult(
        emitter, emitter.port_lits(cell, "B"), emitter.port_lits(cell, "A")
    ) ^ 1,
)


# ADD / SUB (A - B = A + ~B + 1)
def _add_tern(cell, inputs):
    return {"Y": t_add(inputs["A"], inputs["B"])}


def _add_mask(cell, inputs, mask_):
    return {"Y": _mask_add(inputs["A"], inputs["B"], 0, mask_)}


def _add_lower(emitter, cell):
    emitter.set_output(
        cell,
        "Y",
        _aig_ripple_add(
            emitter,
            emitter.port_lits(cell, "A"),
            emitter.port_lits(cell, "B"),
            emitter.false_lit,
        ),
    )


def _sub_tern(cell, inputs):
    return {
        "Y": t_add(inputs["A"], [t_not(b) for b in inputs["B"]], carry_in=S1)
    }


def _sub_mask(cell, inputs, mask_):
    return {
        "Y": _mask_add(
            inputs["A"], [~b & mask_ for b in inputs["B"]], mask_, mask_
        )
    }


def _sub_lower(emitter, cell):
    emitter.set_output(
        cell,
        "Y",
        _aig_ripple_add(
            emitter,
            emitter.port_lits(cell, "A"),
            [lit ^ 1 for lit in emitter.port_lits(cell, "B")],
            emitter.true_lit,
        ),
    )


_register(CellType.ADD, "$add", _add_tern, _add_mask, _add_lower)
_register(CellType.SUB, "$sub", _sub_tern, _sub_mask, _sub_lower)

_shift(CellType.SHL, "$shl", left=True)
_shift(CellType.SHR, "$shr", left=False)

_reduce(
    CellType.REDUCE_AND, "$reduce_and", t_reduce_and,
    lambda bits, m: _and_reduce_mask(bits, m), lambda aig: aig.and_reduce,
)
_reduce(
    CellType.REDUCE_OR, "$reduce_or", t_reduce_or,
    lambda bits, m: _mask_or_reduce(bits), lambda aig: aig.or_reduce,
)
_reduce(
    CellType.REDUCE_XOR, "$reduce_xor", t_reduce_xor,
    lambda bits, m: _xor_reduce_mask(bits), lambda aig: aig.xor_reduce,
)
_reduce(
    CellType.REDUCE_BOOL, "$reduce_bool", t_reduce_or,
    lambda bits, m: _mask_or_reduce(bits), lambda aig: aig.or_reduce,
)
_reduce(
    CellType.LOGIC_NOT, "$logic_not", t_reduce_or,
    lambda bits, m: _mask_or_reduce(bits), lambda aig: aig.or_reduce,
    invert=True,
)


def _and_reduce_mask(bits: MaskVec, mask_: int) -> int:
    acc = mask_
    for a in bits:
        acc &= a
    return acc


def _xor_reduce_mask(bits: MaskVec) -> int:
    acc = 0
    for a in bits:
        acc ^= a
    return acc


_logic_binary(CellType.LOGIC_AND, "$logic_and", t_and, or_combine=False)
_logic_binary(CellType.LOGIC_OR, "$logic_or", t_or, or_combine=True)

# DFF: no combinational semantics — Q is a value source, D an observable
# sink; flip-flops contribute no AND nodes (the paper's area accounting).
register_spec(
    CellSpec(
        ctype=CellType.DFF,
        ports=port_spec(CellType.DFF),
        yosys_type="$dff",
        combinational=False,
        width_port="D",
        state_ports=("Q",),
        next_state_ports=("D",),
    )
)


def check_registry() -> None:
    """Every cell type must be registered with complete semantics."""
    missing = [t for t in CellType if t not in _REGISTRY]
    if missing:
        raise RuntimeError(f"cell types without a CellSpec: {missing}")
    for spec in all_specs():
        if spec.combinational and (
            spec.eval_ternary is None
            or spec.eval_masks is None
            or spec.lower is None
        ):
            raise RuntimeError(
                f"combinational spec {spec.ctype} is missing an evaluator"
            )


check_registry()


__all__ = [
    "CellSpec",
    "LoweringEmitter",
    "all_specs",
    "check_registry",
    "register_spec",
    "spec_for",
    "spec_for_yosys",
]
