"""Netlist graph indices and traversal utilities.

:class:`NetIndex` snapshots a module into bit-level driver/reader maps and
provides topological ordering, cone extraction and ancestor/descendant
queries.  All queries operate on *canonical* bits (alias connections are
resolved through the module's :class:`~repro.ir.module.SigMap`).

Terminology (matches the paper):

* the **drivers** of a bit are the cell output that produces it;
* *S is an ancestor of T* iff there is a directed path of combinational
  cells from S to T (S is in T's fanin cone);
* **sources** are bits with no combinational driver: module inputs,
  constants, dff outputs and undriven wires.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .cells import CellType
from .module import Cell, Module, SigMap
from .signals import SigBit, SigSpec


class DriverConflictError(Exception):
    """A bit is driven by more than one cell output / connection."""


class NetIndex:
    """Bit-level view of a module, built once and queried many times.

    The index is a snapshot: structural edits to the module invalidate it and
    a new index must be built.  Passes in :mod:`repro.opt` and
    :mod:`repro.core` follow a build–analyze–edit–rebuild cycle.
    """

    def __init__(self, module: Module):
        self.module = module
        self.sigmap = module.sigmap()
        #: canonical bit -> (cell, port name, bit offset in that port)
        self.driver: Dict[SigBit, Tuple[Cell, str, int]] = {}
        #: canonical bit -> list of (cell, port name, offset) readers
        self.readers: Dict[SigBit, List[Tuple[Cell, str, int]]] = {}
        self._build()

    def _build(self) -> None:
        from .cells import input_ports, output_ports

        for cell in self.module.cells.values():
            for pname in output_ports(cell.type):
                for offset, bit in enumerate(cell.connections[pname]):
                    cbit = self.sigmap.map_bit(bit)
                    if cbit.is_const:
                        raise DriverConflictError(
                            f"cell {cell.name!r} drives constant bit {cbit!r}"
                        )
                    if cbit in self.driver:
                        other = self.driver[cbit][0]
                        raise DriverConflictError(
                            f"bit {cbit!r} driven by both {other.name!r} "
                            f"and {cell.name!r}"
                        )
                    self.driver[cbit] = (cell, pname, offset)
            for pname in input_ports(cell.type):
                for offset, bit in enumerate(cell.connections[pname]):
                    cbit = self.sigmap.map_bit(bit)
                    if cbit.is_const:
                        continue
                    self.readers.setdefault(cbit, []).append((cell, pname, offset))

    # -- basic queries -------------------------------------------------------

    def canonical(self, bit: SigBit) -> SigBit:
        return self.sigmap.map_bit(bit)

    def driver_cell(self, bit: SigBit) -> Optional[Cell]:
        """The combinational-or-dff cell driving ``bit``, or None."""
        entry = self.driver.get(self.sigmap.map_bit(bit))
        return entry[0] if entry else None

    def comb_driver(self, bit: SigBit) -> Optional[Cell]:
        """The driving cell, but treating dff outputs as sources."""
        cell = self.driver_cell(bit)
        if cell is not None and cell.type is CellType.DFF:
            return None
        return cell

    def is_source(self, bit: SigBit) -> bool:
        """True for constants, module inputs, dff outputs and undriven bits."""
        cbit = self.sigmap.map_bit(bit)
        if cbit.is_const:
            return True
        return self.comb_driver(cbit) is None

    def fanout_count(self, bit: SigBit) -> int:
        cbit = self.sigmap.map_bit(bit)
        count = len(self.readers.get(cbit, ()))
        if cbit.wire is not None and cbit.wire.port_output:
            count += 1
        return count

    def cell_fanin_bits(self, cell: Cell) -> List[SigBit]:
        return [self.sigmap.map_bit(b) for b in cell.input_bits()]

    def cell_fanout_bits(self, cell: Cell) -> List[SigBit]:
        return [self.sigmap.map_bit(b) for b in cell.output_bits()]

    # -- traversal -----------------------------------------------------------

    def topo_cells(self) -> List[Cell]:
        """Combinational cells in topological order (fanin before fanout).

        DFF cells are excluded; their outputs count as sources.  Raises
        :class:`CombLoopError` on combinational cycles.
        """
        order: List[Cell] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        comb_cells = [c for c in self.module.cells.values() if c.is_combinational]
        for root in comb_cells:
            if state.get(root.name) == 1:
                continue
            stack: List[Tuple[Cell, Iterator[SigBit]]] = [
                (root, iter(self.cell_fanin_bits(root)))
            ]
            state[root.name] = 0
            while stack:
                cell, it = stack[-1]
                advanced = False
                for bit in it:
                    dep = self.comb_driver(bit)
                    if dep is None:
                        continue
                    dep_state = state.get(dep.name)
                    if dep_state == 0:
                        raise CombLoopError(
                            f"combinational loop through {dep.name!r}"
                        )
                    if dep_state is None:
                        state[dep.name] = 0
                        stack.append((dep, iter(self.cell_fanin_bits(dep))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[cell.name] = 1
                    order.append(cell)
        return order

    def fanin_cone(
        self, bits: Iterable[SigBit], max_depth: Optional[int] = None
    ) -> Set[SigBit]:
        """All canonical bits reachable backwards from ``bits`` (inclusive).

        ``max_depth`` bounds the number of *cell* levels crossed; ``None``
        means unbounded.  DFF cells are not crossed.
        """
        start = [self.sigmap.map_bit(b) for b in bits]
        seen: Set[SigBit] = set(start)
        frontier = start
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            next_frontier: List[SigBit] = []
            for bit in frontier:
                cell = self.comb_driver(bit)
                if cell is None:
                    continue
                for fbit in self.cell_fanin_bits(cell):
                    if fbit not in seen:
                        seen.add(fbit)
                        next_frontier.append(fbit)
            frontier = next_frontier
            depth += 1
        return seen

    def fanout_cone(
        self, bits: Iterable[SigBit], max_depth: Optional[int] = None
    ) -> Set[SigBit]:
        """All canonical bits reachable forwards from ``bits`` (inclusive)."""
        start = [self.sigmap.map_bit(b) for b in bits]
        seen: Set[SigBit] = set(start)
        frontier = start
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            next_frontier: List[SigBit] = []
            for bit in frontier:
                for cell, _port, _off in self.readers.get(bit, ()):
                    if not cell.is_combinational:
                        continue
                    for obit in self.cell_fanout_bits(cell):
                        if obit not in seen:
                            seen.add(obit)
                            next_frontier.append(obit)
            frontier = next_frontier
            depth += 1
        return seen

    def support(self, bits: Iterable[SigBit]) -> FrozenSet[SigBit]:
        """The source bits (inputs/consts/dff-Q) in the fanin cone of ``bits``."""
        return frozenset(b for b in self.fanin_cone(bits) if self.is_source(b))

    def is_ancestor(self, s: SigBit, t: SigBit) -> bool:
        """True iff ``s`` lies in the combinational fanin cone of ``t``."""
        return self.sigmap.map_bit(s) in self.fanin_cone([t])


class CombLoopError(Exception):
    """The module contains a combinational cycle."""
