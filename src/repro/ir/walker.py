"""Netlist graph indices and traversal utilities.

:class:`NetIndex` views a module as bit-level driver/reader maps and
provides topological ordering, cone extraction and ancestor/descendant
queries.  All queries operate on *canonical* bits (alias connections are
resolved through the module's :class:`~repro.ir.module.SigMap`).

Two modes:

* ``NetIndex(module)`` — a **snapshot**: structural edits to the module
  invalidate it and a new index must be built (the historic eager
  build–analyze–edit–rebuild cycle, kept as the ``engine="eager"``
  reference path);
* ``module.net_index()`` — a **live** instance subscribed to the module's
  edit-notification channel: every ``set_port``/``connect``/``add_cell``/
  ``remove_cell`` patches the driver/reader maps, the alias union-find and
  the memoized topological order in place, so optimization passes share one
  index across the whole pipeline instead of rebuilding at every entry.

Live indexes additionally support :meth:`NetIndex.frozen`: inside the
context, incoming edits are buffered and queries keep answering from the
pre-edit snapshot — exactly the stale-by-design semantics the muxtree
passes rely on — and the buffer is applied (or the index rebuilt, when the
edit burst is larger than the module) on exit.

Terminology (matches the paper):

* the **drivers** of a bit are the cell output that produces it;
* *S is an ancestor of T* iff there is a directed path of combinational
  cells from S to T (S is in T's fanin cone);
* **sources** are bits with no combinational driver: module inputs,
  constants, dff outputs and undriven wires.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from . import module as module_mod
from .cells import CellType, input_ports, output_ports
from .module import Cell, Module, ModuleEdit, SigMap
from .signals import SigBit, SigSpec


class DriverConflictError(Exception):
    """A bit is driven by more than one cell output / connection."""


#: a driver/reader record: (cell, port name, bit offset in that port)
Entry = Tuple[Cell, str, int]


class NetIndex:
    """Bit-level view of a module, built once and queried many times."""

    def __init__(self, module: Module, live: bool = False):
        self.module = module
        self.live = live
        self.sigmap = module.sigmap()
        #: canonical bit -> (cell, port name, bit offset in that port)
        self.driver: Dict[SigBit, Entry] = {}
        #: canonical bit -> list of (cell, port name, offset) readers
        self.readers: Dict[SigBit, List[Entry]] = {}
        #: transiently conflicting drivers (edit sequences that alias a
        #: still-driven bit before deleting its cell); queries raise while
        #: a conflict is visible, mirroring the snapshot builder
        self._extra_drivers: Dict[SigBit, List[Entry]] = {}
        #: canonical bits observable at module outputs (alias-closed)
        self._output_bits: Set[SigBit] = set()
        self._topo_cache: Optional[List[Cell]] = None
        self._frozen = 0
        self._pending: List[ModuleEdit] = []
        #: generation-compaction bookkeeping for the live alias union-find
        #: (dead-entry reclamation; see :meth:`_maybe_compact`)
        self._removal_events = 0
        self._replaying = False
        self._compact_deferred = False
        #: entry count at the last live-bit sweep; the O(module) sweep
        #: re-runs only after the union-find doubles past it
        self._compact_floor = 128
        self.compactions = 0
        self._build()
        if live:
            module.add_listener(self._on_edit)

    def _build(self) -> None:
        for cell in self.module.cells.values():
            for pname in output_ports(cell.type):
                for offset, bit in enumerate(cell.connections[pname]):
                    cbit = self.sigmap.map_bit(bit)
                    if cbit.is_const:
                        raise DriverConflictError(
                            f"cell {cell.name!r} drives constant bit {cbit!r}"
                        )
                    if cbit in self.driver:
                        other = self.driver[cbit][0]
                        raise DriverConflictError(
                            f"bit {cbit!r} driven by both {other.name!r} "
                            f"and {cell.name!r}"
                        )
                    self.driver[cbit] = (cell, pname, offset)
            for pname in input_ports(cell.type):
                for offset, bit in enumerate(cell.connections[pname]):
                    cbit = self.sigmap.map_bit(bit)
                    if cbit.is_const:
                        continue
                    self.readers.setdefault(cbit, []).append((cell, pname, offset))
        for wire in self.module.outputs:
            for i in range(wire.width):
                self._output_bits.add(self.sigmap.map_bit(SigBit(wire, i)))
        for instance in self.module.instances.values():
            self._observe_instance(instance)

    def _observe_instance(self, instance) -> None:
        """Mark all instance binding bits observable.

        Directions of the child's ports are unknown at module scope, so
        every bound bit counts as observable: output-side bindings are
        undriven sources (harmless to observe) and input-side bindings must
        keep their parent fanin cones alive under ``opt_clean``.
        """
        for bit in instance.binding_bits():
            self._output_bits.add(self.sigmap.map_bit(bit))

    # -- live maintenance ----------------------------------------------------

    def _on_edit(self, edit: ModuleEdit) -> None:
        if self._frozen:
            self._pending.append(edit)
        else:
            self._apply(edit)

    @contextmanager
    def frozen(self) -> Iterator["NetIndex"]:
        """Buffer incoming edits; queries answer from the entry snapshot.

        Passes that analyse with a fixed view while editing (the muxtree
        family) wrap their execution in this context: inside, the index is
        exactly what an eager pass-entry rebuild would have produced; the
        buffered edits are applied on exit.  Nestable.
        """
        self._frozen += 1
        try:
            yield self
        finally:
            self._frozen -= 1
            if not self._frozen and self._pending:
                pending, self._pending = self._pending, []
                # a burst larger than the module is cheaper to rebuild
                if len(pending) > max(64, 2 * len(self.module.cells)):
                    self._rebuild()
                else:
                    # compaction must not fire mid-replay: _live_bits reads
                    # the module's *final* state, so compacting while later
                    # pending deindexes are still queued would drop entries
                    # those deindexes need to find their canonical roots
                    self._replaying = True
                    try:
                        for edit in pending:
                            self._apply(edit)
                    finally:
                        self._replaying = False
                    if self._compact_deferred:
                        self._compact_deferred = False
                        self._maybe_compact()

    def _rebuild(self) -> None:
        """Full resync fallback (also refreshes the alias union-find).

        Rebuilding drops the stale dead-bit union-find entries exactly
        like compaction does, so raw-bit consumers must be told the same
        way (see :meth:`_note_generation_reset`).
        """
        self.sigmap = self.module.sigmap()
        self.driver = {}
        self.readers = {}
        self._extra_drivers = {}
        self._output_bits = set()
        self._topo_cache = None
        self._build()
        self._note_generation_reset()

    def _note_generation_reset(self) -> None:
        """The alias union-find just lost its stale dead-bit entries.

        Consumers holding *raw* bits they resolve lazily — the muxtree
        edge cache's buffered edits, Session pending-edit windows, the
        pass engine's round carry — would silently resolve dead bits to
        themselves instead of their old class; bumping :attr:`compactions`
        (their staleness check) and invalidating the module's edge cache
        keeps them honest.
        """
        self.compactions += 1
        edge_cache = getattr(self.module, "_edge_cache", None)
        if edge_cache is not None:
            edge_cache.invalidate()

    def _apply(self, edit: ModuleEdit) -> None:
        kind = edit.kind
        if kind == module_mod.PORT_CHANGED:
            self._topo_cache = None
            is_out = edit.port in output_ports(edit.cell.type)
            if edit.old is not None:
                self._deindex_port(edit.cell, edit.port, edit.old, is_out)
            self._index_port(edit.cell, edit.port, edit.new, is_out)
        elif kind == module_mod.CELL_ADDED:
            self._topo_cache = None
            outs = set(output_ports(edit.cell.type))
            for pname, spec in edit.ports.items():
                self._index_port(edit.cell, pname, spec, pname in outs)
        elif kind == module_mod.CELL_REMOVED:
            self._topo_cache = None
            outs = set(output_ports(edit.cell.type))
            for pname, spec in edit.ports.items():
                self._deindex_port(edit.cell, pname, spec, pname in outs)
        elif kind == module_mod.CONNECTED:
            self._topo_cache = None
            for lbit, rbit in zip(edit.lhs, edit.rhs):
                self._merge(lbit, rbit)
        elif kind == module_mod.WIRE_ADDED:
            wire = edit.wire
            if wire.port_output:
                for i in range(wire.width):
                    self._output_bits.add(self.sigmap.map_bit(SigBit(wire, i)))
        elif kind == module_mod.INSTANCE_ADDED:
            self._observe_instance(edit.instance)
        # INSTANCE_REMOVED keeps its binding bits observable: a bit may be
        # bound by several instances or be a real output, and stale
        # observability is conservative (the next rebuild drops it).
        # CONNECTIONS_REPLACED / WIRE_REMOVED need no patching: opt_clean
        # only drops aliases whose lhs class is unreachable from any cell
        # port, kept connection or module output, so the canonical mapping
        # of every queriable bit is unchanged (stale union-find entries for
        # dead bits are harmless).
        if kind in (
            module_mod.CELL_REMOVED,
            module_mod.CONNECTIONS_REPLACED,
            module_mod.WIRE_REMOVED,
        ):
            self._removal_events += 1
            if self._removal_events % 64 == 0:
                if self._replaying:
                    self._compact_deferred = True
                else:
                    self._maybe_compact()

    # -- union-find generation compaction ------------------------------------

    def _live_bits(self) -> Set[SigBit]:
        """Every bit the module can still canonically mention: alias
        connection bits, cell port bits, instance binding bits, and
        port-wire bits."""
        live: Set[SigBit] = set()
        for lhs, rhs in self.module.connections:
            live.update(lhs)
            live.update(rhs)
        for cell in self.module.cells.values():
            for spec in cell.connections.values():
                live.update(spec)
        for instance in self.module.instances.values():
            for spec in instance.connections.values():
                live.update(spec)
        for wire in self.module.wires.values():
            if wire.is_port:
                for i in range(wire.width):
                    live.add(SigBit(wire, i))
        return live

    def _maybe_compact(self) -> None:
        """Compact the alias union-find when dead entries dominate.

        Removal-heavy sessions (opt_clean reaping thousands of bypassed
        muxes over many runs) leave the union-find full of entries for
        bits no live netlist object mentions.  When the entry count grows
        past twice the module's live-bit population, the structure is
        rewritten over exactly the live bits — representatives preserved,
        so every driver/reader/output key stays valid (see
        :meth:`~repro.ir.module.SigMap.compact`).  The O(module) live-bit
        sweep is doubly amortized: checked every 64 removal events, and
        only once the entry count has doubled since the previous sweep
        (``_compact_floor``), so modules whose union-find is mostly live
        never pay repeated fruitless sweeps.

        Compaction intentionally keeps no entries for dead bits, so any
        consumer holding *raw* pre-compaction bits must be told: the
        module's persistent muxtree edge cache buffers raw edits and
        resolves them lazily, so it is invalidated here, and Session
        pending-edit windows compare the :attr:`compactions` counter
        before seeding.
        """
        size = len(self.sigmap)
        if size < 256 or size < 2 * self._compact_floor:
            return
        live = self._live_bits()
        if size <= 2 * len(live):
            self._compact_floor = size
            return
        self.sigmap.compact(live)
        self._compact_floor = max(128, len(self.sigmap))
        self._note_generation_reset()

    def _index_port(self, cell: Cell, pname: str, spec: SigSpec,
                    is_out: bool) -> None:
        map_bit = self.sigmap.map_bit
        if is_out:
            for offset, bit in enumerate(spec):
                cbit = map_bit(bit)
                entry = (cell, pname, offset)
                if cbit.is_const or cbit in self.driver:
                    # transient conflict: tolerated until the losing cell is
                    # removed; queries raise if observed in the meantime
                    self._extra_drivers.setdefault(cbit, []).append(entry)
                else:
                    self.driver[cbit] = entry
        else:
            for offset, bit in enumerate(spec):
                cbit = map_bit(bit)
                if cbit.is_const:
                    continue
                self.readers.setdefault(cbit, []).append((cell, pname, offset))

    def _deindex_port(self, cell: Cell, pname: str, spec: SigSpec,
                      is_out: bool) -> None:
        map_bit = self.sigmap.map_bit
        for offset, bit in enumerate(spec):
            cbit = map_bit(bit)
            if is_out:
                cur = self.driver.get(cbit)
                if cur is not None and cur[0] is cell and cur[1] == pname \
                        and cur[2] == offset:
                    extras = self._extra_drivers.get(cbit)
                    if extras:
                        self.driver[cbit] = extras.pop(0)
                        if not extras:
                            del self._extra_drivers[cbit]
                    else:
                        del self.driver[cbit]
                    continue
                extras = self._extra_drivers.get(cbit)
                if extras:
                    for i, entry in enumerate(extras):
                        if entry[0] is cell and entry[1] == pname \
                                and entry[2] == offset:
                            extras.pop(i)
                            break
                    if not extras:
                        del self._extra_drivers[cbit]
            else:
                if cbit.is_const:
                    continue
                entries = self.readers.get(cbit)
                if entries:
                    for i, entry in enumerate(entries):
                        if entry[0] is cell and entry[1] == pname \
                                and entry[2] == offset:
                            entries.pop(i)
                            break
                    if not entries:
                        del self.readers[cbit]

    def _merge(self, lbit: SigBit, rbit: SigBit) -> None:
        """Union two alias classes and re-key their map entries."""
        ra = self.sigmap.map_bit(lbit)
        rb = self.sigmap.map_bit(rbit)
        if ra == rb:
            return
        self.sigmap.add(ra, rb)
        root = self.sigmap.map_bit(ra)
        loser = rb if root == ra else ra
        if root.is_const:
            # constants carry no reader lists (matches the snapshot builder);
            # a surviving driver entry becomes a visible conflict
            self.readers.pop(loser, None)
        else:
            moved = self.readers.pop(loser, None)
            if moved:
                self.readers.setdefault(root, []).extend(moved)
        entry = self.driver.pop(loser, None)
        if entry is not None:
            if root.is_const or root in self.driver:
                self._extra_drivers.setdefault(root, []).append(entry)
            else:
                self.driver[root] = entry
        extras = self._extra_drivers.pop(loser, None)
        if extras:
            self._extra_drivers.setdefault(root, []).extend(extras)
        if loser in self._output_bits:
            self._output_bits.discard(loser)
            self._output_bits.add(root)

    def check_consistent(self) -> None:
        """Raise when a driver conflict is currently visible."""
        if self._extra_drivers:
            cbit, entries = next(iter(self._extra_drivers.items()))
            raise DriverConflictError(
                f"bit {cbit!r} has {len(entries) + 1} drivers "
                f"(e.g. {entries[0][0].name!r})"
            )

    # -- basic queries -------------------------------------------------------

    def canonical(self, bit: SigBit) -> SigBit:
        return self.sigmap.map_bit(bit)

    def driver_cell(self, bit: SigBit) -> Optional[Cell]:
        """The combinational-or-dff cell driving ``bit``, or None."""
        cbit = self.sigmap.map_bit(bit)
        entry = self.driver.get(cbit)
        if self._extra_drivers and cbit in self._extra_drivers:
            other = self._extra_drivers[cbit][0][0]
            first = entry[0].name if entry else "a constant"
            raise DriverConflictError(
                f"bit {cbit!r} driven by both {first!r} and {other.name!r}"
            )
        return entry[0] if entry else None

    def comb_driver(self, bit: SigBit) -> Optional[Cell]:
        """The driving cell, but treating dff outputs as sources."""
        cell = self.driver_cell(bit)
        if cell is not None and cell.type is CellType.DFF:
            return None
        return cell

    def is_source(self, bit: SigBit) -> bool:
        """True for constants, module inputs, dff outputs and undriven bits."""
        cbit = self.sigmap.map_bit(bit)
        if cbit.is_const:
            return True
        return self.comb_driver(cbit) is None

    def is_output_bit(self, bit: SigBit) -> bool:
        """True when any alias of ``bit`` is a module output bit."""
        return self.sigmap.map_bit(bit) in self._output_bits

    @property
    def output_bits(self) -> Set[SigBit]:
        """Canonical bits observable at module outputs (do not mutate)."""
        return self._output_bits

    def fanout_count(self, bit: SigBit) -> int:
        cbit = self.sigmap.map_bit(bit)
        count = len(self.readers.get(cbit, ()))
        if cbit.wire is not None and cbit.wire.port_output:
            count += 1
        return count

    def cell_fanin_bits(self, cell: Cell) -> List[SigBit]:
        return [self.sigmap.map_bit(b) for b in cell.input_bits()]

    def cell_fanout_bits(self, cell: Cell) -> List[SigBit]:
        return [self.sigmap.map_bit(b) for b in cell.output_bits()]

    # -- traversal -----------------------------------------------------------

    def topo_cells(self) -> List[Cell]:
        """Combinational cells in topological order (fanin before fanout).

        DFF cells are excluded; their outputs count as sources.  Raises
        :class:`CombLoopError` on combinational cycles.  The order is
        memoized; structural edits invalidate the memo (live mode patches
        it automatically, snapshot mode relies on the rebuild discipline).
        """
        if self._topo_cache is None:
            self._topo_cache = self._compute_topo()
        return list(self._topo_cache)

    def _compute_topo(self) -> List[Cell]:
        order: List[Cell] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        comb_cells = [c for c in self.module.cells.values() if c.is_combinational]
        for root in comb_cells:
            if state.get(root.name) == 1:
                continue
            stack: List[Tuple[Cell, Iterator[SigBit]]] = [
                (root, iter(self.cell_fanin_bits(root)))
            ]
            state[root.name] = 0
            while stack:
                cell, it = stack[-1]
                advanced = False
                for bit in it:
                    dep = self.comb_driver(bit)
                    if dep is None:
                        continue
                    dep_state = state.get(dep.name)
                    if dep_state == 0:
                        raise CombLoopError(
                            f"combinational loop through {dep.name!r}"
                        )
                    if dep_state is None:
                        state[dep.name] = 0
                        stack.append((dep, iter(self.cell_fanin_bits(dep))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[cell.name] = 1
                    order.append(cell)
        return order

    def fanin_cone(
        self, bits: Iterable[SigBit], max_depth: Optional[int] = None
    ) -> Set[SigBit]:
        """All canonical bits reachable backwards from ``bits`` (inclusive).

        ``max_depth`` bounds the number of *cell* levels crossed; ``None``
        means unbounded.  DFF cells are not crossed.
        """
        start = [self.sigmap.map_bit(b) for b in bits]
        seen: Set[SigBit] = set(start)
        frontier = start
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            next_frontier: List[SigBit] = []
            for bit in frontier:
                cell = self.comb_driver(bit)
                if cell is None:
                    continue
                for fbit in self.cell_fanin_bits(cell):
                    if fbit not in seen:
                        seen.add(fbit)
                        next_frontier.append(fbit)
            frontier = next_frontier
            depth += 1
        return seen

    def fanout_cone(
        self, bits: Iterable[SigBit], max_depth: Optional[int] = None
    ) -> Set[SigBit]:
        """All canonical bits reachable forwards from ``bits`` (inclusive)."""
        start = [self.sigmap.map_bit(b) for b in bits]
        seen: Set[SigBit] = set(start)
        frontier = start
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            next_frontier: List[SigBit] = []
            for bit in frontier:
                for cell, _port, _off in self.readers.get(bit, ()):
                    if not cell.is_combinational:
                        continue
                    for obit in self.cell_fanout_bits(cell):
                        if obit not in seen:
                            seen.add(obit)
                            next_frontier.append(obit)
            frontier = next_frontier
            depth += 1
        return seen

    def support(self, bits: Iterable[SigBit]) -> FrozenSet[SigBit]:
        """The source bits (inputs/consts/dff-Q) in the fanin cone of ``bits``."""
        return frozenset(b for b in self.fanin_cone(bits) if self.is_source(b))

    def is_ancestor(self, s: SigBit, t: SigBit) -> bool:
        """True iff ``s`` lies in the combinational fanin cone of ``t``."""
        return self.sigmap.map_bit(s) in self.fanin_cone([t])


class CombLoopError(Exception):
    """The module contains a combinational cycle."""
