"""Self-testing infrastructure: failure oracles and the case reducer.

The fuzz lanes (``repro.equiv.differential``, ``tests/fuzz``) generate
whole randomized workload modules; when one fails, this package shrinks
it to a minimal repro while a pluggable *oracle* keeps failing:

* :mod:`repro.testing.oracles` wraps every differential lane as an
  interestingness predicate (``probe(module) -> label``);
* :mod:`repro.testing.reduce` is the ddmin-style delta-debugging loop
  that drops cells, constifies/merges input bits, narrows ports, prunes
  hierarchy instances and rename-normalizes — all through the notifying
  Module/Design edit APIs, so every candidate doubles as a stress test
  of the live :class:`~repro.ir.walker.NetIndex`.

Reduced repros are written as ``.v`` + self-describing ``.json`` pairs
(:func:`write_repro` / :func:`load_repro`); the committed corpus under
``tests/fixtures/repros/`` replays them in tier-1.
"""

from .oracles import (
    PASS,
    ORACLE_NAMES,
    Oracle,
    get_oracle,
)
from .reduce import (
    DeltaReducer,
    NotFailingError,
    ReductionResult,
    load_repro,
    reduce_design,
    reduce_module,
    write_repro,
)

__all__ = [
    "PASS",
    "ORACLE_NAMES",
    "Oracle",
    "get_oracle",
    "DeltaReducer",
    "NotFailingError",
    "ReductionResult",
    "load_repro",
    "reduce_design",
    "reduce_module",
    "write_repro",
]
