"""ddmin-style delta-debugging reducer over IR modules and designs.

Given a failing case and an oracle (:mod:`repro.testing.oracles`), the
reducer shrinks the case while the oracle keeps failing *with the same
label*.  The shrink passes, to a fixpoint:

1. **prune_dead** — drop every cell outside the observable cone in one
   probe (cheap opening move on bloated fuzz modules);
2. **drop_cells** — ddmin chunked removal over the topological cell
   order, each chunk widened to its fanout closure so candidates never
   need repair; granularity doubles when a sweep makes no progress;
3. **drop_cell** — single-cell removals to a fixpoint, leaving readers
   on undriven bits (first-class sources everywhere in the codebase),
   which guarantees 1-minimality over cells;
4. **constify_inputs** — ddmin over free input bits tied to constants;
5. **merge_inputs** — alias remaining input bits to one representative;
6. **narrow_ports** — rewrite readers off dead input-bit positions and
   shrink the port wire;
7. **prune_instance** / **drop_module** (design scope) — remove
   hierarchy instances, then unreferenced child modules;
8. **rename_normalize** — one final rebuilt candidate with canonical
   ``i*/o*/n*/c*`` names in topological order (byte-stable output).

Every candidate is a clone of the current best edited **through the
notifying Module/Design APIs** with a live
:class:`~repro.ir.walker.NetIndex` attached and
``check_consistent()``-verified before probing — each accepted shrink is
also a stress test of the incremental engine.

All iteration orders derive from sorted names, insertion order, or the
deterministic topological order — never from set/hash order — so the
minimized artifact is byte-identical across interpreter runs and hash
seeds (see ``tests/testing/test_reduce.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.cells import output_ports
from ..ir.design import Design
from ..ir.module import Module
from ..ir.signals import SigBit, SigSpec
from ..ir.walker import CombLoopError, DriverConflictError
from .oracles import PASS, Oracle


class NotFailingError(ValueError):
    """The input already passes the oracle — there is nothing to reduce."""


class _BudgetExhausted(Exception):
    """Internal: the probe budget ran out; keep the best-so-far."""


@dataclass
class ReductionResult:
    """Outcome of one reduction: the minimized case plus bookkeeping."""

    #: the failure label being preserved (oracle's verdict on the input)
    target: str
    original_cells: int
    cells: int
    probes: int
    accepted: int
    pass_stats: Dict[str, int] = field(default_factory=dict)
    module: Optional[Module] = None
    design: Optional[Design] = None
    original_instances: int = 0
    instances: int = 0

    @property
    def reduction(self) -> float:
        """Fraction of cells removed (0.0 when the input was empty)."""
        if not self.original_cells:
            return 0.0
        return 1.0 - self.cells / self.original_cells

    def summary(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "original_cells": self.original_cells,
            "cells": self.cells,
            "reduction": round(self.reduction, 4),
            "probes": self.probes,
            "accepted": self.accepted,
            "passes": dict(sorted(self.pass_stats.items())),
            "original_instances": self.original_instances,
            "instances": self.instances,
        }


class DeltaReducer:
    """The delta-debugging loop (see module docs for the pass sequence).

    ``max_probes`` bounds total oracle invocations; on exhaustion the
    best case found so far is returned (still failing with the target
    label — only accepted candidates replace it).  ``verify_index``
    keeps a live :class:`NetIndex` on every candidate and asserts
    consistency after each edit batch.
    """

    def __init__(self, oracle: Oracle, *, max_probes: int = 2000,
                 rename: bool = True, verify_index: bool = True,
                 on_progress: Optional[Callable[[str], None]] = None):
        self.oracle = oracle
        self.max_probes = max_probes
        self.rename = rename
        self.verify_index = verify_index
        self.on_progress = on_progress
        self.target = PASS
        self.probes = 0
        self.accepted = 0
        self.pass_stats: Dict[str, int] = {}
        self._best: Any = None
        self._scope = "module"
        self._mname: Optional[str] = None

    # -- public entry points --------------------------------------------------

    def reduce_module(self, module: Module) -> ReductionResult:
        if self.oracle.scope != "module":
            raise ValueError(
                f"oracle {self.oracle.name!r} reduces designs, not modules"
            )
        self._scope = "module"
        self._mname = None
        self.target = self.oracle.probe(module)
        if self.target == PASS:
            raise NotFailingError(
                f"module {module.name!r} does not fail oracle "
                f"{self.oracle.name!r}"
            )
        self._best = module.clone()
        original_cells = len(module.cells)
        try:
            changed = True
            while changed:
                changed = False
                changed |= self._pass_prune_dead()
                changed |= self._pass_drop_cells_chunks()
                changed |= self._pass_drop_cells_singles()
                changed |= self._pass_constify_inputs()
                changed |= self._pass_merge_inputs()
                changed |= self._pass_narrow_ports()
        except _BudgetExhausted:
            pass
        if self.rename:
            self._try_normalize()
        return ReductionResult(
            target=self.target,
            original_cells=original_cells,
            cells=len(self._best.cells),
            probes=self.probes,
            accepted=self.accepted,
            pass_stats=dict(self.pass_stats),
            module=self._best,
        )

    def reduce_design(self, design: Design) -> ReductionResult:
        if self.oracle.scope != "design":
            raise ValueError(
                f"oracle {self.oracle.name!r} reduces modules, not designs"
            )
        self._scope = "design"
        self.target = self.oracle.probe(design)
        if self.target == PASS:
            raise NotFailingError(
                f"design does not fail oracle {self.oracle.name!r}"
            )
        self._best = design.clone()
        original_cells = self._design_cells(design)
        original_instances = self._design_instances(design)
        try:
            changed = True
            while changed:
                changed = False
                changed |= self._pass_prune_instances()
                changed |= self._pass_drop_modules()
                for name in sorted(self._best.modules):
                    if name not in self._best.modules:
                        continue
                    self._mname = name
                    changed |= self._pass_prune_dead()
                    changed |= self._pass_drop_cells_chunks()
                    changed |= self._pass_drop_cells_singles()
                    changed |= self._pass_constify_inputs()
                    changed |= self._pass_merge_inputs()
                    if not self._best.instantiators(name):
                        # narrowing an instantiated module's ports would
                        # break the parents' by-name bindings
                        changed |= self._pass_narrow_ports()
                self._mname = None
        except _BudgetExhausted:
            pass
        if self.rename:
            self._try_normalize()
        return ReductionResult(
            target=self.target,
            original_cells=original_cells,
            cells=self._design_cells(self._best),
            probes=self.probes,
            accepted=self.accepted,
            pass_stats=dict(self.pass_stats),
            design=self._best,
            original_instances=original_instances,
            instances=self._design_instances(self._best),
        )

    # -- candidate machinery --------------------------------------------------

    def _module(self) -> Module:
        return self._best if self._scope == "module" else self._best[self._mname]

    def _edit_target(self, state: Any) -> Module:
        return state if self._scope == "module" else state[self._mname]

    def _try(self, edit: Callable[[Any], int], pass_name: str) -> bool:
        """Clone best, apply ``edit`` under a live index, probe, accept."""
        if self.probes >= self.max_probes:
            raise _BudgetExhausted
        candidate = self._best.clone()
        indexes = []
        if self.verify_index and self._mname is None and self._scope == "module":
            indexes.append(candidate.net_index())
        elif self.verify_index and self._mname is not None:
            if self._mname in getattr(candidate, "modules", {}):
                indexes.append(candidate[self._mname].net_index())
        try:
            applied = edit(candidate)
        except (ValueError, KeyError, DriverConflictError, CombLoopError):
            return False  # an inapplicable edit is just a rejected candidate
        if not applied:
            return False
        for index in indexes:
            index.check_consistent()
        self.probes += 1
        label = self.oracle.probe(candidate)
        if label != self.target:
            return False
        self.accepted += 1
        self.pass_stats[pass_name] = self.pass_stats.get(pass_name, 0) + applied
        self._best = candidate
        if self.on_progress is not None:
            self.on_progress(
                f"{pass_name}: -{applied} "
                f"({self._size_note()}, probe {self.probes})"
            )
        return True

    def _size_note(self) -> str:
        if self._scope == "module":
            return f"{len(self._best.cells)} cells"
        return (
            f"{self._design_cells(self._best)} cells / "
            f"{self._design_instances(self._best)} instances"
        )

    @staticmethod
    def _design_cells(design: Design) -> int:
        return sum(len(m.cells) for m in design)

    @staticmethod
    def _design_instances(design: Design) -> int:
        return sum(len(m.instances) for m in design)

    # -- deterministic orders -------------------------------------------------

    def _topo_names(self, mod: Module) -> List[str]:
        """Cell names, combinational cells in topo order, the rest sorted."""
        try:
            order = [c.name for c in mod.net_index().topo_cells()]
        except (CombLoopError, DriverConflictError):
            return sorted(mod.cells)
        rest = sorted(set(mod.cells) - set(order))
        return order + rest

    def _fanout_closure(self, mod: Module, names: Sequence[str]) -> List[str]:
        """``names`` plus every combinational cell downstream of them."""
        index = mod.net_index()
        closure = set(names)
        out_bits: List[SigBit] = []
        for name in names:
            cell = mod.cells.get(name)
            if cell is not None:
                out_bits.extend(index.cell_fanout_bits(cell))
        for bit in index.fanout_cone(out_bits):
            driver = index.comb_driver(bit)
            if driver is not None:
                closure.add(driver.name)
        return sorted(closure)

    # -- cell passes ----------------------------------------------------------

    @staticmethod
    def _tether_sources(mod: Module, specs: Sequence[SigSpec]) -> None:
        """Alias still-read, now-undriven bits to fresh input-port wires.

        Removing a driver must not leave *observed* bits dangling on
        anonymous undriven nets: the AIG mapper names those by canonical
        ``repr``, and flow passes may re-root the alias class, so a pure
        rename would masquerade as a CEC mismatch.  Tethering each such
        bit to a fresh port-input wire pins a stable, flow-proof input
        name on the class (``_declare_inputs`` scans port wires first).
        """
        index = mod.net_index()
        for spec in specs:
            bits = []
            for bit in spec:
                if bit.is_const:
                    continue
                canon = index.canonical(bit)
                if canon.is_const or index.driver_cell(canon) is not None:
                    continue
                if index.fanout_count(bit) > 0 or index.is_output_bit(bit):
                    bits.append(bit)
            if bits:
                fresh = mod.add_wire(None, len(bits), port_input=True)
                mod.connect(SigSpec(bits), SigSpec.from_wire(fresh))

    def _drop_cells_edit(self, names: Sequence[str]) -> Callable[[Any], int]:
        def edit(state: Any) -> int:
            mod = self._edit_target(state)
            removed = []
            for name in names:
                cell = mod.cells.get(name)
                if cell is not None:
                    mod.remove_cell(cell)
                    removed.append(cell)
            self._tether_sources(mod, [
                cell.connections[pname]
                for cell in removed
                for pname in output_ports(cell.type)
                if pname in cell.connections
            ])
            return len(removed)
        return edit

    def _pass_prune_dead(self) -> bool:
        """One probe dropping everything outside the observable cone."""
        mod = self._module()
        index = mod.net_index()
        observable = set(index.output_bits)
        for inst in mod.instances.values():
            observable.update(index.canonical(b) for b in inst.binding_bits())
        live: set = set()
        for bit in index.fanin_cone(observable):
            driver = index.driver_cell(bit)
            if driver is not None:
                live.add(driver.name)
        dead = [
            name for name in self._topo_names(mod)
            if name not in live and mod.cells[name].is_combinational
        ]
        if not dead:
            return False
        return self._try(self._drop_cells_edit(dead), "prune_dead")

    def _pass_drop_cells_chunks(self) -> bool:
        """ddmin over the topo cell order, chunks widened to fanout closure."""
        changed = False
        n = 2
        while True:
            mod = self._module()
            names = self._topo_names(mod)
            if len(names) < 2:
                break
            n = min(n, len(names))
            size = -(-len(names) // n)  # ceil
            removed = False
            for i in range(0, len(names), size):
                closure = self._fanout_closure(mod, names[i:i + size])
                if len(closure) >= len(names):
                    continue  # dropping every cell is never a useful probe
                if self._try(self._drop_cells_edit(closure), "drop_cells"):
                    removed = True
                    changed = True
                    break
            if removed:
                n = max(2, n - 1)
                continue
            if size <= 1:
                break
            n = min(len(names), n * 2)
        return changed

    def _pass_drop_cells_singles(self) -> bool:
        """Single-cell removals to a fixpoint: 1-minimality over cells."""
        changed = False
        progress = True
        while progress:
            progress = False
            for name in self._topo_names(self._module()):
                if name not in self._module().cells:
                    continue
                if self._try(self._drop_cells_edit([name]), "drop_cell"):
                    progress = True
                    changed = True
        return changed

    # -- input passes ---------------------------------------------------------

    def _free_input_bits(self, mod: Module) -> List[Tuple[str, int]]:
        """Input bits that still represent themselves (untied, unmerged)."""
        index = mod.net_index()
        free: List[Tuple[str, int]] = []
        for wire in sorted(mod.inputs, key=lambda w: w.name):
            for offset in range(wire.width):
                bit = SigBit(wire, offset)
                canon = index.canonical(bit)
                if not canon.is_const and canon == bit:
                    free.append((wire.name, offset))
        return free

    def _tie_edit(self, assignments: Sequence[Tuple[str, int, int]]):
        def edit(state: Any) -> int:
            mod = self._edit_target(state)
            count = 0
            for wname, offset, value in assignments:
                wire = mod.wires.get(wname)
                if wire is None or offset >= wire.width:
                    continue
                bit = SigBit(wire, offset)
                if mod.net_index().canonical(bit).is_const:
                    continue
                mod.connect(SigSpec([bit]), value)
                count += 1
            return count
        return edit

    def _pass_constify_inputs(self) -> bool:
        """ddmin chunks tied to 0, then per-bit tries of 0 and 1."""
        changed = False
        n = 2
        while True:
            bits = self._free_input_bits(self._module())
            if len(bits) < 2:
                break
            n = min(n, len(bits))
            size = -(-len(bits) // n)
            removed = False
            for i in range(0, len(bits), size):
                chunk = [(w, o, 0) for w, o in bits[i:i + size]]
                if self._try(self._tie_edit(chunk), "constify_inputs"):
                    removed = True
                    changed = True
                    break
            if removed:
                n = max(2, n - 1)
                continue
            if size <= 1:
                break
            n = min(len(bits), n * 2)
        progress = True
        while progress:
            progress = False
            for wname, offset in self._free_input_bits(self._module()):
                for value in (0, 1):
                    if self._try(self._tie_edit([(wname, offset, value)]),
                                 "constify_inputs"):
                        progress = True
                        changed = True
                        break
        return changed

    def _pass_merge_inputs(self) -> bool:
        """Alias every remaining free input bit to the first one."""
        changed = False
        progress = True
        while progress:
            progress = False
            bits = self._free_input_bits(self._module())
            if len(bits) < 2:
                break
            rep = bits[0]
            for wname, offset in bits[1:]:
                if self._try(self._alias_edit((wname, offset), rep),
                             "merge_inputs"):
                    progress = True
                    changed = True
        return changed

    def _alias_edit(self, source: Tuple[str, int], rep: Tuple[str, int]):
        def edit(state: Any) -> int:
            mod = self._edit_target(state)
            swire = mod.wires.get(source[0])
            rwire = mod.wires.get(rep[0])
            if swire is None or rwire is None:
                return 0
            sbit = SigBit(swire, source[1])
            rbit = SigBit(rwire, rep[1])
            index = mod.net_index()
            if index.canonical(sbit) == index.canonical(rbit):
                return 0
            if index.canonical(sbit).is_const or index.canonical(rbit).is_const:
                return 0
            mod.connect(SigSpec([sbit]), SigSpec([rbit]))
            return 1
        return edit

    # -- port narrowing -------------------------------------------------------

    def _live_offsets(self, mod: Module, wire) -> List[int]:
        """Offsets of ``wire`` with a literal reference anywhere."""
        used: set = set()
        specs = [
            spec for cell in mod.cells.values()
            for spec in cell.connections.values()
        ]
        specs.extend(
            spec for inst in mod.instances.values()
            for spec in inst.connections.values()
        )
        specs.extend(rhs for _lhs, rhs in mod.connections)
        for spec in specs:
            for bit in spec:
                if not bit.is_const and bit.wire is wire:
                    used.add(bit.offset)
        return sorted(used)

    def _pass_narrow_ports(self) -> bool:
        """Shrink input port wires down to their literally-used bits."""
        changed = False
        for wname in sorted(w.name for w in self._module().inputs):
            mod = self._module()
            wire = mod.wires.get(wname)
            if wire is None or not wire.port_input or wire.port_output:
                continue
            keep = self._live_offsets(mod, wire)
            if len(keep) >= wire.width:
                continue
            changed |= self._try(self._narrow_edit(wname, keep),
                                 "narrow_ports")
        return changed

    def _narrow_edit(self, wname: str, keep: Sequence[int]):
        keep = list(keep)

        def edit(state: Any) -> int:
            mod = self._edit_target(state)
            wire = mod.wires.get(wname)
            if wire is None or not wire.port_input or wire.port_output:
                return 0
            if len(keep) >= wire.width:
                return 0
            offmap = {offset: i for i, offset in enumerate(keep)}
            new = mod.add_wire(None, len(keep), port_input=True) if keep else None

            def xbit(bit: SigBit) -> SigBit:
                if bit.is_const or bit.wire is not wire:
                    return bit
                return SigBit(new, offmap[bit.offset])

            def xspec(spec: SigSpec) -> SigSpec:
                return SigSpec(xbit(b) for b in spec)

            def touches(spec: SigSpec) -> bool:
                return any(
                    (not b.is_const) and b.wire is wire for b in spec
                )

            for cell in mod.cells.values():
                for pname in list(cell.connections):
                    if touches(cell.connections[pname]):
                        cell.set_port(pname, xspec(cell.connections[pname]))
            for iname in sorted(mod.instances):
                inst = mod.instances[iname]
                if any(touches(s) for s in inst.connections.values()):
                    bindings = {
                        p: xspec(s) for p, s in inst.connections.items()
                    }
                    target_module = inst.module_name
                    mod.remove_instance(iname)
                    mod.add_instance(target_module, iname, bindings)
            # alias pairs: drop the columns whose lhs sat on a dropped
            # offset (they have no readers, per the contract of
            # replace_connections), then re-declare translated survivors
            # through connect() so the live index merges them properly
            kept_pairs = []
            reconnect = []
            for lhs, rhs in mod.connections:
                if not touches(lhs) and not touches(rhs):
                    kept_pairs.append((lhs, rhs))
                    continue
                cols = [
                    (l, r) for l, r in zip(lhs, rhs)
                    if l.is_const or l.wire is not wire or l.offset in offmap
                ]
                if cols:
                    reconnect.append((
                        SigSpec(xbit(l) for l, _r in cols),
                        SigSpec(xbit(r) for _l, r in cols),
                    ))
            mod.replace_connections(kept_pairs)
            for lhs, rhs in reconnect:
                mod.connect(lhs, rhs)
            mod.remove_wire(wire)
            return wire.width - len(keep)
        return edit

    # -- hierarchy passes -----------------------------------------------------

    def _pass_prune_instances(self) -> bool:
        changed = False
        for parent in sorted(self._best.modules):
            if parent not in self._best.modules:
                continue
            for iname in sorted(self._best[parent].instances):
                self._mname = parent

                def edit(state: Any, parent=parent, iname=iname) -> int:
                    mod = state[parent]
                    inst = mod.instances.get(iname)
                    if inst is None:
                        return 0
                    mod.remove_instance(iname)
                    # child-output bindings lose their driver with the
                    # instance; pin surviving readers to stable inputs
                    self._tether_sources(
                        mod, [inst.connections[p]
                              for p in sorted(inst.connections)]
                    )
                    return 1

                changed |= self._try(edit, "prune_instance")
        self._mname = None
        return changed

    def _pass_drop_modules(self) -> bool:
        changed = False
        self._mname = None
        for name in sorted(self._best.modules):
            if name == self._best.top_name:
                continue
            if self._best.instantiators(name):
                continue

            def edit(state: Any, name=name) -> int:
                if name not in state.modules:
                    return 0
                if state.instantiators(name) or name == state.top_name:
                    return 0
                state.remove_module(name)
                return 1

            changed |= self._try(edit, "drop_module")
        return changed

    # -- rename-normalize -----------------------------------------------------

    def _try_normalize(self) -> bool:
        """Rebuilt candidate(s) with canonical names; keep one only if the
        oracle still fails identically (a rebuild is not an incremental
        edit, so it pays for itself with a probe).  The aggressive
        variant additionally drops constant-valued output ports; if that
        shifts the label, fall back to the conservative rebuild."""
        variants = (True, False) if self._scope == "module" else (False,)
        for drop_const_outputs in variants:
            if self.probes >= self.max_probes:
                return False
            if self._scope == "module":
                candidate: Any = _normalized(
                    self._best, drop_const_outputs=drop_const_outputs
                )
            else:
                candidate = self._best.clone()
                for name in sorted(candidate.modules):
                    candidate.replace_module(
                        name, _normalized(candidate[name], keep_ports=True)
                    )
            self.probes += 1
            if self.oracle.probe(candidate) == self.target:
                self.accepted += 1
                self.pass_stats["rename_normalize"] = 1
                self._best = candidate
                return True
        return False


def _normalized(module: Module, keep_ports: bool = False,
                drop_const_outputs: bool = False) -> Module:
    """A rebuilt copy with canonical ``i*/o*/n*/c*`` names in topo order.

    Dead port wires are dropped and internal wires whose bits are all
    undriven sources are promoted to inputs (matching how the AIG mapper
    already treats undriven reads), yielding a well-formed standalone
    artifact.  With ``keep_ports`` (hierarchy children) the port
    interface is preserved verbatim — parents bind ports by name.  With
    ``drop_const_outputs`` outputs whose whole class is constant (or
    undriven) are removed too — the caller must arbitrate that variant
    with a probe, since it shrinks the observable surface.
    """
    index = module.net_index()
    port_source = {
        index.canonical(SigBit(wire, offset))
        for wire in module.wires.values() if wire.port_input
        for offset in range(wire.width)
    }

    referenced: set = set()
    for cell in module.cells.values():
        for spec in cell.connections.values():
            for bit in spec:
                if not bit.is_const:
                    referenced.add(bit.wire.name)
    for inst in module.instances.values():
        for spec in inst.connections.values():
            for bit in spec:
                if not bit.is_const:
                    referenced.add(bit.wire.name)
    # alias chains: a pair column whose lhs survives re-declares its rhs
    # wire, which may itself be the lhs of another pair (the Verilog
    # frontend routes outputs through intermediate alias wires no cell
    # ever references) — close transitively or the rebuilt chain dangles.
    # Columns whose rhs class is constant are rewritten to the constant
    # below, so they keep nothing alive.
    grew = True
    while grew:
        grew = False
        for lhs, rhs in module.connections:
            for l, r in zip(lhs, rhs):
                if l.is_const or r.is_const:
                    continue
                if index.canonical(r).is_const:
                    continue
                alive = (l.wire.name in referenced
                         or l.wire.port_input or l.wire.port_output)
                if alive and r.wire.name not in referenced:
                    referenced.add(r.wire.name)
                    grew = True

    def dead_port(wire) -> bool:
        """Nothing references the wire literally and no bit is live.

        A const-tied bit counts as dead here: the tie pair itself is
        not a use, so an unreferenced input whose bits were all
        constified by the reducer disappears along with its ties.
        """
        if wire.name in referenced:
            return False
        for offset in range(wire.width):
            bit = SigBit(wire, offset)
            canon = index.canonical(bit)
            if canon.is_const:
                continue
            if index.driver_cell(canon) is not None:
                return False
            if index.fanout_count(bit) > 0 or index.is_output_bit(bit):
                return False
        return True

    def droppable_output(wire) -> bool:
        """Output whose whole class is constant or undriven: it reads
        the same before and after any flow, so it cannot witness the
        failure — but dropping observables needs a probe to confirm."""
        if wire.name in referenced:
            return False
        for offset in range(wire.width):
            canon = index.canonical(SigBit(wire, offset))
            if not canon.is_const and index.driver_cell(canon) is not None:
                return False
        return True

    def promotable(wire) -> bool:
        """Internal wire whose every bit is an undriven non-port source."""
        for offset in range(wire.width):
            canon = index.canonical(SigBit(wire, offset))
            if canon.is_const or canon in port_source:
                return False
            if index.driver_cell(canon) is not None:
                return False
        return True

    out = Module(module.name)
    wire_map: Dict[str, Any] = {}
    counters = {"i": 0, "o": 0, "n": 0, "c": 0}

    def fresh(prefix: str) -> str:
        name = f"{prefix}{counters[prefix]}"
        counters[prefix] += 1
        return name

    for wire in module.wires.values():
        if not (wire.port_input or wire.port_output):
            continue
        if not keep_ports and dead_port(wire):
            continue  # unread, untied, unobservable port: drop it
        if (drop_const_outputs and not keep_ports and wire.port_output
                and not wire.port_input and droppable_output(wire)):
            continue
        name = wire.name if keep_ports else (
            fresh("o") if wire.port_output else fresh("i")
        )
        copy = out.add_wire(name, wire.width, wire.port_input,
                            wire.port_output)
        copy.attributes = dict(wire.attributes)
        wire_map[wire.name] = copy

    def xwire(wire):
        copy = wire_map.get(wire.name)
        if copy is None:
            promote = not keep_ports and promotable(wire)
            copy = out.add_wire(fresh("i") if promote else fresh("n"),
                                wire.width, port_input=promote)
            copy.attributes = dict(wire.attributes)
            wire_map[wire.name] = copy
        return copy

    def xspec(spec: SigSpec) -> SigSpec:
        return SigSpec(
            bit if bit.is_const else SigBit(xwire(bit.wire), bit.offset)
            for bit in spec
        )

    try:
        order = [c.name for c in index.topo_cells()]
    except (CombLoopError, DriverConflictError):
        order = []
    order += sorted(set(module.cells) - set(order))
    for cname in order:
        cell = module.cells[cname]
        copy = out.add_cell(
            cell.type, name=fresh("c"), width=cell.width, n=cell.n,
            **{p: xspec(s) for p, s in cell.connections.items()},
        )
        copy.attributes = dict(cell.attributes)
    for lhs, rhs in module.connections:
        cols = []
        for l, r in zip(lhs, rhs):
            if not (l.is_const or l.wire.name in wire_map
                    or l.wire.name in referenced):
                continue  # lhs wire was dropped and nothing reads it
            if not r.is_const:
                canon = index.canonical(r)
                if canon.is_const:
                    # the rhs wire may be a dropped tied port; bind the
                    # class value directly instead of resurrecting it
                    r = canon
            cols.append((l, r))
        if cols:
            out.connect(
                SigSpec(xspec(SigSpec(l for l, _r in cols))),
                SigSpec(xspec(SigSpec(r for _l, r in cols))),
            )
    for inst in module.instances.values():
        copy_inst = out.add_instance(
            inst.module_name, inst.name,
            {p: xspec(s) for p, s in inst.connections.items()},
        )
        copy_inst.attributes = dict(inst.attributes)
    return out


# -- public helpers -----------------------------------------------------------


def reduce_module(module: Module, oracle: Oracle, *,
                  max_probes: int = 2000, rename: bool = True,
                  verify_index: bool = True,
                  on_progress: Optional[Callable[[str], None]] = None,
                  ) -> ReductionResult:
    """Shrink ``module`` while ``oracle`` keeps failing with the same label.

    Raises :class:`NotFailingError` when the input already passes.  The
    input is never mutated; the minimized case is ``result.module``.
    """
    reducer = DeltaReducer(
        oracle, max_probes=max_probes, rename=rename,
        verify_index=verify_index, on_progress=on_progress,
    )
    return reducer.reduce_module(module)


def reduce_design(design: Design, oracle: Oracle, *,
                  max_probes: int = 2000, rename: bool = True,
                  verify_index: bool = True,
                  on_progress: Optional[Callable[[str], None]] = None,
                  ) -> ReductionResult:
    """Design-scope reduction: prune instances and unreferenced modules,
    then shrink each surviving module (see :func:`reduce_module`)."""
    reducer = DeltaReducer(
        oracle, max_probes=max_probes, rename=rename,
        verify_index=verify_index, on_progress=on_progress,
    )
    return reducer.reduce_design(design)


# -- repro artifacts ----------------------------------------------------------


def write_repro(directory: str, stem: str, target, *,
                meta: Optional[Dict[str, Any]] = None) -> Tuple[str, str]:
    """Write ``<stem>.v`` + self-describing ``<stem>.json`` under
    ``directory`` (created if needed) and return both paths.

    The JSON artifact embeds the full Yosys-JSON netlist plus whatever
    ``meta`` the caller records (oracle, flow, label, seed, ...), so one
    file reproduces the failure: :func:`load_repro` restores the design
    and the metadata needed to re-run the oracle.
    """
    from ..core.store import atomic_write_text
    from ..ir.json_writer import yosys_json_dict
    from ..ir.verilog_writer import verilog_str

    os.makedirs(directory, exist_ok=True)
    if isinstance(target, Design):
        modules = list(target)
        name = target.top_name
        cells = sum(len(m.cells) for m in modules)
    else:
        modules = [target]
        name = target.name
        cells = len(target.cells)
    payload: Dict[str, Any] = {"repro": 1, "name": name, "cells": cells}
    payload.update(meta or {})
    payload["netlist"] = yosys_json_dict(target)
    v_path = os.path.join(directory, f"{stem}.v")
    json_path = os.path.join(directory, f"{stem}.json")
    atomic_write_text(
        v_path, "\n".join(verilog_str(m) for m in modules)
    )
    atomic_write_text(
        json_path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return v_path, json_path


def load_repro(path: str) -> Tuple[Design, Dict[str, Any]]:
    """Load a ``.json`` repro artifact back into a Design plus its metadata."""
    from ..frontend.yosys_json import read_yosys_json

    with open(path) as handle:
        payload = json.load(handle)
    design = read_yosys_json(payload["netlist"])
    return design, payload


__all__ = [
    "DeltaReducer",
    "NotFailingError",
    "ReductionResult",
    "load_repro",
    "reduce_design",
    "reduce_module",
    "write_repro",
]
