"""Failure oracles: every differential fuzz lane as a pure predicate.

An oracle classifies a module (or design) with a single deterministic
``probe`` call::

    label = oracle.probe(target)   # "pass", or a failure label

``"pass"`` (:data:`PASS`) means the lane sees nothing wrong; any other
string names the failure mode (``"cec:counterexample"``,
``"divergence:area"``, ``"crash:KeyError"``, ...).  The reducer
(:mod:`repro.testing.reduce`) records the label of the original failing
case and only accepts shrunk candidates that fail with the *same* label
— "still fails" is never allowed to drift into "fails differently".

Probes never mutate their argument (each lane runs on private clones)
and never raise: unexpected exceptions become ``crash:<ExcType>``
labels, which makes crashes themselves reducible.

The registry mirrors the five differential lanes:

========== ========================================================
name        failure condition
========== ========================================================
cec         flow result not SAT-equivalent to the input (or undecided)
divergence  incremental and eager engines disagree on optimized area
seeded      seeded re-run area differs from an eager rerun after edits
roundtrip   Yosys-JSON ``read(write(m))`` changes the struct signature
crash       the flow raises at all
hier-cec    design scope: ``run_hierarchy`` result not CEC-equivalent
========== ========================================================
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from ..ir.cells import CellType
from ..ir.design import Design
from ..ir.module import Module
from ..ir.signals import SigSpec, const_bit

#: the label meaning "this case does not fail the oracle"
PASS = "pass"


def _crash_label(exc: BaseException) -> str:
    return f"crash:{type(exc).__name__}"


class Oracle:
    """Base interestingness predicate (see module docs for the protocol)."""

    #: registry key (subclasses override)
    name = "oracle"
    #: "module" or "design" — what :meth:`probe` expects
    scope = "module"
    #: one-line human description for CLI/docs listings
    description = ""

    def __init__(self, flow: str = "smartly", options=None):
        self.flow = flow
        self.options = options

    def probe(self, target) -> str:
        raise NotImplementedError

    def __call__(self, target) -> str:
        return self.probe(target)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(flow={self.flow!r})"

    # -- shared lane plumbing -------------------------------------------------

    def _session(self, target, engine: str = "incremental"):
        from ..flow.session import Session

        return Session(target, engine=engine, options=self.options)


ORACLES: Dict[str, type] = {}


def _register(cls: type) -> type:
    ORACLES[cls.name] = cls
    return cls


@_register
class CecOracle(Oracle):
    """The main lane: optimize a clone, SAT-compare against the input.

    ``undecided`` (conflict budget exhausted) is a distinct failure label
    from a concrete counterexample — the reducer will not shrink a
    mismatch into a timeout or vice versa.
    """

    name = "cec"
    description = "flow output not SAT-equivalent to the input module"

    def __init__(self, flow: str = "smartly", options=None,
                 random_vectors: int = 64,
                 max_conflicts: Optional[int] = None):
        super().__init__(flow, options)
        self.random_vectors = random_vectors
        self.max_conflicts = max_conflicts

    def probe(self, target: Module) -> str:
        from ..equiv.cec import check_equivalence

        work = target.clone()
        try:
            self._session(work).run(self.flow)
            result = check_equivalence(
                target, work,
                random_vectors=self.random_vectors,
                seed=0,
                max_conflicts=self.max_conflicts,
            )
        except Exception as exc:
            return _crash_label(exc)
        if result.undecided:
            return "cec:undecided"
        if not result.equivalent:
            return "cec:counterexample"
        return PASS


@_register
class DivergenceOracle(Oracle):
    """Eager-vs-incremental lane: both engines must reach the same area."""

    name = "divergence"
    description = "incremental and eager engines disagree on optimized area"

    def probe(self, target: Module) -> str:
        inc = target.clone()
        eag = target.clone()
        try:
            inc_report = self._session(inc, engine="incremental").run(self.flow)
            eag_report = self._session(eag, engine="eager").run(self.flow)
        except Exception as exc:
            return _crash_label(exc)
        if inc_report.optimized_area != eag_report.optimized_area:
            return "divergence:area"
        return PASS


def _plan_edits(module: Module, rng: random.Random, n: int = 3):
    """Name-addressed edit plans (the seeded-rerun lane's mutation menu)."""
    comb = [
        name for name in sorted(module.cells)
        if module.cells[name].is_combinational
        and "A" in module.cells[name].connections
    ]
    muxes = [
        name for name in comb
        if module.cells[name].type is CellType.MUX
    ]
    plans = []
    for _ in range(n):
        if muxes and rng.random() < 0.6:
            plans.append(("pin_s", rng.choice(muxes), rng.randint(0, 1)))
        elif comb:
            plans.append(("pin_a0", rng.choice(comb), rng.randint(0, 1)))
    return plans


def _apply_edits(module: Module, plans) -> int:
    """Replay plans through the notifying edit APIs (the supported path)."""
    applied = 0
    for kind, name, value in plans:
        cell = module.cells.get(name)
        if cell is None:
            continue
        if kind == "pin_s" and cell.type is CellType.MUX:
            cell.set_port("S", value)
            applied += 1
        elif kind == "pin_a0" and "A" in cell.connections:
            bits = list(cell.connections["A"])
            bits[0] = const_bit(value)
            cell.set_port("A", SigSpec(bits))
            applied += 1
    return applied


@_register
class SeededRerunOracle(Oracle):
    """Seeded-rerun lane: optimize, edit, and cross-check the session's
    seeded re-run against an eager full re-run from the identical edited
    state.  Edits are drawn deterministically from the module's own cell
    names (fixed rng seed), so the probe is a pure function of structure.
    """

    name = "seeded"
    description = "seeded incremental re-run diverges from an eager rerun"

    #: fixed plan seed — probes must be reproducible per candidate
    PLAN_SEED = 0x5EED

    def probe(self, target: Module) -> str:
        work = target.clone()
        try:
            session = self._session(work, engine="incremental")
            session.run(self.flow)
            twin = work.clone()
            plans = _plan_edits(work, random.Random(self.PLAN_SEED))
            if _apply_edits(work, plans) == 0:
                return PASS  # nothing to re-run incrementally
            _apply_edits(twin, plans)
            seeded = session.run(self.flow)
            full = self._session(twin, engine="eager").run(self.flow)
        except Exception as exc:
            return _crash_label(exc)
        if seeded.optimized_area != full.optimized_area:
            return "seeded:area"
        return PASS


@_register
class RoundtripOracle(Oracle):
    """Yosys-JSON lane: export + re-ingest must preserve the structural
    signature exactly (the exporter/reader pair may not rewrite anything).
    """

    name = "roundtrip"
    description = "Yosys-JSON write/read changes the structural signature"

    def probe(self, target: Module) -> str:
        from ..frontend.yosys_json import read_yosys_json
        from ..ir.json_writer import yosys_json_str
        from ..ir.struct_hash import module_signature

        try:
            restored = read_yosys_json(yosys_json_str(target)).top
            identical = (
                module_signature(restored) == module_signature(target)
            )
        except Exception as exc:
            return f"roundtrip:error:{type(exc).__name__}"
        return PASS if identical else "roundtrip:signature"


@_register
class CrashOracle(Oracle):
    """Exception-capture lane: the flow must complete at all."""

    name = "crash"
    description = "running the flow raises an exception"

    def probe(self, target: Module) -> str:
        work = target.clone()
        try:
            self._session(work).run(self.flow)
        except Exception as exc:
            return _crash_label(exc)
        return PASS


@_register
class HierCecOracle(Oracle):
    """Design scope: ``run_hierarchy`` over a clone, then CEC every module
    the run touched against the pre-optimization golden clone.

    Labels are deliberately name-free ("cec:counterexample", not
    "cec:counterexample:alu0"): pruning instances may move *which* module
    exhibits the bug without changing what the bug is.
    """

    name = "hier-cec"
    scope = "design"
    description = "hierarchical flow result not CEC-equivalent per module"

    def __init__(self, flow: str = "smartly", options=None,
                 random_vectors: int = 64,
                 max_conflicts: Optional[int] = None):
        super().__init__(flow, options)
        self.random_vectors = random_vectors
        self.max_conflicts = max_conflicts

    def probe(self, target: Design) -> str:
        from ..equiv.cec import check_equivalence

        golden = target.clone()
        work = target.clone()
        try:
            report = self._session(work).run_hierarchy(self.flow)
            for name in report.order:
                result = check_equivalence(
                    golden[name], work[name],
                    random_vectors=self.random_vectors,
                    seed=0,
                    max_conflicts=self.max_conflicts,
                )
                if result.undecided:
                    return "cec:undecided"
                if not result.equivalent:
                    return "cec:counterexample"
        except Exception as exc:
            return _crash_label(exc)
        return PASS


#: registered oracle names, stable order (see the table in the module docs)
ORACLE_NAMES = tuple(sorted(ORACLES))


def get_oracle(name: str, *, flow: str = "smartly", options=None,
               **kwargs) -> Oracle:
    """Instantiate a registered oracle by name.

    ``kwargs`` (``random_vectors``, ``max_conflicts``, ...) are forwarded
    when the oracle accepts them; unknown names raise ``ValueError`` with
    the available choices.
    """
    cls = ORACLES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown oracle {name!r}; choose from {', '.join(ORACLE_NAMES)}"
        )
    try:
        return cls(flow=flow, options=options, **kwargs)
    except TypeError:
        # oracle without tuning knobs (divergence/seeded/roundtrip/crash)
        return cls(flow=flow, options=options)


__all__ = [
    "PASS",
    "ORACLES",
    "ORACLE_NAMES",
    "Oracle",
    "CecOracle",
    "CrashOracle",
    "DivergenceOracle",
    "HierCecOracle",
    "RoundtripOracle",
    "SeededRerunOracle",
    "get_oracle",
]
