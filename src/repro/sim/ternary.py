"""Three-valued (0/1/x) logic primitives.

The optimization passes reason about *partially known* signals: a bit is
``0``, ``1`` or unknown ``x``.  These operators implement the standard
Kleene strong ternary semantics (e.g. ``0 AND x = 0``, ``1 OR x = 1``),
which is exactly what constant propagation and the paper's Table I
inference rules rely on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..ir.signals import State

S0, S1, Sx = State.S0, State.S1, State.Sx


def t_not(a: State) -> State:
    return ~a


def t_and(a: State, b: State) -> State:
    if a is S0 or b is S0:
        return S0
    if a is S1 and b is S1:
        return S1
    return Sx


def t_or(a: State, b: State) -> State:
    if a is S1 or b is S1:
        return S1
    if a is S0 and b is S0:
        return S0
    return Sx


def t_xor(a: State, b: State) -> State:
    if a is Sx or b is Sx:
        return Sx
    return State.from_bool(a is not b)


def t_xnor(a: State, b: State) -> State:
    return t_not(t_xor(a, b))


def t_mux(a: State, b: State, s: State) -> State:
    """``s ? b : a`` with x-propagation: unknown select yields x unless both
    data values agree."""
    if s is S0:
        return a
    if s is S1:
        return b
    if a is b and a is not Sx:
        return a
    return Sx


def t_reduce_and(bits: Iterable[State]) -> State:
    result = S1
    for bit in bits:
        result = t_and(result, bit)
    return result


def t_reduce_or(bits: Iterable[State]) -> State:
    result = S0
    for bit in bits:
        result = t_or(result, bit)
    return result


def t_reduce_xor(bits: Iterable[State]) -> State:
    result = S0
    for bit in bits:
        result = t_xor(result, bit)
    return result


def t_eq(a: List[State], b: List[State]) -> State:
    """Vector equality: 0 as soon as a defined bit pair differs, x if any
    undecided pair remains, else 1."""
    unknown = False
    for abit, bbit in zip(a, b):
        if abit is Sx or bbit is Sx:
            unknown = True
        elif abit is not bbit:
            return S0
    return Sx if unknown else S1


def t_lt(a: List[State], b: List[State]) -> State:
    """Unsigned vector less-than; x when the comparison is undecided."""
    # compare from MSB down
    for abit, bbit in zip(reversed(a), reversed(b)):
        if abit is Sx or bbit is Sx:
            return Sx
        if abit is not bbit:
            return State.from_bool(abit is S0)
    return S0


def t_add(a: List[State], b: List[State], carry_in: State = S0) -> List[State]:
    """Ripple-carry addition over ternary vectors (LSB first)."""
    result: List[State] = []
    carry = carry_in
    for abit, bbit in zip(a, b):
        s = t_xor(t_xor(abit, bbit), carry)
        carry = t_or(t_and(abit, bbit), t_and(carry, t_xor(abit, bbit)))
        result.append(s)
    return result


def to_states(value: int, width: int) -> List[State]:
    """Integer -> LSB-first defined state vector."""
    return [State.from_bool((value >> i) & 1 == 1) for i in range(width)]


def from_states(states: Iterable[State]) -> Optional[int]:
    """LSB-first state vector -> int, or None if any bit is x."""
    value = 0
    for i, state in enumerate(states):
        if state is Sx:
            return None
        if state is S1:
            value |= 1 << i
    return value
