"""Three-valued and bit-parallel combinational simulation."""

from .eval import eval_cell_masks, eval_cell_ternary
from .simulator import Simulator, exhaustive_patterns
from .ternary import (
    from_states,
    t_add,
    t_and,
    t_eq,
    t_lt,
    t_mux,
    t_not,
    t_or,
    t_reduce_and,
    t_reduce_or,
    t_reduce_xor,
    t_xnor,
    t_xor,
    to_states,
)

__all__ = [
    "Simulator",
    "eval_cell_masks",
    "eval_cell_ternary",
    "exhaustive_patterns",
    "from_states",
    "t_add",
    "t_and",
    "t_eq",
    "t_lt",
    "t_mux",
    "t_not",
    "t_or",
    "t_reduce_and",
    "t_reduce_or",
    "t_reduce_xor",
    "t_xnor",
    "t_xor",
    "to_states",
]
