"""Module-level combinational simulation.

:class:`Simulator` snapshots a module (via :class:`~repro.ir.walker.NetIndex`)
and evaluates it in topological order.  Three entry points:

* :meth:`Simulator.run` — integers in, integers out (the convenient API);
* :meth:`Simulator.run_states` — ternary 0/1/x simulation from a partial
  assignment (unassigned sources default to ``x``);
* :meth:`Simulator.run_masks` — bit-parallel simulation of ``nvec`` vectors
  at once, the workhorse for random and exhaustive simulation.

Sequential cells: dff ``Q`` outputs are treated as additional sources; their
values can be supplied through the same input dictionaries (keyed by the
``Q`` wire names), which is how the tests drive state-holding circuits.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ir.cells import CellType, input_ports, output_ports
from ..ir.module import Cell, Module
from ..ir.signals import SigBit, SigSpec, State
from ..ir.walker import NetIndex
from .eval import eval_cell_masks, eval_cell_ternary


class Simulator:
    """Reusable combinational simulator for one module snapshot."""

    def __init__(self, module: Module, index: Optional[NetIndex] = None):
        self.module = module
        self.index = index if index is not None else NetIndex(module)
        self._topo = self.index.topo_cells()

    # -- source enumeration ----------------------------------------------------

    def source_bits(self) -> List[SigBit]:
        """All non-constant source bits: inputs, dff outputs, undriven wires."""
        seen = set()
        sources: List[SigBit] = []
        sigmap = self.index.sigmap

        def visit(bit: SigBit) -> None:
            cbit = sigmap.map_bit(bit)
            if cbit.is_const or cbit in seen:
                return
            if self.index.comb_driver(cbit) is None:
                seen.add(cbit)
                sources.append(cbit)

        for wire in self.module.wires.values():
            if wire.port_input:
                for i in range(wire.width):
                    visit(SigBit(wire, i))
        for cell in self.module.cells.values():
            if cell.type is CellType.DFF:
                for bit in cell.connections["Q"]:
                    visit(bit)
            for bit in cell.input_bits():
                visit(bit)
        for wire in self.module.wires.values():
            if wire.port_output:
                for i in range(wire.width):
                    visit(SigBit(wire, i))
        return sources

    # -- ternary simulation ------------------------------------------------------

    def run_states(
        self, assignment: Mapping[SigBit, State]
    ) -> Dict[SigBit, State]:
        """Ternary-simulate from a (possibly partial) source assignment.

        Keys of ``assignment`` are canonicalised; missing sources are ``x``.
        The returned map holds a state for every canonical bit encountered.
        """
        sigmap = self.index.sigmap
        values: Dict[SigBit, State] = {}
        for bit, state in assignment.items():
            values[sigmap.map_bit(bit)] = state

        def bit_value(bit: SigBit) -> State:
            cbit = sigmap.map_bit(bit)
            if cbit.is_const:
                return cbit.state
            return values.get(cbit, State.Sx)

        for cell in self._topo:
            inputs = {
                p: [bit_value(b) for b in cell.connections[p]]
                for p in input_ports(cell.type)
            }
            outputs = eval_cell_ternary(cell, inputs)
            for pname, states in outputs.items():
                for bit, state in zip(cell.connections[pname], states):
                    values[sigmap.map_bit(bit)] = state
        return values

    def spec_states(
        self, spec: SigSpec, values: Mapping[SigBit, State]
    ) -> List[State]:
        """Read a SigSpec out of a ``run_states`` result."""
        sigmap = self.index.sigmap
        result = []
        for bit in spec:
            cbit = sigmap.map_bit(bit)
            if cbit.is_const:
                result.append(cbit.state)
            else:
                result.append(values.get(cbit, State.Sx))
        return result

    # -- integer convenience API ----------------------------------------------------

    def run(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Simulate with integer port values; returns integer output values.

        Unassigned inputs (and dff state) default to 0.  Raises if an output
        is x, which cannot happen when all sources are defined.
        """
        assignment: Dict[SigBit, State] = {}
        for name, value in inputs.items():
            wire = self.module.wires[name]
            for i in range(wire.width):
                assignment[SigBit(wire, i)] = State.from_bool((value >> i) & 1 == 1)
        for bit in self.source_bits():
            assignment.setdefault(bit, State.S0)
        values = self.run_states(assignment)
        result: Dict[str, int] = {}
        for wire in self.module.outputs:
            states = self.spec_states(SigSpec.from_wire(wire), values)
            value = 0
            for i, state in enumerate(states):
                if state is State.Sx:
                    raise ValueError(
                        f"output {wire.name}[{i}] is x under a full assignment"
                    )
                if state is State.S1:
                    value |= 1 << i
            result[wire.name] = value
        return result

    # -- bit-parallel mask simulation --------------------------------------------------

    def run_masks(
        self, source_masks: Mapping[SigBit, int], nvec: int
    ) -> Dict[SigBit, int]:
        """Simulate ``nvec`` vectors in parallel.

        ``source_masks`` assigns each source bit an integer whose bit *v* is
        the source's value in vector *v*.  Missing sources are 0 in every
        vector.  Returns a mask for every canonical bit.
        """
        mask = (1 << nvec) - 1
        sigmap = self.index.sigmap
        values: Dict[SigBit, int] = {}
        for bit, m in source_masks.items():
            values[sigmap.map_bit(bit)] = m & mask

        def bit_value(bit: SigBit) -> int:
            cbit = sigmap.map_bit(bit)
            if cbit.is_const:
                if cbit.state is State.S1:
                    return mask
                return 0  # x sources simulate as 0
            return values.get(cbit, 0)

        for cell in self._topo:
            inputs = {
                p: [bit_value(b) for b in cell.connections[p]]
                for p in input_ports(cell.type)
            }
            outputs = eval_cell_masks(cell, inputs, mask)
            for pname, masks in outputs.items():
                for bit, m in zip(cell.connections[pname], masks):
                    values[sigmap.map_bit(bit)] = m
        return values

    def random_masks(
        self, nvec: int = 64, seed: int = 0
    ) -> Tuple[Dict[SigBit, int], Dict[SigBit, int]]:
        """Random-vector simulation: returns (source_masks, all_values)."""
        rng = random.Random(seed)
        mask = (1 << nvec) - 1
        source_masks = {bit: rng.getrandbits(nvec) & mask for bit in self.source_bits()}
        return source_masks, self.run_masks(source_masks, nvec)


def exhaustive_patterns(bits: Sequence[SigBit]) -> Tuple[Dict[SigBit, int], int]:
    """Canonical exhaustive input patterns for a small set of source bits.

    Bit *i* receives the mask whose vector-v value is bit i of v, so the
    ``2**len(bits)`` parallel vectors enumerate every input combination.
    Returns ``(masks, nvec)``.
    """
    n = len(bits)
    nvec = 1 << n
    masks: Dict[SigBit, int] = {}
    for i, bit in enumerate(bits):
        period = 1 << i
        # pattern: period zeros, period ones, repeated
        block = ((1 << period) - 1) << period
        pattern = 0
        for start in range(0, nvec, 2 * period):
            pattern |= block << start
        masks[bit] = pattern & ((1 << nvec) - 1)
    return masks, nvec
