"""Cell evaluators in two value domains — thin registry delegations.

* **Ternary**: each bit is a :class:`~repro.ir.signals.State` (0/1/x).  Used
  by constant propagation, the inference engine and x-aware simulation.
* **Mask**: each bit carries a Python integer bitmask holding the bit's value
  across ``nvec`` simulation vectors in parallel.  With ``nvec = 2**k`` and
  canonical input patterns this gives *exhaustive* simulation of a k-input
  cone using plain bitwise arithmetic — the "simulation" arm of the paper's
  sim-vs-SAT switch.

The actual per-cell semantics live in the unified cell-semantics registry
(:mod:`repro.ir.celllib`) shared with AIG lowering and validation; these
wrappers only dispatch, so the three soundness substrates cannot diverge.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir import celllib
from ..ir.module import Cell
from ..ir.signals import State

TernaryVec = List[State]
MaskVec = List[int]


def eval_cell_ternary(cell: Cell, inputs: Dict[str, TernaryVec]) -> Dict[str, TernaryVec]:
    """Evaluate one combinational cell over ternary input vectors.

    ``inputs`` maps input port names to LSB-first state lists; the result
    maps output port names the same way.
    """
    evaluator = celllib.spec_for(cell.type).eval_ternary
    if evaluator is None:
        raise NotImplementedError(f"no ternary evaluator for cell type {cell.type}")
    return evaluator(cell, inputs)


def eval_cell_masks(
    cell: Cell, inputs: Dict[str, MaskVec], mask: int
) -> Dict[str, MaskVec]:
    """Evaluate one cell bit-parallel over ``nvec`` vectors.

    Every list entry is an integer whose bit *v* is the value of that signal
    bit in vector *v*; ``mask`` is ``(1 << nvec) - 1``.
    """
    evaluator = celllib.spec_for(cell.type).eval_masks
    if evaluator is None:
        raise NotImplementedError(f"no mask evaluator for cell type {cell.type}")
    return evaluator(cell, inputs, mask)
