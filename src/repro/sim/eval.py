"""Cell evaluators in two value domains.

* **Ternary**: each bit is a :class:`~repro.ir.signals.State` (0/1/x).  Used
  by constant propagation, the inference engine and x-aware simulation.
* **Mask**: each bit carries a Python integer bitmask holding the bit's value
  across ``nvec`` simulation vectors in parallel.  With ``nvec = 2**k`` and
  canonical input patterns this gives *exhaustive* simulation of a k-input
  cone using plain bitwise arithmetic — the "simulation" arm of the paper's
  sim-vs-SAT switch.

PMUX semantics (shared with aigmap and the Tseitin encoder): the select is
treated as a *priority* select — the lowest set bit of ``S`` wins, ``Y = A``
when ``S == 0``.  For the one-hot selects produced by case elaboration this
coincides with the Yosys one-hot semantics while staying fully defined.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.cells import CellType
from ..ir.module import Cell
from ..ir.signals import State
from .ternary import (
    S0,
    S1,
    Sx,
    t_add,
    t_and,
    t_eq,
    t_lt,
    t_mux,
    t_not,
    t_or,
    t_reduce_and,
    t_reduce_or,
    t_reduce_xor,
    t_xnor,
    t_xor,
)

TernaryVec = List[State]


def eval_cell_ternary(cell: Cell, inputs: Dict[str, TernaryVec]) -> Dict[str, TernaryVec]:
    """Evaluate one combinational cell over ternary input vectors.

    ``inputs`` maps input port names to LSB-first state lists; the result
    maps output port names the same way.
    """
    t = cell.type
    width = cell.width

    if t is CellType.NOT:
        return {"Y": [t_not(b) for b in inputs["A"]]}
    if t is CellType.AND:
        return {"Y": [t_and(a, b) for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.OR:
        return {"Y": [t_or(a, b) for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.XOR:
        return {"Y": [t_xor(a, b) for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.XNOR:
        return {"Y": [t_xnor(a, b) for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.NAND:
        return {"Y": [t_not(t_and(a, b)) for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.NOR:
        return {"Y": [t_not(t_or(a, b)) for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.MUX:
        s = inputs["S"][0]
        return {"Y": [t_mux(a, b, s) for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.PMUX:
        result = list(inputs["A"])
        b = inputs["B"]
        # lowest-index select bit has priority: apply from high index down
        for i in range(cell.n - 1, -1, -1):
            s = inputs["S"][i]
            branch = b[i * width:(i + 1) * width]
            result = [t_mux(y, d, s) for y, d in zip(result, branch)]
        return {"Y": result}
    if t is CellType.EQ:
        return {"Y": [t_eq(inputs["A"], inputs["B"])]}
    if t is CellType.NE:
        return {"Y": [t_not(t_eq(inputs["A"], inputs["B"]))]}
    if t is CellType.LT:
        return {"Y": [t_lt(inputs["A"], inputs["B"])]}
    if t is CellType.LE:
        return {"Y": [t_not(t_lt(inputs["B"], inputs["A"]))]}
    if t is CellType.ADD:
        return {"Y": t_add(inputs["A"], inputs["B"])}
    if t is CellType.SUB:
        # A - B = A + ~B + 1
        return {"Y": t_add(inputs["A"], [t_not(b) for b in inputs["B"]], carry_in=S1)}
    if t in (CellType.SHL, CellType.SHR):
        return {"Y": _ternary_shift(inputs["A"], inputs["B"], left=t is CellType.SHL)}
    if t is CellType.REDUCE_AND:
        return {"Y": [t_reduce_and(inputs["A"])]}
    if t is CellType.REDUCE_OR:
        return {"Y": [t_reduce_or(inputs["A"])]}
    if t is CellType.REDUCE_XOR:
        return {"Y": [t_reduce_xor(inputs["A"])]}
    if t is CellType.REDUCE_BOOL:
        return {"Y": [t_reduce_or(inputs["A"])]}
    if t is CellType.LOGIC_NOT:
        return {"Y": [t_not(t_reduce_or(inputs["A"]))]}
    if t is CellType.LOGIC_AND:
        return {"Y": [t_and(t_reduce_or(inputs["A"]), t_reduce_or(inputs["B"]))]}
    if t is CellType.LOGIC_OR:
        return {"Y": [t_or(t_reduce_or(inputs["A"]), t_reduce_or(inputs["B"]))]}
    raise NotImplementedError(f"no ternary evaluator for cell type {t}")


def _ternary_shift(a: TernaryVec, b: TernaryVec, left: bool) -> TernaryVec:
    """Barrel shifter in the ternary domain (mux ladder over shift bits)."""
    width = len(a)
    result = list(a)
    for j, sbit in enumerate(b):
        amount = 1 << j
        if amount >= width:
            shifted = [S0] * width
        elif left:
            shifted = [S0] * amount + result[: width - amount]
        else:
            shifted = result[amount:] + [S0] * amount
        result = [t_mux(r, s, sbit) for r, s in zip(result, shifted)]
    return result


MaskVec = List[int]


def eval_cell_masks(
    cell: Cell, inputs: Dict[str, MaskVec], mask: int
) -> Dict[str, MaskVec]:
    """Evaluate one cell bit-parallel over ``nvec`` vectors.

    Every list entry is an integer whose bit *v* is the value of that signal
    bit in vector *v*; ``mask`` is ``(1 << nvec) - 1``.
    """
    t = cell.type
    width = cell.width

    if t is CellType.NOT:
        return {"Y": [~a & mask for a in inputs["A"]]}
    if t is CellType.AND:
        return {"Y": [a & b for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.OR:
        return {"Y": [a | b for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.XOR:
        return {"Y": [a ^ b for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.XNOR:
        return {"Y": [~(a ^ b) & mask for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.NAND:
        return {"Y": [~(a & b) & mask for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.NOR:
        return {"Y": [~(a | b) & mask for a, b in zip(inputs["A"], inputs["B"])]}
    if t is CellType.MUX:
        s = inputs["S"][0]
        return {
            "Y": [(a & ~s | b & s) & mask for a, b in zip(inputs["A"], inputs["B"])]
        }
    if t is CellType.PMUX:
        result = list(inputs["A"])
        b = inputs["B"]
        for i in range(cell.n - 1, -1, -1):
            s = inputs["S"][i]
            branch = b[i * width:(i + 1) * width]
            result = [(y & ~s | d & s) & mask for y, d in zip(result, branch)]
        return {"Y": result}
    if t is CellType.EQ:
        return {"Y": [_mask_eq(inputs["A"], inputs["B"], mask)]}
    if t is CellType.NE:
        return {"Y": [~_mask_eq(inputs["A"], inputs["B"], mask) & mask]}
    if t is CellType.LT:
        return {"Y": [_mask_lt(inputs["A"], inputs["B"], mask)]}
    if t is CellType.LE:
        return {"Y": [~_mask_lt(inputs["B"], inputs["A"], mask) & mask]}
    if t is CellType.ADD:
        return {"Y": _mask_add(inputs["A"], inputs["B"], 0, mask)}
    if t is CellType.SUB:
        return {"Y": _mask_add(inputs["A"], [~b & mask for b in inputs["B"]], mask, mask)}
    if t in (CellType.SHL, CellType.SHR):
        return {"Y": _mask_shift(inputs["A"], inputs["B"], mask, left=t is CellType.SHL)}
    if t is CellType.REDUCE_AND:
        acc = mask
        for a in inputs["A"]:
            acc &= a
        return {"Y": [acc]}
    if t in (CellType.REDUCE_OR, CellType.REDUCE_BOOL):
        acc = 0
        for a in inputs["A"]:
            acc |= a
        return {"Y": [acc]}
    if t is CellType.REDUCE_XOR:
        acc = 0
        for a in inputs["A"]:
            acc ^= a
        return {"Y": [acc]}
    if t is CellType.LOGIC_NOT:
        acc = 0
        for a in inputs["A"]:
            acc |= a
        return {"Y": [~acc & mask]}
    if t is CellType.LOGIC_AND:
        a_any, b_any = 0, 0
        for a in inputs["A"]:
            a_any |= a
        for b in inputs["B"]:
            b_any |= b
        return {"Y": [a_any & b_any]}
    if t is CellType.LOGIC_OR:
        a_any, b_any = 0, 0
        for a in inputs["A"]:
            a_any |= a
        for b in inputs["B"]:
            b_any |= b
        return {"Y": [a_any | b_any]}
    raise NotImplementedError(f"no mask evaluator for cell type {t}")


def _mask_eq(a: MaskVec, b: MaskVec, mask: int) -> int:
    acc = mask
    for abit, bbit in zip(a, b):
        acc &= ~(abit ^ bbit) & mask
    return acc


def _mask_lt(a: MaskVec, b: MaskVec, mask: int) -> int:
    """Unsigned a < b, scanning LSB -> MSB so the MSB decision dominates."""
    lt = 0
    for abit, bbit in zip(a, b):
        eq = ~(abit ^ bbit) & mask
        lt = (~abit & bbit) | (eq & lt)
    return lt & mask


def _mask_add(a: MaskVec, b: MaskVec, carry: int, mask: int) -> MaskVec:
    result: MaskVec = []
    for abit, bbit in zip(a, b):
        s = abit ^ bbit ^ carry
        carry = (abit & bbit) | (carry & (abit ^ bbit))
        result.append(s & mask)
    return result


def _mask_shift(a: MaskVec, b: MaskVec, mask: int, left: bool) -> MaskVec:
    width = len(a)
    result = list(a)
    for j, sbit in enumerate(b):
        amount = 1 << j
        if amount >= width:
            shifted = [0] * width
        elif left:
            shifted = [0] * amount + result[: width - amount]
        else:
            shifted = result[amount:] + [0] * amount
        result = [(r & ~sbit | s & sbit) & mask for r, s in zip(result, shifted)]
    return result
