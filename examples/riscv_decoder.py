#!/usr/bin/env python3
"""A RISC-V-flavoured ALU/decoder written in Verilog, optimized end to end.

Decoders are the circuits the paper's ``riscv`` benchmark row represents:
wide case statements over opcode/funct fields with heavily shared
right-hand sides.  The example compiles the Verilog, runs the full smaRTLy
pipeline, and reports the per-pass effect.

Run:  python examples/riscv_decoder.py
"""

from repro.aig import aig_map, aig_stats
from repro.core import run_smartly
from repro.equiv import check_equivalence
from repro.frontend import compile_verilog
from repro.opt import run_baseline_opt

DECODER = """
module rv_alu_decoder(
    input  [6:0] opcode,
    input  [2:0] funct3,
    input        funct7b5,
    input  [7:0] rs1, rs2, imm,
    output reg [7:0] result,
    output reg       use_imm
);
  reg [7:0] operand_b;
  reg [3:0] alu_op;

  always @* begin
    // operand select: several opcodes share the immediate path
    case (opcode)
      7'b0010011: use_imm = 1;   // OP-IMM
      7'b0000011: use_imm = 1;   // LOAD
      7'b0100011: use_imm = 1;   // STORE
      7'b1100111: use_imm = 1;   // JALR
      default:    use_imm = 0;
    endcase
    operand_b = use_imm ? imm : rs2;

    // ALU operation: funct3 decodes to few distinct ops
    casez ({funct7b5, funct3})
      4'b0000: alu_op = 4'd0;   // ADD
      4'b1000: alu_op = 4'd1;   // SUB
      4'b0111: alu_op = 4'd2;   // AND
      4'b0110: alu_op = 4'd3;   // OR
      4'b0100: alu_op = 4'd4;   // XOR
      4'b0010: alu_op = 4'd5;   // SLT
      default: alu_op = 4'd0;
    endcase

    case (alu_op)
      4'd0: result = rs1 + operand_b;
      4'd1: result = rs1 - operand_b;
      4'd2: result = rs1 & operand_b;
      4'd3: result = rs1 | operand_b;
      4'd4: result = rs1 ^ operand_b;
      4'd5: result = {7'b0, rs1 < operand_b};
      default: result = rs1;
    endcase
  end
endmodule
"""


def main():
    module = compile_verilog(DECODER).top
    golden = module.clone()
    print(f"elaborated cells: {module.stats()}")
    print(f"original        : {aig_stats(aig_map(module.clone()))}")

    baseline = module.clone()
    run_baseline_opt(baseline)
    print(f"Yosys baseline  : {aig_stats(aig_map(baseline))}")

    run_smartly(module)
    print(f"smaRTLy         : {aig_stats(aig_map(module))}")

    result = check_equivalence(golden, module)
    assert result.equivalent, result.counterexample
    print("equivalence     : PASSED")

    yosys_area = aig_map(baseline).num_ands
    smartly_area = aig_map(module).num_ands
    if yosys_area:
        print(f"extra reduction : "
              f"{100 * (yosys_area - smartly_area) / yosys_area:.2f}% vs Yosys")


if __name__ == "__main__":
    main()
