#!/usr/bin/env python3
"""The paper's Listings 1 & 2: case statements restructured through an ADD.

Shows the Figure 5 chain produced by elaboration, the ADD the restructurer
builds (including the variable-order scores from the paper), and the
Figure 7 result: three muxes, zero eq gates.

Run:  python examples/case_restructuring.py
"""

from repro.aig import aig_map
from repro.core import ADD, MuxtreeRestructure, case_table, run_smartly
from repro.equiv import check_equivalence
from repro.frontend import compile_verilog
from repro.opt import OptClean

LISTING1 = """
module listing1(input [1:0] S, input [7:0] p0, p1, p2, p3,
                output reg [7:0] Y);
  always @* begin
    case (S)
      2'b00: Y = p0;
      2'b01: Y = p1;
      2'b10: Y = p2;
      default: Y = p3;
    endcase
  end
endmodule
"""

LISTING2 = """
module listing2(input [2:0] S, input [3:0] p0, p1, p2, p3,
                output reg [3:0] Y);
  always @* begin
    casez (S)
      3'b1zz: Y = p0;
      3'b01z: Y = p1;
      3'b001: Y = p2;
      default: Y = p3;
    endcase
  end
endmodule
"""


def show(title, module):
    stats = module.stats()
    area = aig_map(module.clone()).num_ands
    cells = {k: v for k, v in stats.items() if not k.startswith("_")}
    print(f"  {title:<28} {cells}  (AIG area {area})")


def main():
    print("Listing 1 — full case over a 2-bit selector")
    module = compile_verilog(LISTING1).top
    golden = module.clone()
    show("elaborated (Figure 5):", module)

    result = MuxtreeRestructure().run(module)
    OptClean().run(module)
    show("restructured (Figure 7):", module)
    print(f"  eq gates disconnected: {result.stats['eq_gates_disconnected']}, "
          f"muxes {result.stats['muxes_removed']} -> "
          f"{result.stats['muxes_added']}")
    assert check_equivalence(golden, module).equivalent
    print("  equivalence: PASSED\n")

    print("Listing 2 — casez priority patterns, variable-order heuristic")
    rows = [
        ({2: True}, "p0"),                      # 3'b1zz
        ({2: False, 1: True}, "p1"),            # 3'b01z
        ({2: False, 1: False, 0: True}, "p2"),  # 3'b001
    ]
    table = tuple(case_table(3, rows, default="p3"))
    for bit, label in ((2, "S2 (paper's good pick)"), (0, "S0 (poor pick)")):
        low, high = ADD._cofactors(table, bit)
        score = len(set(low)) + len(set(high))
        print(f"  split on {label:<24}: terminal score {score}")
    add = ADD(3, table)
    print(f"  greedy ADD: {add.num_internal_nodes} muxes "
          f"(root splits on S{add.root.var}), depth {add.depth()}")

    module = compile_verilog(LISTING2).top
    golden = module.clone()
    show("elaborated:", module)
    run_smartly(module)
    show("after smaRTLy:", module)
    assert check_equivalence(golden, module).equivalent
    print("  equivalence: PASSED")


if __name__ == "__main__":
    main()
