#!/usr/bin/env python3
"""SAT-based redundancy elimination on logically dependent controls.

Two scenarios the Yosys baseline cannot touch:

1. the paper's Figure 3 (``S ? ((S|R) ? A : B) : C``),
2. a crossbar port selector in the style of the industrial benchmark,
   where nested one-hot grant comparisons (including obfuscated
   ``!(gnt != k)`` forms) are dead under the outer grant.

Run:  python examples/dependent_controls.py
"""

from repro.aig import aig_map
from repro.core import SatRedundancy
from repro.equiv import check_equivalence
from repro.ir import Circuit, SigSpec
from repro.opt import OptClean, OptMuxtree


def figure3():
    c = Circuit("fig3")
    A, B, C = c.input("A", 8), c.input("B", 8), c.input("C", 8)
    S, R = c.input("S"), c.input("R")
    inner = c.mux(B, A, c.or_(S, R))
    c.output("Y", c.mux(C, inner, S))
    return c.module


def crossbar_port(n=4):
    """One output port of a crossbar: the grant selects a requester, and
    the per-requester data path re-checks the same grant in nested,
    syntactically different ways."""
    c = Circuit("crossbar_port")
    bits = max(2, (n - 1).bit_length())
    gnt = c.input("gnt", bits)
    lanes = [c.input(f"lane{i}", 8) for i in range(n)]
    idle = c.input("idle", 8)

    branches = []
    for i in range(n):
        grant_i = c.eq(gnt, SigSpec.from_const(i, bits))
        # nested re-check, obfuscated: !(gnt != i) and friends
        inner = c.pmux(
            idle,
            [
                (
                    c.logic_not(c.ne(gnt, SigSpec.from_const(j, bits))),
                    c.xor(lanes[j], SigSpec.from_const(0x5A + j, 8)),
                )
                for j in range(n)
            ],
        )
        branches.append((grant_i, inner))
    c.output("out", c.pmux(idle, branches))
    return c.module


def run(name, module):
    golden = module.clone()
    before = aig_map(module.clone()).num_ands

    baseline = module.clone()
    OptMuxtree().run(baseline)
    OptClean().run(baseline)
    baseline_area = aig_map(baseline).num_ands

    result = SatRedundancy().run(module)
    OptClean().run(module)
    after = aig_map(module).num_ands

    print(f"{name}:")
    print(f"  original AIG area      : {before}")
    print(f"  after Yosys opt_muxtree: {baseline_area}")
    print(f"  after smaRTLy SAT      : {after}")
    print(f"  muxes bypassed         : {result.stats.get('muxes_bypassed', 0)}")
    print(f"  values inferred        : "
          f"{result.stats.get('ctrl_inferred', 0)} by rules, "
          f"{result.stats.get('ctrl_sim_decided', 0)} by simulation, "
          f"{result.stats.get('ctrl_sat_decided', 0)} by SAT")
    dismissed = result.stats.get("subgraph_gates_before", 0)
    kept = result.stats.get("subgraph_gates_after", 0)
    if dismissed:
        print(f"  sub-graph reduction    : {dismissed} -> {kept} gates "
              f"({100 * (1 - kept / dismissed):.0f}% dismissed)")
    assert check_equivalence(golden, module).equivalent
    print("  equivalence            : PASSED\n")


def main():
    run("Figure 3 (S | R under S)", figure3())
    run("Crossbar port (industrial-style one-hot nesting)", crossbar_port())


if __name__ == "__main__":
    main()
