#!/usr/bin/env python3
"""Regenerate the paper's Tables II/III and the industrial summary.

Equivalent to ``smartly bench table2|table3|industrial`` but in one script:
one parallel ``Session.run_suite`` per table, structured progress events on
stderr, optional equivalence checking of every optimized netlist.

Run:  python examples/reproduce_tables.py [--check] [--fast] [--jobs N]
"""

import argparse
import sys

from repro.api import (
    PrintObserver,
    Session,
    render_industrial,
    render_table2,
    render_table3,
    suite_cases,
)
from repro.workloads import CASE_NAMES, build_case, build_industrial

FAST_CASES = ("wb_conmax", "wb_dma", "ac97_ctrl", "mem_ctrl")


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--check", action="store_true",
                        help="prove equivalence of every optimized netlist")
    parser.add_argument("--fast", action="store_true",
                        help="only run four representative cases")
    parser.add_argument("--skip-industrial", action="store_true")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="parallel suite workers (default: auto)")
    args = parser.parse_args(argv)

    session = Session()
    session.subscribe(PrintObserver(stream=sys.stderr))

    cases = FAST_CASES if args.fast else CASE_NAMES
    results = session.run_suite(
        suite_cases(cases, build_case),
        ("yosys", "smartly-sat", "smartly-rebuild", "smartly"),
        max_workers=args.jobs,
        check=args.check,
    )

    print()
    print("Table II — AIG area, measured vs paper")
    print(render_table2(results))
    print()
    print("Table III — per-technique reduction vs Yosys, measured | paper")
    print(render_table3(results))

    if not args.skip_industrial:
        industrial = session.run_suite(
            build_industrial(),
            ("yosys", "smartly"),
            max_workers=args.jobs,
            check=args.check,
        )
        print()
        print("Industrial benchmark (§IV-B)")
        print(render_industrial(industrial))


if __name__ == "__main__":
    main()
