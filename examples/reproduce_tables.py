#!/usr/bin/env python3
"""Regenerate the paper's Tables II/III and the industrial summary.

Equivalent to ``smartly bench table2|table3|industrial`` but in one script,
with optional equivalence checking of every optimized netlist.

Run:  python examples/reproduce_tables.py [--check] [--fast]
"""

import argparse
import sys
import time

from repro.flow import (
    render_industrial,
    render_table2,
    render_table3,
    run_flow,
)
from repro.workloads import CASE_NAMES, build_case, build_industrial

FAST_CASES = ("wb_conmax", "wb_dma", "ac97_ctrl", "mem_ctrl")


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--check", action="store_true",
                        help="prove equivalence of every optimized netlist")
    parser.add_argument("--fast", action="store_true",
                        help="only run four representative cases")
    parser.add_argument("--skip-industrial", action="store_true")
    args = parser.parse_args(argv)

    cases = FAST_CASES if args.fast else CASE_NAMES
    optimizers = ("yosys", "smartly-sat", "smartly-rebuild", "smartly")

    results = {}
    start = time.time()
    for name in cases:
        module = build_case(name)
        results[name] = {
            opt: run_flow(module, opt, check=args.check) for opt in optimizers
        }
        print(f"  {name}: done ({time.time() - start:.0f}s)", file=sys.stderr)

    print()
    print("Table II — AIG area, measured vs paper")
    print(render_table2(results))
    print()
    print("Table III — per-technique reduction vs Yosys, measured | paper")
    print(render_table3(results))

    if not args.skip_industrial:
        industrial = {}
        for name, module in build_industrial().items():
            industrial[name] = {
                opt: run_flow(module, opt, check=args.check)
                for opt in ("yosys", "smartly")
            }
            print(f"  {name}: done ({time.time() - start:.0f}s)",
                  file=sys.stderr)
        print()
        print("Industrial benchmark (§IV-B)")
        print(render_industrial(industrial))


if __name__ == "__main__":
    main()
