#!/usr/bin/env python3
"""Quickstart: build a netlist, optimize it with smaRTLy, verify, measure.

Run:  python examples/quickstart.py
"""

from repro.aig import aig_map, aig_stats
from repro.core import run_smartly
from repro.equiv import check_equivalence
from repro.ir import Circuit


def build_demo():
    """A small design with all three kinds of mux redundancy:

    * a case statement whose values repeat        (restructuring wins),
    * a mux guarded by ``S | R`` under ``S``       (SAT inference wins),
    * a mux chain reusing one control             (baseline-level win).
    """
    c = Circuit("quickstart")
    sel = c.input("sel", 2)
    S, R = c.input("S"), c.input("R")
    a, b, d = c.input("a", 8), c.input("b", 8), c.input("d", 8)

    # case (sel) 0: a; 1: b; 2: a; default: b  -- collapsible
    case_value = c.case_(sel, [(0, a), (1, b), (2, a)], b)

    # S ? ((S | R) ? a : b) : d   -- Figure 3 from the paper
    dependent = c.mux(d, c.mux(b, a, c.or_(S, R)), S)

    # S ? (S ? a : d) : b         -- Figure 1 from the paper
    nested = c.mux(b, c.mux(d, a, S), S)

    c.output("y", c.xor(c.xor(case_value, dependent), nested))
    return c.module


def main():
    module = build_demo()
    golden = module.clone()

    before = aig_stats(aig_map(module.clone()))
    print(f"before optimization : {before}")

    manager = run_smartly(module, verbose=False)
    after = aig_stats(aig_map(module))
    print(f"after  smaRTLy      : {after}")
    reduction = 100 * (1 - after.num_ands / before.num_ands)
    print(f"AIG area reduction  : {reduction:.1f}%")

    print("\npass statistics:")
    for key, value in sorted(manager.total_stats().items()):
        print(f"  {key:56s} {value}")

    result = check_equivalence(golden, module)
    assert result.equivalent, result.counterexample
    print("\nequivalence check   : PASSED "
          f"(method={result.method}, conflicts={result.sat_conflicts})")


if __name__ == "__main__":
    main()
