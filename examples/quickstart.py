#!/usr/bin/env python3
"""Quickstart: build a netlist, optimize it through the Session API, verify.

Shows the declarative surface: a ``Session`` owning the design, the
``smartly`` preset (and an equivalent explicit ``FlowSpec`` script), the
structured event channel, and the JSON-serializable ``RunReport``.

Run:  python examples/quickstart.py
"""

from repro.api import EventLog, FlowSpec, Session
from repro.ir import Circuit


def build_demo():
    """A small design with all three kinds of mux redundancy:

    * a case statement whose values repeat        (restructuring wins),
    * a mux guarded by ``S | R`` under ``S``       (SAT inference wins),
    * a mux chain reusing one control             (baseline-level win).
    """
    c = Circuit("quickstart")
    sel = c.input("sel", 2)
    S, R = c.input("S"), c.input("R")
    a, b, d = c.input("a", 8), c.input("b", 8), c.input("d", 8)

    # case (sel) 0: a; 1: b; 2: a; default: b  -- collapsible
    case_value = c.case_(sel, [(0, a), (1, b), (2, a)], b)

    # S ? ((S | R) ? a : b) : d   -- Figure 3 from the paper
    dependent = c.mux(d, c.mux(b, a, c.or_(S, R)), S)

    # S ? (S ? a : d) : b         -- Figure 1 from the paper
    nested = c.mux(b, c.mux(d, a, S), S)

    c.output("y", c.xor(c.xor(case_value, dependent), nested))
    return c.module


def main():
    # the "smartly" preset is exactly this script:
    spec = FlowSpec.parse(
        "fixpoint max_rounds=4; opt_expr; opt_merge; smartly; opt_clean"
    )
    print(f"flow script         : {spec}")

    session = Session(build_demo())
    log = session.subscribe(EventLog())

    # check=True SAT-proves the optimized netlist equivalent to the original
    report = session.run(spec, check=True)

    print(f"before optimization : {report.original_area} AND gates")
    print(f"after  smaRTLy      : {report.stats}")
    print(f"AIG area reduction  : {100 * report.reduction_vs_original:.1f}%")
    print(f"converged in        : {report.rounds} round(s)")

    print("\npass statistics:")
    for key, value in sorted(report.pass_stats.items()):
        print(f"  {key:56s} {value}")

    finished = log.of_kind("pass_finished")
    print(f"\nstructured events   : {len(log)} total, "
          f"{len(finished)} pass_finished")
    print(f"equivalence check   : "
          f"{'PASSED' if report.equivalence_checked else 'SKIPPED'}")

    # reports serialize cleanly for dashboards / CI artifacts
    print(f"report JSON bytes   : {len(report.to_json())}")


if __name__ == "__main__":
    main()
