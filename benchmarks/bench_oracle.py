"""Incremental SAT oracle vs fresh-solver-per-query on the paper suites.

Two claims, both load-bearing for the oracle rewire:

1. **Transparency** — every flow preset produces byte-identical final
   areas with the oracle on and off, on the Table II cases (the oracle is
   a pure acceleration, never a behavioural change);
2. **Speed** — with the sub-graph ladder forced onto SAT
   (``sim_threshold=0``), the redundancy-phase SAT wall-clock over the
   whole suite drops by at least 25% (measured ~45%: fixpoint rounds
   re-ask every undecided control query, and rounds 2+ answer from the
   verdict cache).

The speed claim is measured on the **eager** engine, where every fixpoint
round re-sweeps the whole module and re-poses every query — the repeat
profile the oracle caches exist for.  The incremental dirty-set engine
(the session default) skips converged regions at a higher level, so it
avoids most repeat queries before they reach the oracle; the two
accelerations overlap, and the oracle's incremental-engine margin is
correspondingly smaller (~10-15%).
"""

import pytest

from repro.api import Session
from repro.core.smartly import SmartlyOptions
from repro.flow.spec import PRESET_NAMES
from repro.workloads import CASE_NAMES

from conftest import get_module

#: flows whose pipelines contain the SAT stage at all
SAT_FLOWS = ("smartly-sat", "smartly")


def _run(case, flow, use_oracle, sim_threshold=None, engine="incremental"):
    options = SmartlyOptions(use_oracle=use_oracle)
    if sim_threshold is not None:
        options = SmartlyOptions(use_oracle=use_oracle,
                                 sim_threshold=sim_threshold)
    return Session(get_module(case).clone(), options=options,
                   engine=engine).run(flow)


@pytest.mark.parametrize("case", CASE_NAMES)
@pytest.mark.parametrize("flow", PRESET_NAMES)
def test_oracle_preserves_preset_areas(case, flow):
    """Byte-identical Table II/III results with and without the oracle."""
    fresh = _run(case, flow, use_oracle=False)
    oracle = _run(case, flow, use_oracle=True)
    assert oracle.optimized_area == fresh.optimized_area, (case, flow)
    assert oracle.original_area == fresh.original_area
    if flow in SAT_FLOWS:
        # the oracle run must actually have gone through the oracle when
        # any SAT query was posed at all
        posed = oracle.pass_stats.get("smartly.smartly_sat.sat_queries", 0)
        assert (oracle.oracle_stats.get("queries", 0) > 0) == (posed > 0)
        assert not fresh.oracle_stats


def test_oracle_sat_wallclock_reduction(benchmark, table_report):
    """>= 25% less redundancy-phase SAT wall-clock across the suite."""

    def measure_once(use_oracle):
        total_us = 0
        per_case = {}
        counters = {}
        for case in CASE_NAMES:
            # eager engine: whole-module re-ask rounds, the oracle's target
            report = _run(case, "smartly-sat", use_oracle, sim_threshold=0,
                          engine="eager")
            us = report.pass_stats.get(
                "smartly.smartly_sat.sat_wallclock_us", 0
            )
            per_case[case] = (us, report.optimized_area)
            total_us += us
            for key, value in report.oracle_stats.items():
                counters[key] = counters.get(key, 0) + value
        return total_us, per_case, counters

    def measure(use_oracle):
        # best-of-2: wall-clock inside a shared pytest session is noisy,
        # and the noise only ever inflates
        first = measure_once(use_oracle)
        second = measure_once(use_oracle)
        return min(first, second, key=lambda r: r[0])

    fresh_us, fresh_cases, _ = measure(False)
    oracle_us, oracle_cases, counters = benchmark.pedantic(
        lambda: measure(True), rounds=1, iterations=1
    )

    for case in CASE_NAMES:
        assert oracle_cases[case][1] == fresh_cases[case][1], case

    lines = [f"{'Case':<16}{'fresh us':>10}{'oracle us':>11}{'area':>7}"]
    lines.append("-" * len(lines[0]))
    for case in CASE_NAMES:
        lines.append(
            f"{case:<16}{fresh_cases[case][0]:>10}"
            f"{oracle_cases[case][0]:>11}{oracle_cases[case][1]:>7}"
        )
    reduction = 100.0 * (1.0 - oracle_us / max(fresh_us, 1))
    queries = max(1, counters.get("queries", 0))
    lines.append("-" * len(lines[0]))
    lines.append(
        f"total {fresh_us}us -> {oracle_us}us ({reduction:.1f}% less); "
        f"cache hits {counters.get('cache_hits', 0)}/{queries} "
        f"({100.0 * counters.get('cache_hits', 0) / queries:.0f}%)"
    )
    table_report.add(
        "SAT oracle — redundancy-phase wall-clock (sim_threshold=0)",
        "\n".join(lines),
    )

    assert counters.get("cache_hits", 0) > 0
    assert oracle_us <= 0.75 * fresh_us, (
        f"oracle SAT wall-clock {oracle_us}us vs fresh {fresh_us}us "
        f"({reduction:.1f}% reduction; need >= 25%)"
    )
