"""Yosys-JSON ingestion parity and the design-space sweep runner.

Before this PR the flow only consumed natively built modules or our own
Verilog subset; real-world netlists arrive as ``yosys write_json``
output.  This benchmark proves the interchange contract and measures the
DSE runner built on it:

1. **Ingestion parity** — every committed fixture under
   ``tests/fixtures/yosys_json/`` (our exporter's output for the preset
   sweep workloads) must re-ingest ``module_signature``-identical to the
   natively constructed model and optimize to **byte-identical** areas.
   Read/write throughput is recorded, never gated.
2. **Sweep grid** — :func:`repro.flow.sweep.run_sweep` expands a
   flow × sim-threshold grid over two workloads into one shared-baseline
   suite; every grid cell must be reported and the best grid point must
   actually reduce area (the reduction percentage is the ``--min-reduction``
   gate, disabled in CI with ``--min-reduction 0``).

Runable standalone for CI artifacts::

    PYTHONPATH=src python benchmarks/bench_ingest.py --json out.json
"""

from __future__ import annotations

import json
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIXTURE_DIR = REPO / "tests" / "fixtures" / "yosys_json"

SWEEP_WORKLOADS = ("top_cache_axi", "pci_bridge32")
SWEEP_FLOWS = ("yosys", "smartly")
SWEEP_THRESHOLDS = (0, 64)
SWEEP_WIDTH = 4


def _manifest() -> dict:
    with open(FIXTURE_DIR / "manifest.json") as handle:
        return json.load(handle)


# -- 1. ingestion parity -------------------------------------------------------


def measure_ingestion_parity() -> dict:
    """Fixture corpus -> IR -> optimized area, against the native path."""
    from repro.api import Session
    from repro.frontend import load_yosys_json
    from repro.ir import module_signature, yosys_json_str
    from repro.workloads import build_case

    manifest = _manifest()
    width = manifest["width"]
    cases = {}
    total_cells = 0
    read_s = 0.0
    write_s = 0.0
    all_identical = True
    for name in sorted(manifest["cases"]):
        start = time.perf_counter()
        ingested = load_yosys_json(str(FIXTURE_DIR / f"{name}.json")).top
        read_s += time.perf_counter() - start

        native = build_case(name, width=width)
        start = time.perf_counter()
        yosys_json_str(native)
        write_s += time.perf_counter() - start

        identical = module_signature(ingested) == module_signature(native)
        all_identical &= identical
        native_report = Session(native).run("yosys")
        ingested_report = Session(ingested).run("yosys")
        total_cells += len(native.cells)
        cases[name] = {
            "cells": len(native.cells),
            "signature_identical": identical,
            "native_area": (native_report.original_area,
                            native_report.optimized_area),
            "ingested_area": (ingested_report.original_area,
                              ingested_report.optimized_area),
            "areas_identical": (
                native_report.original_area == ingested_report.original_area
                and native_report.optimized_area
                == ingested_report.optimized_area
            ),
        }
    return {
        "width": width,
        "cases": cases,
        "total_cells": total_cells,
        "read_s": round(read_s, 4),
        "write_s": round(write_s, 4),
        "read_cells_per_s": round(total_cells / read_s, 1) if read_s else 0.0,
        "all_signatures_identical": all_identical,
        "all_areas_identical": all(
            row["areas_identical"] for row in cases.values()
        ),
    }


def test_ingestion_parity(table_report):
    row = measure_ingestion_parity()
    lines = [
        f"fixtures:            {len(row['cases'])} "
        f"({row['total_cells']} cells, width={row['width']})",
        f"read throughput:     {row['read_cells_per_s']:.0f} cells/s",
        f"signatures identical: {row['all_signatures_identical']}",
        f"areas identical:      {row['all_areas_identical']}",
    ]
    table_report.add(
        "Yosys-JSON ingestion — fixture corpus parity", "\n".join(lines)
    )
    assert row["all_signatures_identical"], row
    assert row["all_areas_identical"], row


# -- 2. sweep grid -------------------------------------------------------------


def measure_sweep() -> dict:
    """One flow x sim-threshold grid as a shared-baseline suite."""
    from repro.flow.sweep import run_sweep

    start = time.perf_counter()
    report = run_sweep(
        workloads=list(SWEEP_WORKLOADS),
        flows=SWEEP_FLOWS,
        sim_thresholds=SWEEP_THRESHOLDS,
        width=SWEEP_WIDTH,
    )
    elapsed = time.perf_counter() - start
    totals = report.totals()
    best_reduction = max(row["reduction"] for row in totals.values())
    labels = [point.label for point in report.points]
    return {
        "workloads": list(report.workloads),
        "grid_labels": labels,
        "grid_points": len(labels),
        "cells_reported": sum(
            len(per) for per in report.suite.results.values()
        ),
        "cells_expected": len(report.workloads) * len(labels),
        "best": report.best_labels(),
        "totals": totals,
        "best_total_reduction_pct": round(100.0 * best_reduction, 2),
        "elapsed_s": round(elapsed, 4),
        "suite_runtime_s": round(report.runtime_s, 4),
    }


def test_sweep_grid(table_report):
    row = measure_sweep()
    lines = [
        f"grid: {row['grid_points']} points x "
        f"{len(row['workloads'])} workloads in {row['elapsed_s']:.2f}s",
        f"best total reduction: {row['best_total_reduction_pct']:.1f}%",
        f"best per workload:    {row['best']}",
    ]
    table_report.add(
        "Design-space sweep — flow x threshold grid", "\n".join(lines)
    )
    assert row["cells_reported"] == row["cells_expected"], row
    assert row["best_total_reduction_pct"] > 0.0, row


# -- CI entry point ------------------------------------------------------------


def main(argv=None) -> int:
    """Standalone run: ingestion-parity + sweep-grid payload."""
    import argparse
    import sys

    sys.path.insert(0, str(REPO / "src"))

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None,
                        help="write the benchmark payload to this file")
    parser.add_argument("--min-reduction", type=float, default=30.0,
                        help="fail below this best-grid-point total area "
                             "reduction percentage (<= 0 disables the "
                             "gate — what CI uses; parity always gates)")
    args = parser.parse_args(argv)

    payload = {
        "workload": {
            "ingestion": "committed fixture corpus "
                         "(tests/fixtures/yosys_json)",
            "sweep": f"{list(SWEEP_FLOWS)} x sim_threshold"
                     f"{list(SWEEP_THRESHOLDS)} over "
                     f"{list(SWEEP_WORKLOADS)} (width={SWEEP_WIDTH})",
        },
    }

    parity = measure_ingestion_parity()
    payload["ingestion"] = parity
    print(f"ingestion parity: {len(parity['cases'])} fixtures, "
          f"{parity['total_cells']} cells at "
          f"{parity['read_cells_per_s']:.0f} cells/s, signatures "
          f"identical: {parity['all_signatures_identical']}, areas "
          f"identical: {parity['all_areas_identical']}")

    sweep = measure_sweep()
    payload["sweep"] = sweep
    print(f"sweep grid: {sweep['grid_points']} points x "
          f"{len(sweep['workloads'])} workloads in "
          f"{sweep['elapsed_s']:.2f}s, best total reduction "
          f"{sweep['best_total_reduction_pct']:.1f}%")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        print(f"wrote {args.json}")

    if not (parity["all_signatures_identical"]
            and parity["all_areas_identical"]):
        return 1
    if sweep["cells_reported"] != sweep["cells_expected"]:
        return 1
    if args.min_reduction <= 0:
        return 0  # timing/quality recorded, not gated
    return 0 if sweep["best_total_reduction_pct"] >= args.min_reduction else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
