"""Figures 1-4 — the paper's motivating transformations as micro-benches.

Each figure's circuit is optimized by the relevant pass; the bench times
the transformation and asserts the exact structural outcome the figure
depicts.
"""

import pytest

from repro.aig import aig_map
from repro.core import SatRedundancy, extract_subgraph
from repro.equiv import assert_equivalent
from repro.ir import Circuit, NetIndex
from repro.opt import OptClean, OptMuxtree


def _fig1():
    c = Circuit("fig1")
    A, B, C, S = c.input("A", 8), c.input("B", 8), c.input("C", 8), c.input("S")
    c.output("Y", c.mux(C, c.mux(B, A, S), S))
    return c.module


def _fig2():
    c = Circuit("fig2")
    A, B, C, S = c.input("A"), c.input("B"), c.input("C"), c.input("S")
    c.output("Y", c.mux(C, c.mux(B, S, A), S))
    return c.module


def _fig3():
    c = Circuit("fig3")
    A, B, C = c.input("A", 8), c.input("B", 8), c.input("C", 8)
    S, R = c.input("S"), c.input("R")
    c.output("Y", c.mux(C, c.mux(B, A, c.or_(S, R)), S))
    return c.module


def test_figure1_same_control(benchmark):
    def transform():
        m = _fig1()
        OptMuxtree().run(m)
        OptClean().run(m)
        return m

    m = benchmark(transform)
    assert sum(1 for c in m.cells.values() if c.is_mux) == 1
    assert_equivalent(_fig1(), m)


def test_figure2_data_port(benchmark):
    def transform():
        m = _fig2()
        result = OptMuxtree().run(m)
        return m, result

    m, result = benchmark(transform)
    assert result.stats["dataport_bits_substituted"] == 1
    assert_equivalent(_fig2(), m)


def test_figure3_dependent_control(benchmark):
    baseline = _fig3()
    assert not OptMuxtree().run(baseline).changed  # invisible to Yosys

    def transform():
        m = _fig3()
        SatRedundancy().run(m)
        OptClean().run(m)
        return m

    m = benchmark(transform)
    assert sum(1 for c in m.cells.values() if c.is_mux) == 1
    assert_equivalent(_fig3(), m)
    # area win matches the figure: one mux + or-gate cone removed
    assert aig_map(m).num_ands < aig_map(_fig3()).num_ands


def test_figure4_subgraph_reduction(benchmark):
    """Measures the Theorem II.1 dismissal rate on a noisy neighbourhood
    (the paper reports ~80% of gates dismissed)."""
    c = Circuit("fig4")
    S, R = c.input("S"), c.input("R")
    target = c.or_(S, R)
    # cousin/descendant noise connected through S
    noise = c.and_(S.repeat(8), c.input("u", 8))
    for i in range(6):
        noise = c.add(noise, c.input(f"v{i}", 8))
    c.output("y", target)
    c.output("z", noise)
    module = c.module
    index = NetIndex(module)
    t_bit = index.sigmap.map_bit(target[0])
    s_bit = index.sigmap.map_bit(S[0])

    sub = benchmark(lambda: extract_subgraph(index, t_bit, {s_bit: True}, k=10))
    dismissed = 1 - sub.gates_after / max(1, sub.gates_before)
    assert dismissed >= 0.5, f"only {100 * dismissed:.0f}% dismissed"
