"""Structural signatures: cross-module cache hits and warm-started suites.

PR 2/PR 4 memoized the decision ladder by identity ``(cell name,
version)`` signatures, so structurally identical sub-graphs from
different modules — or from cloned suite jobs — could never share a
cache entry, and process-executor suite workers always started cold.
This benchmark proves the canonical structural-hashing subsystem
(:mod:`repro.ir.struct_hash`) fixes both without changing any result:

1. **Transparency** — byte-identical optimized areas with structural
   keys on vs off, for all 5 presets, across a corpus of random
   workload modules.  Asserted unconditionally.
2. **Cross-module sharing** — on a design of renamed clones (every wire
   and cell renamed, sort order scrambled), the session-wide
   :class:`~repro.core.cache.ResultCache` answers at least 30% of a
   clone run's lookups from entries another module created.  With
   identity keys that rate is *structurally* zero — the keys embed wire
   identities — which the benchmark also asserts exactly.
3. **Warm-started workers** — a process-executor suite over renamed
   clones runs at least 20% faster when workers are seeded with the
   parent session's exported snapshot (sub-graph resolutions plus
   whole-job ``suite_job`` entries) than with cold workers.

Runable standalone for CI artifacts::

    PYTHONPATH=src python benchmarks/bench_structhash.py --json out.json
"""

from __future__ import annotations

import functools
import json
import time

import pytest

from repro.api import Design, Session, SmartlyOptions
from repro.equiv.differential import random_module
from repro.flow.spec import PRESET_NAMES
from repro.ir.struct_hash import renamed_copy

#: base workload: one seed, several renamed clones of it
BASE_SEED = 2101
PARITY_SEEDS = (2101, 2102, 2103)
N_CLONES = 4
WIDTH, N_UNITS = 5, 6

#: the warm-start claim needs jobs big enough that pool startup noise
#: does not drown the signal
SUITE_WIDTH, SUITE_UNITS, SUITE_CLONES = 5, 8, 6


def build_base(seed: int = BASE_SEED, width: int = WIDTH,
               n_units: int = N_UNITS):
    return random_module(seed, width=width, n_units=n_units, name="base")


def build_clone(index: int, seed: int = BASE_SEED, width: int = WIDTH,
                n_units: int = N_UNITS):
    """A renamed (sort-order-scrambled) structural twin of the base."""
    return renamed_copy(
        build_base(seed, width, n_units),
        prefix=f"c{index}x", name=f"clone{index}",
    )


# -- 1. transparency -----------------------------------------------------------


def measure_parity(preset: str, seeds=PARITY_SEEDS):
    """Optimized areas for one preset, structural keys on vs off."""
    on_areas, off_areas = {}, {}
    for seed in seeds:
        on = Session(
            random_module(seed, width=WIDTH, n_units=N_UNITS),
            options=SmartlyOptions(structural_keys=True),
        ).run(preset)
        off = Session(
            random_module(seed, width=WIDTH, n_units=N_UNITS),
            options=SmartlyOptions(structural_keys=False),
        ).run(preset)
        on_areas[seed] = on.optimized_area
        off_areas[seed] = off.optimized_area
    return {"preset": preset, "on": on_areas, "off": off_areas,
            "identical": on_areas == off_areas}


@pytest.mark.parametrize("preset", PRESET_NAMES)
def test_structural_keys_area_parity(preset):
    row = measure_parity(preset)
    assert row["identical"], row


# -- 2. cross-module hit rate --------------------------------------------------


def measure_cross_module_hits(structural: bool, flow: str = "smartly"):
    """Hit traffic of clone runs in a primed session vs fresh sessions.

    The base module's run primes the session cache; each renamed clone
    then runs in the *same* session.  A clone run's hits split into
    self-hits (fixpoint rounds re-asking its own queries — measured by
    running the same clone in a fresh session) and *cross-module* hits
    answered from other modules' entries.  With identity keys the cross
    component is structurally zero.
    """
    opts = SmartlyOptions(structural_keys=structural)
    design = Design()
    design.add_module(build_base(), top=True)
    clones = [build_clone(i) for i in range(N_CLONES)]
    # pristine twins for the self-hit baselines (runs mutate modules)
    baselines = [build_clone(i) for i in range(N_CLONES)]
    for clone in clones:
        design.add_module(clone)
    session = Session(design, options=opts)
    session.run(flow, module="base")  # prime

    def delta(after, before, suffix):
        return sum(
            value - before.get(key, 0)
            for key, value in after.items() if key.endswith(suffix)
        )

    cross_hits = lookups = 0
    for clone, baseline in zip(clones, baselines):
        before = dict(session._result_cache.counters)
        session.run(flow, module=clone.name)
        after = dict(session._result_cache.counters)
        hits = delta(after, before, "_hits")
        misses = delta(after, before, "_misses")

        fresh = Session(baseline, options=opts)
        fresh.run(flow)
        self_hits = sum(
            value for key, value in fresh._result_cache.counters.items()
            if key.endswith("_hits")
        )
        cross_hits += hits - self_hits
        lookups += hits + misses
    rate = cross_hits / lookups if lookups else 0.0
    return {
        "structural": structural,
        "flow": flow,
        "cross_hits": cross_hits,
        "lookups": lookups,
        "cross_hit_rate_pct": round(100.0 * rate, 2),
    }


def test_cross_module_hit_rate(table_report):
    structural = measure_cross_module_hits(True)
    identity = measure_cross_module_hits(False)
    lines = [
        f"{'Keys':<12}{'cross hits':>12}{'lookups':>10}{'rate':>9}",
        "-" * 43,
    ]
    for row in (identity, structural):
        label = "structural" if row["structural"] else "identity"
        lines.append(
            f"{label:<12}{row['cross_hits']:>12}{row['lookups']:>10}"
            f"{row['cross_hit_rate_pct']:>8.1f}%"
        )
    lines.append("-" * 43)
    lines.append("identity must be exactly 0%, structural >= 30%")
    table_report.add(
        "Structural keys — cross-module hit rate on renamed clones",
        "\n".join(lines),
    )
    assert identity["cross_hits"] == 0, identity
    assert structural["cross_hit_rate_pct"] >= 30.0, structural


# -- 3. warm-started process workers -------------------------------------------


def suite_clone_cases(n: int = SUITE_CLONES):
    """Picklable factories for the renamed-clone suite."""
    return {
        f"clone{i}": functools.partial(
            build_clone, i, BASE_SEED, SUITE_WIDTH, SUITE_UNITS
        )
        for i in range(n)
    }


def measure_warm_start(flow: str = "smartly", max_workers: int = 2):
    """Process-suite wall-clock, cold workers vs snapshot-seeded workers."""
    cases = suite_clone_cases()

    def run_suite(warm_start: bool):
        session = Session(options=SmartlyOptions(structural_keys=True))
        # prime the parent: one suite job over the base case fills the
        # cache with the sub-graph resolutions and the suite_job entry
        # every clone job can replay
        session.run_suite(
            {"base": functools.partial(
                build_base, BASE_SEED, SUITE_WIDTH, SUITE_UNITS)},
            (flow,), max_workers=1, executor="process",
        )
        start = time.perf_counter()
        suite = session.run_suite(
            cases, (flow,), max_workers=max_workers, executor="process",
            warm_start=warm_start,
        )
        elapsed = time.perf_counter() - start
        areas = {
            case: per[flow].optimized_area
            for case, per in suite.results.items()
        }
        return elapsed, areas, dict(suite.cache_stats)

    cold_s, cold_areas, cold_stats = run_suite(False)
    warm_s, warm_areas, warm_stats = run_suite(True)
    return {
        "flow": flow,
        "jobs": len(cases),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "reduction_pct": round(100.0 * (1.0 - warm_s / cold_s), 2),
        "areas_identical": cold_areas == warm_areas,
        "cold_areas": cold_areas,
        "warm_areas": warm_areas,
        "warm_suite_job_hits": warm_stats.get("suite_job_hits", 0),
        "cold_suite_job_hits": cold_stats.get("suite_job_hits", 0),
    }


def test_warm_start_wallclock(table_report):
    row = measure_warm_start()
    lines = [
        f"cold workers: {row['cold_s']:.3f}s",
        f"warm workers: {row['warm_s']:.3f}s",
        f"reduction:    {row['reduction_pct']:.1f}% (need >= 20%)",
        f"suite_job replays (warm): {row['warm_suite_job_hits']}"
        f"/{row['jobs']}",
    ]
    table_report.add(
        "Warm-started process workers — renamed-clone suite", "\n".join(lines)
    )
    assert row["areas_identical"], row
    assert row["warm_suite_job_hits"] == row["jobs"], row
    assert row["reduction_pct"] >= 20.0, row


# -- CI entry point ------------------------------------------------------------


def main(argv=None) -> int:
    """Standalone run: parity + hit rate + warm-start timing payload."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None,
                        help="write the benchmark payload to this file")
    parser.add_argument("--min-reduction", type=float, default=20.0,
                        help="fail below this warm-start wall-clock "
                             "reduction percentage (<= 0 disables the "
                             "timing gate — what CI uses, since shared "
                             "runners make hard wall-clock gates flaky; "
                             "area parity and hit rates always gate)")
    parser.add_argument("--min-hit-rate", type=float, default=30.0,
                        help="fail below this cross-module hit rate "
                             "percentage on the renamed-clone suite")
    args = parser.parse_args(argv)

    payload = {
        "workload": {
            "base": f"random_module({BASE_SEED}, width={WIDTH}, "
                    f"n_units={N_UNITS})",
            "clones": N_CLONES,
            "suite": f"{SUITE_CLONES} renamed clones, width={SUITE_WIDTH}, "
                     f"n_units={SUITE_UNITS}, executor=process",
        },
    }

    parity = {preset: measure_parity(preset) for preset in PRESET_NAMES}
    payload["parity"] = parity
    mismatches = [p for p, row in parity.items() if not row["identical"]]
    payload["parity_mismatches"] = mismatches
    print(f"area parity over {len(PRESET_NAMES)} presets: "
          f"{'OK' if not mismatches else f'MISMATCH {mismatches}'}")

    structural = measure_cross_module_hits(True)
    identity = measure_cross_module_hits(False)
    payload["cross_module"] = {"structural": structural,
                               "identity": identity}
    print(f"cross-module hit rate: identity "
          f"{identity['cross_hit_rate_pct']}% (must be 0), structural "
          f"{structural['cross_hit_rate_pct']}% (need >= "
          f"{args.min_hit_rate}%)")

    warm = measure_warm_start()
    payload["warm_start"] = warm
    print(f"warm-start process suite: cold {warm['cold_s']:.3f}s -> warm "
          f"{warm['warm_s']:.3f}s ({warm['reduction_pct']}% reduction, "
          f"{warm['warm_suite_job_hits']}/{warm['jobs']} jobs replayed)")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        print(f"wrote {args.json}")

    if mismatches:
        return 1
    if identity["cross_hits"] != 0:
        return 1
    if structural["cross_hit_rate_pct"] < args.min_hit_rate:
        return 1
    if not warm["areas_identical"] or \
            warm["warm_suite_job_hits"] != warm["jobs"]:
        return 1
    if args.min_reduction <= 0:
        return 0  # timing recorded, not gated
    return 0 if warm["reduction_pct"] >= args.min_reduction else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
