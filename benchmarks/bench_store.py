"""Persistent cache store: cold processes replay suites from disk.

Before this PR every :class:`~repro.core.cache.ResultCache` died with its
process: a CI run, a rebooted workstation or a second machine sharing a
checkout re-proved every ``suite_job`` the previous run had already paid
for.  The content-addressed :class:`~repro.core.store.CacheStore` behind
``Session(store_path=)`` and ``smartly serve --store`` makes the cache
durable.  This benchmark proves the contract end to end, across *real*
process boundaries:

1. **Cold-process replay** — process A runs a suite with ``store_path=``
   and exits; process B (a genuinely cold interpreter) opens the same
   store and must replay **at least 50%** of the suite's jobs from disk
   (in practice all of them) with **byte-identical** optimized areas.
   Asserted unconditionally; the wall-clock reduction is recorded and
   only gated standalone (``--min-reduction``).
2. **Serve smoke** — a ``python -m repro.cli serve`` subprocess completes
   a multi-job JSON-lines session (run + hier + stats), streaming
   pass-level progress events, and a *second* daemon process warm-starts
   from the store the first one flushed and answers the same job as a
   pure replay.

Runable standalone for CI artifacts::

    PYTHONPATH=src python benchmarks/bench_store.py --json out.json
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: the replayed suite: several random workload modules x two flows
SEEDS = (3101, 3102, 3103, 3104)
WIDTH, N_UNITS = 5, 6
FLOWS = ("smartly", "yosys")

MUX_SOURCE = (
    "module m(input [1:0] s, input [3:0] a, b, output reg [3:0] y);"
    " always @* begin case (s) 2'b00: y = a; 2'b01: y = b;"
    " default: y = a; endcase end endmodule"
)

HIER_SOURCE = (
    "module leaf(input [1:0] s, input [3:0] a, b, output reg [3:0] y);"
    " always @* begin case (s) 2'b00: y = a; 2'b01: y = b;"
    " default: y = a; endcase end endmodule\n"
    "module top(input [1:0] s, input [3:0] a, b, output [3:0] y0, y1);"
    " leaf u0(.s(s), .a(a), .b(b), .y(y0));"
    " leaf u1(.s(s), .a(a), .b(b), .y(y1));"
    " endmodule"
)

#: runs one suite session against a shared store in a *cold* interpreter
#: and reports its replay traffic — the structural signatures it relies
#: on are process-stable by construction (tests/ir/test_struct_hash.py)
_SUITE_SCRIPT = """
import json, sys, time
from repro.api import Session
from repro.equiv.differential import random_module

config = json.loads(sys.argv[1])
cases = {
    f"m{seed}": random_module(
        seed, width=config["width"], n_units=config["n_units"]
    )
    for seed in config["seeds"]
}
start = time.perf_counter()
with Session(store_path=config["store"]) as session:
    suite = session.run_suite(cases, tuple(config["flows"]), max_workers=2)
    totals = session._cache_totals()
elapsed = time.perf_counter() - start
json.dump({
    "elapsed_s": elapsed,
    "areas": {
        case: {flow: report.optimized_area for flow, report in per.items()}
        for case, per in suite.results.items()
    },
    "suite_job_hits": suite.cache_stats.get("suite_job_hits", 0),
    "suite_job_misses": suite.cache_stats.get("suite_job_misses", 0),
    "store_loaded_entries": totals.get("store_loaded_entries", 0),
}, sys.stdout)
"""


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def _run_suite_process(store: str) -> dict:
    config = json.dumps({
        "store": store,
        "seeds": list(SEEDS),
        "width": WIDTH,
        "n_units": N_UNITS,
        "flows": list(FLOWS),
    })
    proc = subprocess.run(
        [sys.executable, "-c", _SUITE_SCRIPT, config],
        capture_output=True, text=True, env=_env(), cwd=REPO, check=True,
    )
    return json.loads(proc.stdout)


# -- 1. cold-process replay ----------------------------------------------------


def measure_cold_replay() -> dict:
    """Suite wall-clock and replay traffic: process A populates the
    store, cold process B must answer >= 50% of jobs straight from it."""
    jobs = len(SEEDS) * len(FLOWS)
    with tempfile.TemporaryDirectory() as tmpdir:
        store = str(Path(tmpdir) / "store")
        cold = _run_suite_process(store)
        warm = _run_suite_process(store)
    replay_rate = 100.0 * warm["suite_job_hits"] / jobs
    return {
        "jobs": jobs,
        "flows": list(FLOWS),
        "cold_s": round(cold["elapsed_s"], 4),
        "warm_s": round(warm["elapsed_s"], 4),
        "reduction_pct": round(
            100.0 * (1.0 - warm["elapsed_s"] / cold["elapsed_s"]), 2
        ),
        "replayed_jobs": warm["suite_job_hits"],
        "replay_rate_pct": round(replay_rate, 2),
        "areas_identical": cold["areas"] == warm["areas"],
        "cold_areas": cold["areas"],
        "warm_areas": warm["areas"],
        "warm_loaded_entries": warm["store_loaded_entries"],
    }


def test_cold_process_replay(table_report):
    row = measure_cold_replay()
    lines = [
        f"process A (cold store): {row['cold_s']:.3f}s",
        f"process B (warm store): {row['warm_s']:.3f}s",
        f"replayed from disk:     {row['replayed_jobs']}/{row['jobs']} "
        f"jobs ({row['replay_rate_pct']:.0f}%, need >= 50%)",
        f"areas byte-identical:   {row['areas_identical']}",
    ]
    table_report.add(
        "Cache store — cold-process suite replay", "\n".join(lines)
    )
    assert row["areas_identical"], row
    assert row["replay_rate_pct"] >= 50.0, row
    assert row["warm_loaded_entries"] > 0, row


# -- 2. serve smoke ------------------------------------------------------------


def _serve(store: str, lines: list) -> list:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--store", store,
         "--jobs", "2"],
        input="\n".join(lines) + "\n",
        capture_output=True, text=True, env=_env(), cwd=REPO, timeout=300,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"serve exited {proc.returncode}: {proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines()]


def measure_serve_smoke() -> dict:
    """One multi-job serve session, then a restarted daemon replaying."""

    def req(**fields):
        return json.dumps(fields)

    with tempfile.TemporaryDirectory() as tmpdir:
        store = str(Path(tmpdir) / "store")
        start = time.perf_counter()
        responses = _serve(store, [
            req(op="ping", id="p"),
            req(op="run", id="mux", source=MUX_SOURCE, flow="smartly"),
            req(op="run", id="mux-yosys", source=MUX_SOURCE, flow="yosys",
                events=False),
            req(op="hier", id="tree", source=HIER_SOURCE, top="top",
                events=False),
            req(op="stats", id="s"),
            req(op="shutdown"),
        ])
        first_s = time.perf_counter() - start
        results = {
            r["id"]: r for r in responses if r["type"] == "result"
        }
        events = [r for r in responses if r["type"] == "event"]
        bye = [r for r in responses if r["type"] == "bye"]

        replay_responses = _serve(store, [
            req(op="run", id="again", source=MUX_SOURCE, flow="smartly",
                events=False),
        ])
        (replay,) = [
            r for r in replay_responses if r["type"] == "result"
        ]
    return {
        "session_s": round(first_s, 4),
        "jobs_submitted": 3,
        "jobs_resulted": len(results),
        "events_streamed": len(events),
        "flushed_entries": bye[0]["flushed_entries"] if bye else 0,
        "mux_area": results.get("mux", {}).get("report", {})
            .get("optimized_area"),
        "hier_total_area": results.get("tree", {}).get("report", {})
            .get("total_area"),
        "restart_replayed": bool(replay["replayed"]),
        "restart_area": replay["report"]["optimized_area"],
        "areas_identical": (
            results.get("mux", {}).get("report", {}).get("optimized_area")
            == replay["report"]["optimized_area"]
        ),
    }


def test_serve_smoke(table_report):
    row = measure_serve_smoke()
    lines = [
        f"jobs resulted:      {row['jobs_resulted']}/"
        f"{row['jobs_submitted']}",
        f"events streamed:    {row['events_streamed']}",
        f"store checkpointed: {row['flushed_entries']} entries",
        f"restart replayed:   {row['restart_replayed']} "
        f"(area {row['restart_area']})",
    ]
    table_report.add(
        "Serve daemon — multi-job JSON-lines session", "\n".join(lines)
    )
    assert row["jobs_resulted"] == row["jobs_submitted"], row
    assert row["events_streamed"] > 0, row
    assert row["flushed_entries"] > 0, row
    assert row["restart_replayed"], row
    assert row["areas_identical"], row


# -- CI entry point ------------------------------------------------------------


def main(argv=None) -> int:
    """Standalone run: cold-replay + serve-smoke payload."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None,
                        help="write the benchmark payload to this file")
    parser.add_argument("--min-reduction", type=float, default=30.0,
                        help="fail below this warm-process wall-clock "
                             "reduction percentage (<= 0 disables the "
                             "timing gate — what CI uses; replay rate and "
                             "area identity always gate)")
    parser.add_argument("--min-replay-rate", type=float, default=50.0,
                        help="fail below this disk replay rate percentage "
                             "in the cold second process")
    args = parser.parse_args(argv)

    payload = {
        "workload": {
            "suite": f"{len(SEEDS)} random modules (width={WIDTH}, "
                     f"n_units={N_UNITS}) x {list(FLOWS)}",
            "serve": "3 jobs (2 run + 1 hier) over stdin JSON lines",
        },
    }

    replay = measure_cold_replay()
    payload["cold_replay"] = replay
    print(f"cold-process replay: {replay['cold_s']:.3f}s -> "
          f"{replay['warm_s']:.3f}s ({replay['reduction_pct']}% "
          f"reduction), {replay['replayed_jobs']}/{replay['jobs']} jobs "
          f"from disk, areas identical: {replay['areas_identical']}")

    smoke = measure_serve_smoke()
    payload["serve_smoke"] = smoke
    print(f"serve smoke: {smoke['jobs_resulted']}/"
          f"{smoke['jobs_submitted']} jobs, {smoke['events_streamed']} "
          f"events, restart replayed: {smoke['restart_replayed']}")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        print(f"wrote {args.json}")

    if not replay["areas_identical"]:
        return 1
    if replay["replay_rate_pct"] < args.min_replay_rate:
        return 1
    if not (smoke["jobs_resulted"] == smoke["jobs_submitted"]
            and smoke["events_streamed"] > 0
            and smoke["restart_replayed"]
            and smoke["areas_identical"]):
        return 1
    if args.min_reduction <= 0:
        return 0  # timing recorded, not gated
    return 0 if replay["reduction_pct"] >= args.min_reduction else 1


if __name__ == "__main__":
    sys.exit(main())
