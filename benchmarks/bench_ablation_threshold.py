"""Ablation — the sim-vs-SAT input-count switch (paper §II).

The paper chooses exhaustive simulation for few inputs and the SAT solver
for larger cones, forgoing analysis above a hard bound.  The workload here
uses *xor-dependent* controls (``(S ^ R) ^ R == S``) that the Table-I
inference rules cannot decide, so eliminating them genuinely requires one
of the two deciders:

* pure-simulation and pure-SAT configs find the same eliminations,
* disabling both degrades the area to baseline level,
* the default mixed config matches their quality.
"""

import random
import time

import pytest

from repro.aig import aig_map
from repro.core import run_smartly
from repro.ir import Circuit
from repro.workloads import InputPool

CONFIGS = {
    "mixed (default)": dict(sim_threshold=8, sat_threshold=64),
    "sim only": dict(sim_threshold=14, sat_threshold=-1),
    "sat only": dict(sim_threshold=-1, sat_threshold=64),
    "neither": dict(sim_threshold=-1, sat_threshold=-1),
}


def _xor_dependent_module(n_units=6):
    """Chains whose controls are (S ^ R_i) ^ R_i — solver-only facts."""
    rng = random.Random(3)
    c = Circuit("xordep")
    pool = InputPool(c, rng, width=8)
    for u in range(n_units):
        s = pool.ctrl_bit()
        value = pool.word()
        for _ in range(4):
            r = pool.ctrl_bit()
            ctrl = c.xor(c.xor(s, r), r)  # == s, but not via Table I
            dead = c.add(pool.word(), pool.word())
            value = c.mux(dead, value, ctrl)
        c.output(f"y{u}", c.mux(pool.word(), value, s))
    return c.module


def _run(config):
    module = _xor_dependent_module()
    start = time.perf_counter()
    run_smartly(module, rebuild=False, **config)
    runtime = time.perf_counter() - start
    return aig_map(module).num_ands, runtime


@pytest.mark.parametrize("name", list(CONFIGS))
def test_threshold_configs(benchmark, name, table_report):
    area, runtime = benchmark.pedantic(
        lambda: _run(CONFIGS[name]), rounds=1, iterations=1
    )
    key = "Ablation — sim/SAT decider configurations (xor-dependent chains)"
    table_report.sections[key] = table_report.sections.get(key, "") + (
        f"{name:<18} area={area:<8} time={runtime:.2f}s\n"
    )


def test_decider_equivalence_and_necessity(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _run(cfg) for name, cfg in CONFIGS.items()},
        rounds=1, iterations=1,
    )
    area = {name: result[0] for name, result in results.items()}
    # sim and SAT find the same eliminations
    assert area["sim only"] == area["sat only"] == area["mixed (default)"]
    # with both disabled, the xor-dependent redundancy is missed
    assert area["neither"] > area["mixed (default)"]
