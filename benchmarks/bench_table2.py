"""Table II — AIG area: Original vs Yosys vs smaRTLy on the 10 cases.

Regenerates the paper's headline table on the synthetic benchmark models.
Absolute areas are scaled (~x400 smaller, see DESIGN.md); the asserted
*shape* is the paper's: smaRTLy never loses to Yosys, the per-case
dominance pattern matches (rebuild-heavy ``top_cache_axi``, SAT-heavy
``wb_conmax``, saturated ``mem_ctrl``), and the average extra reduction
lands in the 5-15% band around the paper's 8.95%.
"""

import pytest

from repro.flow import render_table2
from repro.workloads import CASE_NAMES, PAPER_TABLE2

from conftest import cached_flow, run_case


@pytest.mark.parametrize("case", CASE_NAMES)
def test_smartly_flow(benchmark, case):
    """Times the full smaRTLy pipeline per case; checks Table II shape."""
    result = benchmark.pedantic(
        lambda: run_case(case, "smartly"), rounds=1, iterations=1
    )
    # memoise for the table/other benches
    from conftest import _flow_cache

    _flow_cache.setdefault((case, "smartly"), result)

    yosys = cached_flow(case, "yosys")
    assert result.optimized_area <= yosys.optimized_area, (
        "smaRTLy must never lose to the Yosys baseline"
    )
    assert result.original_area == yosys.original_area


def test_table2_shape_and_print(benchmark, table_report):
    results = {
        case: {
            "yosys": cached_flow(case, "yosys"),
            "smartly": cached_flow(case, "smartly"),
        }
        for case in CASE_NAMES
    }
    text = benchmark(lambda: render_table2(results))
    table_report.add("Table II — AIG area comparison (measured vs paper)", text)

    ratios = {}
    for case, per in results.items():
        yosys_area = per["yosys"].optimized_area
        ratios[case] = (
            (yosys_area - per["smartly"].optimized_area) / yosys_area
            if yosys_area
            else 0.0
        )
    average = 100 * sum(ratios.values()) / len(ratios)
    # paper: 8.95% average extra reduction; accept a generous band
    assert 5.0 <= average <= 15.0, f"average extra reduction {average:.2f}%"

    # per-case dominance shape
    assert ratios["top_cache_axi"] > 0.15      # paper: 24.92%
    assert ratios["wb_conmax"] > 0.12          # paper: 27.79%
    assert ratios["wb_dma"] > 0.05             # paper: 13.89%
    assert ratios["mem_ctrl"] < 0.03           # paper: 0.53% (saturated)
    # headline cases beat quiet cases
    assert ratios["top_cache_axi"] > ratios["ethernet"]
    assert ratios["wb_conmax"] > ratios["riscv"]
