"""Figures 5-7 + Listings 1-2 — muxtree restructuring micro-benches.

* Listing 1 (Figure 5 -> Figure 7): the eq+mux chain becomes 3 muxes with
  every eq gate disconnected.
* Listing 2: the ADD variable heuristic picks S2 first (3 muxes); the
  assertion pins the paper's good-vs-bad order gap by also costing the
  forced-bad order.
"""

import pytest

from repro.aig import aig_map
from repro.core import ADD, MuxtreeRestructure, case_table, run_smartly
from repro.equiv import assert_equivalent
from repro.frontend import compile_verilog
from repro.opt import OptClean

LISTING1 = """
module listing1(input [1:0] S, input [7:0] p0, p1, p2, p3,
                output reg [7:0] Y);
  always @* begin
    case (S)
      2'b00: Y = p0;
      2'b01: Y = p1;
      2'b10: Y = p2;
      default: Y = p3;
    endcase
  end
endmodule
"""

LISTING2 = """
module listing2(input [2:0] S, input [3:0] p0, p1, p2, p3,
                output reg [3:0] Y);
  always @* begin
    casez (S)
      3'b1zz: Y = p0;
      3'b01z: Y = p1;
      3'b001: Y = p2;
      default: Y = p3;
    endcase
  end
endmodule
"""


def test_listing1_rebuild(benchmark):
    def transform():
        module = compile_verilog(LISTING1).top
        MuxtreeRestructure().run(module)
        OptClean().run(module)
        return module

    module = benchmark(transform)
    stats = module.stats()
    assert stats.get("eq", 0) == 0
    assert stats.get("mux", 0) == 3
    assert_equivalent(compile_verilog(LISTING1).top, module)


def test_listing1_area_gain(benchmark):
    gold = compile_verilog(LISTING1).top
    before = aig_map(gold.clone()).num_ands

    def full_flow():
        module = compile_verilog(LISTING1).top
        run_smartly(module)
        return aig_map(module).num_ands

    after = benchmark(full_flow)
    assert after < before


def test_listing2_heuristic_order(benchmark):
    """Good assignment -> 3 muxes; the naive S0-first order costs 7."""
    rows = [
        ({2: True}, "p0"),
        ({2: False, 1: True}, "p1"),
        ({2: False, 1: False, 0: True}, "p2"),
    ]
    table = case_table(3, rows, default="p3")

    add = benchmark(lambda: ADD(3, table))
    assert add.num_internal_nodes == 3
    assert add.root.var == 2  # S2 chosen first, as in the paper

    # force the poor order by cofactoring on S0 first manually
    low0, high0 = ADD._cofactors(tuple(table), 0)
    bad_nodes = (
        ADD(2, low0).num_internal_nodes + ADD(2, high0).num_internal_nodes + 1
    )
    assert bad_nodes > add.num_internal_nodes  # 7 vs 3 in the paper


def test_listing2_rebuild_matches_paper(benchmark):
    def transform():
        module = compile_verilog(LISTING2).top
        result = MuxtreeRestructure().run(module)
        OptClean().run(module)
        return module, result

    module, result = benchmark(transform)
    assert result.stats["muxes_added"] == 3
    assert result.stats["eq_gates_disconnected"] == 3
    assert_equivalent(compile_verilog(LISTING2).top, module)


def test_wide_collapsible_chain(benchmark):
    """Scaled Figure-5 chain: 31 arms, 4 distinct values."""
    from repro.ir import Circuit

    def build():
        c = Circuit("wide")
        S = c.input("S", 5)
        pool = [c.input(f"p{i}", 8) for i in range(4)]
        arms = [(i, pool[i % 4]) for i in range(31)]
        c.output("Y", c.case_(S, arms, pool[0]))
        return c.module

    gold = build()
    before = aig_map(gold.clone()).num_ands

    def transform():
        module = build()
        MuxtreeRestructure().run(module)
        OptClean().run(module)
        return module

    module = benchmark(transform)
    after = aig_map(module).num_ands
    assert after < 0.5 * before  # the chain collapses dramatically
    assert_equivalent(gold, module)
